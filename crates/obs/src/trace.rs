//! Structured event trace: a bounded ring buffer of recent query
//! executions with a configurable slow-query threshold.
//!
//! Every planned query pushes one [`QueryTrace`] (fingerprint, plan
//! hash, plan/exec/commit phase timings, row count). Entries whose
//! total time crosses the threshold are flagged slow and retain the
//! full per-operator [`QueryProfile`]; fast entries stay lightweight so
//! the always-on cost is one mutex push per query.
//!
//! The threshold defaults to 100ms and is configurable via the
//! `TOPOSEM_SLOW_QUERY_MS` environment variable (read at ring
//! construction) or [`TraceRing::set_slow_query_ms`] at runtime.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::profile::QueryProfile;

/// Default slow-query threshold when `TOPOSEM_SLOW_QUERY_MS` is unset.
pub const DEFAULT_SLOW_QUERY_MS: u64 = 100;

/// Default ring capacity.
pub const DEFAULT_TRACE_CAP: usize = 128;

/// One traced event. Queries populate `plan_ns`/`exec_ns`; durable
/// transaction commits are traced separately with `commit_ns` (their
/// fingerprint and plan hash are 0).
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// Logical-query fingerprint (0 for commit events).
    pub fingerprint: u64,
    /// Physical-plan fingerprint (0 for commit events).
    pub plan_hash: u64,
    /// Planning phase in ns (plan-cache lookup included).
    pub plan_ns: u64,
    /// Execution phase in ns.
    pub exec_ns: u64,
    /// Commit phase in ns (WAL append + flush; 0 for read-only
    /// queries).
    pub commit_ns: u64,
    /// Rows returned (queries) or operations committed (commits).
    pub rows: u64,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Whether total time crossed the slow-query threshold.
    pub slow: bool,
    /// Full operator profile — retained for slow queries and explicit
    /// `query_profiled` / `explain_analyze` runs.
    pub profile: Option<Arc<QueryProfile>>,
}

impl QueryTrace {
    /// Total traced time across phases.
    pub fn total_ns(&self) -> u64 {
        self.plan_ns + self.exec_ns + self.commit_ns
    }
}

/// Bounded ring of recent [`QueryTrace`] entries.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    slow_ns: AtomicU64,
    entries: Mutex<VecDeque<QueryTrace>>,
}

impl TraceRing {
    /// A ring holding the most recent `cap` entries, with the slow
    /// threshold taken from `TOPOSEM_SLOW_QUERY_MS` (falling back to
    /// [`DEFAULT_SLOW_QUERY_MS`]).
    pub fn new(cap: usize) -> Self {
        let ms = std::env::var("TOPOSEM_SLOW_QUERY_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_SLOW_QUERY_MS);
        TraceRing {
            cap: cap.max(1),
            slow_ns: AtomicU64::new(ms.saturating_mul(1_000_000)),
            entries: Mutex::new(VecDeque::with_capacity(cap.max(1))),
        }
    }

    /// Current slow-query threshold in nanoseconds.
    pub fn slow_query_ns(&self) -> u64 {
        self.slow_ns.load(Ordering::Relaxed)
    }

    /// Override the slow-query threshold at runtime.
    pub fn set_slow_query_ms(&self, ms: u64) {
        self.slow_ns
            .store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
    }

    /// Append an entry, evicting the oldest past capacity.
    pub fn push(&self, t: QueryTrace) {
        let mut q = self.entries.lock().unwrap();
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back(t);
    }

    /// All retained entries, oldest first.
    pub fn recent(&self) -> Vec<QueryTrace> {
        self.entries.lock().unwrap().iter().cloned().collect()
    }

    /// Retained entries flagged slow, oldest first.
    pub fn slow(&self) -> Vec<QueryTrace> {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .filter(|t| t.slow)
            .cloned()
            .collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing has been traced yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fp: u64, slow: bool) -> QueryTrace {
        QueryTrace {
            fingerprint: fp,
            plan_hash: fp ^ 1,
            plan_ns: 10,
            exec_ns: 20,
            commit_ns: 0,
            rows: 1,
            cache_hit: false,
            slow,
            profile: None,
        }
    }

    #[test]
    fn ring_bounds_and_order() {
        let ring = TraceRing::new(3);
        for fp in 0..5 {
            ring.push(entry(fp, fp == 3));
        }
        let recent = ring.recent();
        assert_eq!(
            recent.iter().map(|t| t.fingerprint).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(ring.slow().len(), 1);
        assert_eq!(ring.slow()[0].fingerprint, 3);
        assert_eq!(recent[0].total_ns(), 30);
    }
}
