//! Q6: columnar kernels vs. row-at-a-time execution of the *same*
//! pinned plan.
//!
//! The workload is a filter-heavy sequential scan over 100k managers:
//! a three-predicate conjunction whose first two predicates pass every
//! row (so the row path cannot short-circuit early) and whose last
//! keeps 1%. The plan is pinned to a literal `Physical::SeqScan` —
//! both legs execute the identical tree under `ExecOptions::serial()`,
//! differing only in the `columnar` flag, so the measured gap is the
//! kernel dispatch (decoded column vectors + selection bitmaps vs.
//! tuple-wise `get` + `matches`), not a plan-shape difference.
//!
//! The headline claim: the columnar kernels beat the row path ≥2× on
//! the filter-heavy scan, and both produce the identical relation. A
//! secondary (unasserted, Criterion-tracked) pair times a probe-heavy
//! hash join whose key extraction uses per-batch field-position hints
//! on the columnar leg.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::{
    execute_with, lower_and_rewrite, plan_with, ExecOptions, Physical, PlannerOptions,
};
use toposem_storage::{Engine, Predicate, Query};

/// 100k tuples normally, 20k in CI short mode (`TOPOSEM_BENCH_SHORT`).
fn n() -> i64 {
    toposem_bench::sized(100_000, 20_000)
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(toposem_bench::sized(
            300, 50,
        )))
        .measurement_time(std::time::Duration::from_millis(toposem_bench::sized(
            2000, 300,
        )))
}

/// N managers with a dense unique `budget` (unbounded integer domain,
/// so range selectivity is controlled exactly by the interval width),
/// plus N employees and the three departments for the join leg (the
/// schema sanctions `employee ⋈ department` as `worksfor`).
fn loaded_engine() -> Engine {
    let eng = Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ));
    let s = eng.with_db(|db| db.schema().clone());
    let manager = s.type_id("manager").unwrap();
    let department = s.type_id("department").unwrap();
    let deps = [
        ("sales", "amsterdam"),
        ("research", "utrecht"),
        ("admin", "utrecht"),
    ];
    for (d, l) in deps {
        eng.insert(
            department,
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
    let employee = s.type_id("employee").unwrap();
    for i in 0..n() {
        eng.insert(
            manager,
            &[
                ("name", Value::str(&format!("m{i:06}"))),
                ("age", Value::Int(i % 120)),
                ("depname", Value::str(deps[(i % 3) as usize].0)),
                ("budget", Value::Int(i)),
            ],
        )
        .unwrap();
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("e{i:06}"))),
                ("age", Value::Int(i % 90)),
                ("depname", Value::str(deps[(i % 3) as usize].0)),
            ],
        )
        .unwrap();
    }
    eng
}

/// Median-of-`runs` wall time of `f`.
fn time<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            criterion::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench(c: &mut Criterion) {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let manager = s.type_id("manager").unwrap();
    let department = s.type_id("department").unwrap();
    let age = s.attr_id("age").unwrap();
    let budget = s.attr_id("budget").unwrap();
    let n = n();
    let anchor = n / 2;

    // The pinned scan: a wide conjunction of always-true guards ahead
    // of the 1% range, so the row path evaluates every predicate on
    // every tuple (no short-circuit) while the columnar path fuses each
    // column's ranges into one interval and evaluates the whole
    // conjunction in a single streaming sweep per morsel.
    let scan = Physical::SeqScan {
        ty: manager,
        preds: vec![
            (age, Predicate::Ge(Value::Int(0))),
            (age, Predicate::Le(Value::Int(150))),
            (age, Predicate::Gt(Value::Int(-1))),
            (age, Predicate::Lt(Value::Int(151))),
            (age, Predicate::Between(Value::Int(0), Value::Int(150))),
            (budget, Predicate::Ge(Value::Int(0))),
            (budget, Predicate::Le(Value::Int(n))),
            (budget, Predicate::Gt(Value::Int(-1))),
            (budget, Predicate::Lt(Value::Int(n + 1))),
            (
                budget,
                Predicate::Between(Value::Int(anchor), Value::Int(anchor + n / 100 - 1)),
            ),
        ],
    };
    let row = ExecOptions {
        columnar: false,
        ..ExecOptions::serial()
    };
    let col = ExecOptions {
        columnar: true,
        ..ExecOptions::serial()
    };

    // Correctness before numbers: identical relations, exactly 1%.
    let row_rel = eng.with_parts(|db, indexes| execute_with(&scan, db, indexes, &row));
    let col_rel = eng.with_parts(|db, indexes| execute_with(&scan, db, indexes, &col));
    assert_eq!(row_rel, col_rel, "columnar kernels must be bit-identical");
    assert_eq!(
        col_rel.len(),
        (n / 100) as usize,
        "the range must keep exactly 1% of the tuples"
    );

    let runs = 30;
    let row_t = eng.with_parts(|db, indexes| time(runs, || execute_with(&scan, db, indexes, &row)));
    let col_t = eng.with_parts(|db, indexes| time(runs, || execute_with(&scan, db, indexes, &col)));
    let speedup = row_t / col_t;
    println!(
        "q6 filter-heavy scan over {n} tuples: row {:.1} µs, columnar {:.1} µs → {speedup:.1}×",
        row_t * 1e6,
        col_t * 1e6
    );
    assert!(
        speedup >= 2.0,
        "columnar kernels must beat row-at-a-time ≥2× on the filter-heavy scan, got {speedup:.2}×"
    );

    // The probe-heavy join leg: every employee probes the 3-row
    // department build side; the columnar leg extracts probe keys via
    // per-batch position hints. Tracked, not asserted — key extraction
    // is a smaller slice of join time than predicate evaluation is of
    // scan time.
    let employee = s.type_id("employee").unwrap();
    let q = Query::scan(employee).join(Query::scan(department));
    let stats = eng.statistics();
    let join_plan: Physical = eng.with_parts(|db, indexes| {
        let logical = lower_and_rewrite(&q, db).unwrap();
        plan_with(
            &logical,
            db,
            indexes,
            &stats,
            &PlannerOptions {
                merge_joins: false,
                ..Default::default()
            },
        )
    });
    let row_join = eng.with_parts(|db, indexes| execute_with(&join_plan, db, indexes, &row));
    let col_join = eng.with_parts(|db, indexes| execute_with(&join_plan, db, indexes, &col));
    assert_eq!(row_join, col_join, "join legs must agree");
    // Under the eager containment policy every manager is also an
    // employee, so the probe side holds 2N rows — all of them match.
    assert_eq!(
        row_join.len(),
        2 * n as usize,
        "every employee (including the contained managers) finds its department"
    );
    let row_join_t =
        eng.with_parts(|db, indexes| time(runs, || execute_with(&join_plan, db, indexes, &row)));
    let col_join_t =
        eng.with_parts(|db, indexes| time(runs, || execute_with(&join_plan, db, indexes, &col)));
    println!(
        "q6 join probe over {n} tuples: row {:.1} µs, columnar {:.1} µs → {:.1}×",
        row_join_t * 1e6,
        col_join_t * 1e6,
        row_join_t / col_join_t
    );

    toposem_bench::emit_bench_json(
        "q6_columnar_scan",
        &[
            toposem_bench::BenchSample::from_secs("row_filter_scan", runs as u64, row_t),
            toposem_bench::BenchSample::from_secs("columnar_filter_scan", runs as u64, col_t),
            toposem_bench::BenchSample::from_secs("row_join_probe", runs as u64, row_join_t),
            toposem_bench::BenchSample::from_secs("columnar_join_probe", runs as u64, col_join_t),
        ],
    );

    let mut g = c.benchmark_group("q6_columnar_scan");
    g.bench_function("row_filter_scan", |b| {
        b.iter(|| eng.with_parts(|db, indexes| execute_with(&scan, db, indexes, &row)))
    });
    g.bench_function("columnar_filter_scan", |b| {
        b.iter(|| eng.with_parts(|db, indexes| execute_with(&scan, db, indexes, &col)))
    });
    g.bench_function("row_join_probe", |b| {
        b.iter(|| eng.with_parts(|db, indexes| execute_with(&join_plan, db, indexes, &row)))
    });
    g.bench_function("columnar_join_probe", |b| {
        b.iter(|| eng.with_parts(|db, indexes| execute_with(&join_plan, db, indexes, &col)))
    });
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
