//! O1: the cost of always-on observability.
//!
//! The profiling contract is "near-free": per-operator counters are
//! plain local tallies merged into atomics once per batch/morsel, and
//! wall clocks are one `Instant` pair per operator per execution. This
//! bench pins that claim — profiled execution of the q1-shaped workload
//! must stay within 5% of unprofiled execution, and the profiled result
//! must be bit-identical — so an instrumentation regression (say, an
//! atomic bump moved into the per-tuple loop) fails CI instead of
//! silently taxing every query.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_obs::PlanProfile;
use toposem_planner::{
    execute_profiled_with, execute_with, lower_and_rewrite, plan, ExecOptions, Physical,
};
use toposem_storage::{Engine, Query};

/// 10 000 tuples normally, 2 000 in CI short mode (`TOPOSEM_BENCH_SHORT`).
fn n() -> i64 {
    toposem_bench::sized(10_000, 2_000)
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(toposem_bench::sized(
            300, 50,
        )))
        .measurement_time(std::time::Duration::from_millis(toposem_bench::sized(
            2000, 300,
        )))
}

fn loaded_engine() -> Engine {
    let eng = Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ));
    let (employee, name) = eng.with_db(|db| {
        let s = db.schema();
        (s.type_id("employee").unwrap(), s.attr_id("name").unwrap())
    });
    let deps = ["sales", "research", "admin"];
    for i in 0..n() {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("w{i}"))),
                ("age", Value::Int(i % 120)),
                ("depname", Value::str(deps[(i % 3) as usize])),
            ],
        )
        .unwrap();
    }
    let department = eng.with_db(|db| db.schema().type_id("department").unwrap());
    for (d, l) in [("sales", "amsterdam"), ("research", "utrecht")] {
        eng.insert(
            department,
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
    eng.create_index(employee, name).unwrap();
    eng
}

/// Minimum wall time over `samples` runs of `f` (minimum, not median:
/// the overhead claim is about the instrumentation itself, and the min
/// is the estimator least polluted by scheduler noise).
fn min_time<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            criterion::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench(c: &mut Criterion) {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let depname = s.attr_id("depname").unwrap();

    // The q1 workload: the scan-shaped select (the worst case for
    // relative overhead: per-batch recording against cheap per-tuple
    // work) and the join (deeper tree, more instrumented operators).
    let third = Query::scan(employee).select(depname, Value::str("sales"));
    let join = Query::scan(employee)
        .join(Query::scan(department))
        .select(depname, Value::str("research"));
    let stats = eng.statistics();
    let plans: Vec<Physical> = eng.with_parts(|db, indexes| {
        [&third, &join]
            .iter()
            .map(|q| plan(&lower_and_rewrite(q, db).unwrap(), db, indexes, &stats))
            .collect()
    });
    let opts = ExecOptions::serial();

    // Bit-identity: profiling observes, never perturbs.
    eng.with_parts(|db, indexes| {
        for p in &plans {
            let profile = PlanProfile::new(p.node_count());
            assert_eq!(
                execute_with(p, db, indexes, &opts),
                execute_profiled_with(p, db, indexes, &opts, &profile),
                "profiled execution diverged"
            );
            assert!(
                profile.node(0).snapshot().calls > 0,
                "profile was actually recorded"
            );
        }
    });

    // The overhead guard: min-of-samples over a batched workload (both
    // plans per iteration), profiled ≤ 1.05× unprofiled. A fresh
    // PlanProfile per iteration is charged to the profiled side — that
    // allocation is part of what `query_profiled` pays.
    let (samples, iters) = toposem_bench::sized((15, 40), (10, 20));
    let plain_t = eng.with_parts(|db, indexes| {
        min_time(samples, || {
            for _ in 0..iters {
                for p in &plans {
                    criterion::black_box(execute_with(p, db, indexes, &opts));
                }
            }
        })
    });
    let profiled_t = eng.with_parts(|db, indexes| {
        min_time(samples, || {
            for _ in 0..iters {
                for p in &plans {
                    let profile = PlanProfile::new(p.node_count());
                    criterion::black_box(execute_profiled_with(p, db, indexes, &opts, &profile));
                }
            }
        })
    });
    let ratio = profiled_t / plain_t;
    println!(
        "o1 q1-shaped workload ({} tuples, {iters} iters/sample, min of {samples}): \
         unprofiled {:.2} ms, profiled {:.2} ms → {ratio:.3}× overhead",
        n(),
        plain_t * 1e3,
        profiled_t * 1e3,
    );
    assert!(
        ratio <= 1.05,
        "always-on profiling must cost ≤5% on the q1 workload, measured {ratio:.3}×"
    );
    toposem_bench::emit_bench_json(
        "o1_obs_overhead",
        &[
            toposem_bench::BenchSample::from_secs(
                "unprofiled_q1_workload",
                iters as u64,
                plain_t / iters as f64,
            ),
            toposem_bench::BenchSample::from_secs(
                "profiled_q1_workload",
                iters as u64,
                profiled_t / iters as f64,
            ),
        ],
    );

    let mut g = c.benchmark_group("o1_obs_overhead");
    g.bench_function("unprofiled", |b| {
        b.iter(|| {
            eng.with_parts(|db, indexes| {
                for p in &plans {
                    criterion::black_box(execute_with(p, db, indexes, &opts));
                }
            })
        })
    });
    g.bench_function("profiled", |b| {
        b.iter(|| {
            eng.with_parts(|db, indexes| {
                for p in &plans {
                    let profile = PlanProfile::new(p.node_count());
                    criterion::black_box(execute_profiled_with(p, db, indexes, &opts, &profile));
                }
            })
        })
    });
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
