//! T1: building the employee schema and analysing its intension, plus a
//! sweep over synthesised schema sizes. Measures the cost of the
//! foundation every other experiment stands on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_bench::sweep_schema;
use toposem_core::{employee_schema, Intension};

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_schema_build");

    g.bench_function("employee_schema", |b| b.iter(employee_schema));

    g.bench_function("employee_intension", |b| {
        let schema = employee_schema();
        b.iter(|| Intension::analyse(schema.clone()))
    });

    // Full intension analysis (topologies + minimal-subbase search) up to
    // 128 types; the subbase search is the quadratic part.
    for n in [8usize, 32, 128] {
        let schema = sweep_schema(n);
        g.bench_with_input(
            BenchmarkId::new("intension_analyse", schema.type_count()),
            &schema,
            |b, s| b.iter(|| Intension::analyse(s.clone())),
        );
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
