//! Q3: DP join reordering + merge join vs. the left-deep hash-join
//! baseline on a constructed 3-way skew.
//!
//! The query is written in the worst association: `(person ⋈ department)
//! ⋈ worksfor`, whose first join shares no attributes — a cross product
//! that multiplies every person by every department before the second
//! join throws most of it away. The DP reorderer re-associates to join
//! person with worksfor first (a 1:1 match on `{name, age}`, consumed by
//! a MergeJoin from the canonical scan order) and hash-joins the tiny
//! department relation last. The bench asserts the reordered plan beats
//! the as-written left-deep hash-join baseline by ≥2× wall-clock (in
//! practice more), with both plans producing the identical relation.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::{execute, lower_and_rewrite, plan_with, Physical, PlannerOptions};
use toposem_storage::{Engine, Query};

/// 4 000 pairs normally, 1 000 in CI short mode (`TOPOSEM_BENCH_SHORT`).
fn n() -> i64 {
    toposem_bench::sized(4_000, 1_000)
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(toposem_bench::sized(
            300, 50,
        )))
        .measurement_time(std::time::Duration::from_millis(toposem_bench::sized(
            2000, 300,
        )))
}

/// N matched person/worksfor pairs and every admissible department row
/// (6 of them — the wider the department relation, the worse the
/// as-written cross product).
fn loaded_engine() -> Engine {
    let eng = Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ));
    let s = eng.with_db(|db| db.schema().clone());
    let person = s.type_id("person").unwrap();
    let worksfor = s.type_id("worksfor").unwrap();
    let department = s.type_id("department").unwrap();
    let deps = [
        ("sales", "amsterdam"),
        ("research", "utrecht"),
        ("admin", "utrecht"),
    ];
    for d in ["sales", "research", "admin"] {
        for l in ["amsterdam", "utrecht"] {
            eng.insert(
                department,
                &[("depname", Value::str(d)), ("location", Value::str(l))],
            )
            .unwrap();
        }
    }
    for i in 0..n() {
        let (d, l) = deps[(i % 3) as usize];
        eng.insert(
            person,
            &[
                ("name", Value::str(&format!("p{i:05}"))),
                ("age", Value::Int(i % 90)),
            ],
        )
        .unwrap();
        eng.insert(
            worksfor,
            &[
                ("name", Value::str(&format!("p{i:05}"))),
                ("age", Value::Int(i % 90)),
                ("depname", Value::str(d)),
                ("location", Value::str(l)),
            ],
        )
        .unwrap();
    }
    eng
}

/// Median-of-`runs` wall time of `f`.
fn time<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            criterion::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench(c: &mut Criterion) {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let person = s.type_id("person").unwrap();
    let worksfor = s.type_id("worksfor").unwrap();
    let department = s.type_id("department").unwrap();

    // Deliberately hostile nesting: the first join is a cross product.
    let q = Query::scan(person)
        .join(Query::scan(department))
        .join(Query::scan(worksfor));

    let stats = eng.statistics();
    let (reordered, baseline): (Physical, Physical) = eng.with_parts(|db, indexes| {
        let logical = lower_and_rewrite(&q, db).unwrap();
        (
            plan_with(&logical, db, indexes, &stats, &PlannerOptions::default()),
            plan_with(
                &logical,
                db,
                indexes,
                &stats,
                &PlannerOptions {
                    reorder_joins: false,
                    merge_joins: false,
                    ..Default::default()
                },
            ),
        )
    });
    let plan_text = eng.with_db(|db| reordered.explain(db, &stats));
    println!("reordered plan:\n{plan_text}");
    assert!(
        plan_text.contains("MergeJoin"),
        "the reordered plan must merge-join the matched sides:\n{plan_text}"
    );
    let base_text = eng.with_db(|db| baseline.explain(db, &stats));
    println!("baseline plan:\n{base_text}");

    // Correctness before numbers: both plans equal the naive interpreter.
    let naive = eng.with_db(|db| q.execute(db).unwrap().1);
    eng.with_parts(|db, indexes| {
        assert_eq!(
            execute(&reordered, db, indexes),
            naive,
            "reordered diverged"
        );
        assert_eq!(execute(&baseline, db, indexes), naive, "baseline diverged");
    });
    assert_eq!(naive.len(), n() as usize);

    let dp_t = eng.with_parts(|db, indexes| time(15, || execute(&reordered, db, indexes)));
    let base_t = eng.with_parts(|db, indexes| time(15, || execute(&baseline, db, indexes)));
    let speedup = base_t / dp_t;
    println!(
        "q3 3-way join over {} tuples: left-deep hash {:.2} ms, DP+merge {:.2} ms → {speedup:.1}×",
        n(),
        base_t * 1e3,
        dp_t * 1e3
    );
    assert!(
        speedup >= 2.0,
        "DP-chosen order + merge join must beat the left-deep hash baseline ≥2×, got {speedup:.2}×"
    );
    toposem_bench::emit_bench_json(
        "q3_join_order",
        &[
            toposem_bench::BenchSample::from_secs("left_deep_hash_baseline", 15, base_t),
            toposem_bench::BenchSample::from_secs("dp_reordered_merge", 15, dp_t),
        ],
    );

    let mut g = c.benchmark_group("q3_join_order");
    g.bench_function("left_deep_hash_baseline", |b| {
        b.iter(|| eng.with_parts(|db, indexes| execute(&baseline, db, indexes)))
    });
    g.bench_function("dp_reordered_merge", |b| {
        b.iter(|| eng.with_parts(|db, indexes| execute(&reordered, db, indexes)))
    });
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
