//! Q1: planned vs. naive execution of sanctioned queries over a
//! 10 000-tuple relation.
//!
//! The headline claim: an `IndexSeek` access path beats the naive
//! interpreter's clone-the-extension-then-filter evaluation by ≥5× on a
//! point query (in practice by orders of magnitude). The bench asserts the
//! ratio directly — with a measured wall-clock comparison — before handing
//! the individual timings to Criterion.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::PlannedExecution;
use toposem_storage::{Engine, Query};

/// 10 000 tuples normally, 2 000 in CI short mode (`TOPOSEM_BENCH_SHORT`).
fn n() -> i64 {
    toposem_bench::sized(10_000, 2_000)
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(toposem_bench::sized(
            300, 50,
        )))
        .measurement_time(std::time::Duration::from_millis(toposem_bench::sized(
            2000, 300,
        )))
}

fn loaded_engine() -> Engine {
    let eng = Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ));
    let (employee, name) = eng.with_db(|db| {
        let s = db.schema();
        (s.type_id("employee").unwrap(), s.attr_id("name").unwrap())
    });
    let deps = ["sales", "research", "admin"];
    for i in 0..n() {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("w{i}"))),
                ("age", Value::Int(i % 120)),
                ("depname", Value::str(deps[(i % 3) as usize])),
            ],
        )
        .unwrap();
    }
    let department = eng.with_db(|db| db.schema().type_id("department").unwrap());
    for (d, l) in [("sales", "amsterdam"), ("research", "utrecht")] {
        eng.insert(
            department,
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
    eng.create_index(employee, name).unwrap();
    eng
}

/// Median-of-`runs` wall time of `f`.
fn time<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            criterion::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench(c: &mut Criterion) {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let name = s.attr_id("name").unwrap();
    let depname = s.attr_id("depname").unwrap();

    let n = n();
    let point = Query::scan(employee).select(name, Value::str(&format!("w{}", n - 1)));
    let third = Query::scan(employee).select(depname, Value::str("sales"));
    let join = Query::scan(employee)
        .join(Query::scan(department))
        .select(depname, Value::str("research"));

    // The acceptance claim, measured head-to-head before Criterion runs:
    // warm the statistics cache, then compare medians.
    let _ = eng.query_planned(&point).unwrap();
    let naive_t = time(30, || eng.with_db(|db| point.execute(db).unwrap()));
    let planned_t = time(30, || eng.query_planned(&point).unwrap());
    let speedup = naive_t / planned_t;
    println!(
        "q1 point query over {n} tuples: naive {:.1} µs, planned (IndexSeek) {:.1} µs → {speedup:.0}×",
        naive_t * 1e6,
        planned_t * 1e6
    );
    assert!(
        speedup >= 5.0,
        "IndexSeek must beat naive Scan+Select ≥5× on {n} tuples, got {speedup:.1}×"
    );
    toposem_bench::emit_bench_json(
        "q1_planner",
        &[
            toposem_bench::BenchSample::from_secs("naive_point_select", 30, naive_t),
            toposem_bench::BenchSample::from_secs("planned_point_select", 30, planned_t),
        ],
    );
    assert!(
        eng.explain(&point).unwrap().contains("IndexSeek"),
        "point query must choose the index access path"
    );

    let mut g = c.benchmark_group("q1_planner");
    for (label, q) in [
        ("point_select", &point),
        ("third_select", &third),
        ("join_select", &join),
    ] {
        g.bench_with_input(BenchmarkId::new("naive", label), q, |b, q| {
            b.iter(|| eng.with_db(|db| q.execute(db).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("planned", label), q, |b, q| {
            b.iter(|| eng.query_planned(q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
