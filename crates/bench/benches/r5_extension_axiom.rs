//! R5: the Extension Axiom check (contributor join + injectivity), swept
//! over the worksfor cardinality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_core::employee_schema;
use toposem_design::{random_database, ExtensionParams};
use toposem_extension::{check_extension_axiom, multi_join, ContainmentPolicy};

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("r5_extension_axiom");
    let schema = employee_schema();
    let worksfor = schema.type_id("worksfor").unwrap();
    let employee = schema.type_id("employee").unwrap();
    let department = schema.type_id("department").unwrap();
    for n in [10usize, 100, 1000, 10_000] {
        let db = random_database(
            &schema,
            &ExtensionParams {
                tuples_per_type: n,
                value_range: (n as i64 / 2).max(4),
                policy: ContainmentPolicy::Eager,
                seed: 3,
            },
        );
        g.bench_with_input(BenchmarkId::new("check_axiom_worksfor", n), &db, |b, db| {
            b.iter(|| check_extension_axiom(db, worksfor).holds())
        });
        let emp = db.extension(employee);
        let dep = db.extension(department);
        g.bench_with_input(
            BenchmarkId::new("contributor_join", n),
            &(emp, dep),
            |b, (e, d)| b.iter(|| multi_join(schema.attr_count(), &[e, d]).len()),
        );
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
