//! R2: checking the duality corollary y ∈ S_x ⇔ x ∈ G_y over all pairs,
//! swept over schema size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_bench::{sweep_schema, SCHEMA_SWEEP};
use toposem_core::{GeneralisationTopology, SpecialisationTopology};

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("r2_duality");
    for n in SCHEMA_SWEEP {
        let schema = sweep_schema(n);
        let spec = SpecialisationTopology::of_schema(&schema);
        let gen = GeneralisationTopology::of_schema(&schema);
        g.bench_with_input(
            BenchmarkId::new("all_pairs_duality", schema.type_count()),
            &(spec, gen),
            |b, (sp, gn)| {
                b.iter(|| {
                    let mut ok = true;
                    for x in schema.type_ids() {
                        for y in schema.type_ids() {
                            ok &=
                                sp.s_set(x).contains(y.index()) == gn.g_set(y).contains(x.index());
                        }
                    }
                    ok
                })
            },
        );
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
