//! R8: the headline comparison — toposem's unique view-update translation
//! vs the Universal Relation's placeholder machinery, swept over workload
//! size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_core::{employee_schema, Intension, ViewType};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_storage::{apply_update, Engine, ViewUpdate};
use toposem_ur::{UniversalRelation, Window};

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("r8_view_updates");
    let schema = employee_schema();
    let employee = schema.type_id("employee").unwrap();
    for n in [100usize, 1000, 10_000] {
        // toposem: n inserts through a view, then n deletes.
        g.bench_with_input(BenchmarkId::new("toposem_insert_delete", n), &n, |b, &n| {
            b.iter(|| {
                let engine = Engine::new(Database::new(
                    Intension::analyse(schema.clone()),
                    DomainCatalog::employee_defaults(),
                    ContainmentPolicy::Eager,
                ));
                let view = ViewType::new(&schema, "emp", &[employee]).unwrap();
                for i in 0..n {
                    apply_update(
                        &engine,
                        &view,
                        ViewUpdate::Insert {
                            target: employee,
                            fields: &[
                                ("name", Value::str(&format!("p{i}"))),
                                ("age", Value::Int((i % 60) as i64)),
                                ("depname", Value::str("sales")),
                            ],
                        },
                    )
                    .unwrap();
                }
                engine.extension(employee).len()
            })
        });
        // UR: n inserts through a window; measure window materialisation
        // and the translation-count (ambiguity) computation.
        g.bench_with_input(BenchmarkId::new("ur_insert_window", n), &n, |b, &n| {
            b.iter(|| {
                let mut ur = UniversalRelation::new(&schema);
                let w = Window::new(&schema, &["name", "age", "depname"]).unwrap();
                for i in 0..n {
                    ur.insert_through_window(
                        &w,
                        &[
                            (
                                schema.attr_id("name").unwrap(),
                                Value::str(&format!("p{i}")),
                            ),
                            (schema.attr_id("age").unwrap(), Value::Int((i % 60) as i64)),
                            (schema.attr_id("depname").unwrap(), Value::str("sales")),
                        ],
                    );
                }
                ur.window(&w).len()
            })
        });
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
