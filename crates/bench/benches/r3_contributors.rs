//! R3: computing CO_e (direct generalisations) for every type, swept over
//! schema size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_bench::{sweep_schema, SCHEMA_SWEEP};
use toposem_core::{contributors::computed_contributors, GeneralisationTopology, TypeId};

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("r3_contributors");
    for n in SCHEMA_SWEEP {
        let schema = sweep_schema(n);
        let gen = GeneralisationTopology::of_schema(&schema);
        g.bench_with_input(
            BenchmarkId::new("all_contributors", schema.type_count()),
            &gen,
            |b, gn| {
                b.iter(|| {
                    let mut total = 0;
                    for e in schema.type_ids() {
                        total += computed_contributors(&schema, gn, e).card();
                    }
                    total
                })
            },
        );
        // Comparison point: Hasse lower covers via the preorder.
        g.bench_with_input(
            BenchmarkId::new("hasse_lower_covers", schema.type_count()),
            &gen,
            |b, gn| {
                let order = gn.order();
                b.iter(|| {
                    let mut total = 0;
                    for e in schema.type_ids() {
                        total += order.lower_covers(TypeId::index(e)).len();
                    }
                    total
                })
            },
        );
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
