//! Q2: ordered-index range seek vs. sequential scan on 10 000 tuples
//! across selectivities (0.1% / 1% / 10%).
//!
//! The headline claim: an `IndexRangeSeek` access path beats the naive
//! interpreter's clone-the-extension-then-filter evaluation by ≥5× on a
//! 1%-selective range query (in practice by much more at 0.1%, and the
//! gap narrows as the range widens). The bench asserts the 1% ratio
//! directly — with a measured wall-clock comparison — before handing the
//! individual timings to Criterion.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::PlannedExecution;
use toposem_storage::{Engine, Query};

/// 10 000 tuples normally, 2 000 in CI short mode (`TOPOSEM_BENCH_SHORT`).
fn n() -> i64 {
    toposem_bench::sized(10_000, 2_000)
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(toposem_bench::sized(
            300, 50,
        )))
        .measurement_time(std::time::Duration::from_millis(toposem_bench::sized(
            2000, 300,
        )))
}

/// 10k managers with a dense unique `budget` (an unbounded integer
/// domain, so range selectivity is controlled exactly by the interval
/// width), ordered-indexed on `budget`.
fn loaded_engine() -> Engine {
    let eng = Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ));
    let (manager, budget) = eng.with_db(|db| {
        let s = db.schema();
        (s.type_id("manager").unwrap(), s.attr_id("budget").unwrap())
    });
    let deps = ["sales", "research", "admin"];
    for i in 0..n() {
        eng.insert(
            manager,
            &[
                ("name", Value::str(&format!("m{i}"))),
                ("age", Value::Int(i % 120)),
                ("depname", Value::str(deps[(i % 3) as usize])),
                ("budget", Value::Int(i)),
            ],
        )
        .unwrap();
    }
    eng.create_ord_index(manager, budget).unwrap();
    eng
}

/// Median-of-`runs` wall time of `f`.
fn time<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            criterion::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench(c: &mut Criterion) {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let manager = s.type_id("manager").unwrap();
    let budget = s.attr_id("budget").unwrap();

    // Interval widths for 0.1% / 1% / 10% of the load, anchored
    // mid-distribution so the BTree walk is not an edge case.
    let n = n();
    let anchor = n / 2;
    let range = |width: i64| {
        Query::scan(manager).select_between(
            budget,
            Value::Int(anchor),
            Value::Int(anchor + width - 1),
        )
    };
    let selectivities = [("0.1pct", n / 1_000), ("1pct", n / 100), ("10pct", n / 10)];

    // The acceptance claim, measured head-to-head before Criterion runs:
    // warm the statistics + plan caches, then compare medians at 1%.
    let q1pct = range(n / 100);
    let (_, rows) = eng.query_planned(&q1pct).unwrap();
    assert_eq!(
        rows.len(),
        (n / 100) as usize,
        "1% range must match exactly 1% of the tuples"
    );
    assert!(
        eng.explain(&q1pct).unwrap().contains("IndexRangeSeek"),
        "1% range query must choose the ordered-index range seek:\n{}",
        eng.explain(&q1pct).unwrap()
    );
    let naive_t = time(30, || eng.with_db(|db| q1pct.execute(db).unwrap()));
    let planned_t = time(30, || eng.query_planned(&q1pct).unwrap());
    let speedup = naive_t / planned_t;
    println!(
        "q2 1% range over {n} tuples: naive seq {:.1} µs, planned (IndexRangeSeek) {:.1} µs → {speedup:.0}×",
        naive_t * 1e6,
        planned_t * 1e6
    );
    assert!(
        speedup >= 5.0,
        "IndexRangeSeek must beat the sequential scan ≥5× at 1% selectivity on {n} tuples, got {speedup:.1}×"
    );
    toposem_bench::emit_bench_json(
        "q2_range_scan",
        &[
            toposem_bench::BenchSample::from_secs("naive_1pct_range", 30, naive_t),
            toposem_bench::BenchSample::from_secs("planned_1pct_range", 30, planned_t),
        ],
    );

    let mut g = c.benchmark_group("q2_range_scan");
    for (label, width) in selectivities {
        let q = range(width);
        // Correctness alongside the numbers: both paths agree.
        let naive = eng.with_db(|db| q.execute(db).unwrap());
        let planned = eng.query_planned(&q).unwrap();
        assert_eq!(naive, planned, "paths diverged at {label}");
        g.bench_with_input(BenchmarkId::new("seqscan_naive", label), &q, |b, q| {
            b.iter(|| eng.with_db(|db| q.execute(db).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("index_range_seek", label), &q, |b, q| {
            b.iter(|| eng.query_planned(q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
