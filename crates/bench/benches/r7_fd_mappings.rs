//! R7: nucleus construction, satisfied-FD sets, and the dependency
//! mapping corollary, on the employee fixture and a scaled extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_bench::employee_db;
use toposem_core::employee_schema;
use toposem_design::{random_database, ExtensionParams};
use toposem_extension::ContainmentPolicy;
use toposem_fd::{nucleus, satisfied_fd_set, verify_fd_corollary};

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("r7_fd_mappings");
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema().clone();
    let worksfor = s.type_id("worksfor").unwrap();
    let gen = db.intension().generalisation();

    g.bench_function("nucleus_worksfor", |b| {
        b.iter(|| nucleus(gen, worksfor).len())
    });

    for n in [10usize, 100, 1000] {
        let sdb = random_database(
            &employee_schema(),
            &ExtensionParams {
                tuples_per_type: n,
                value_range: (n as i64).max(4),
                policy: ContainmentPolicy::Eager,
                seed: 5,
            },
        );
        g.bench_with_input(BenchmarkId::new("satisfied_fd_set", n), &sdb, |b, db| {
            b.iter(|| satisfied_fd_set(db, worksfor).len())
        });
        g.bench_with_input(BenchmarkId::new("verify_fd_corollary", n), &sdb, |b, db| {
            b.iter(|| verify_fd_corollary(db).all_hold())
        });
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
