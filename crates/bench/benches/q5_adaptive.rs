//! Q5: feedback-driven adaptive costing on a skewed workload.
//!
//! A zipfian-ish age distribution (99% of tuples in a dense band, 1%
//! in a long sparse tail) defeats min/max interpolation: the tail
//! range `age ≥ 1000` looks like ~the whole table, so under parallel
//! execution the planner statically mispicks a morsel-parallel
//! `SeqScan` over the `IndexRangeSeek` that actually touches 100×
//! fewer tuples. One profiled execution trains the selectivity-
//! feedback cache, the correction crosses the re-plan threshold, and
//! the next plan flips to the range seek — this bench pins that the
//! corrected plan is ≥2× faster than the static one, that q-error
//! collapses after training, and that `explain_analyze` factors the
//! corrected estimate as `static×corr`.
//!
//! It also re-pins the o1 overhead claim with the feedback loop in the
//! path: over a *uniform* workload (observations recorded every
//! execution, corrections all ≈1, no re-plan churn), planned execution
//! with feedback enabled must stay within 5% of a feedback-disabled
//! engine.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, DomainSpec, Value};
use toposem_planner::{
    execute_with, lower_and_rewrite, plan, ExecOptions, Physical, PlannedExecution,
    ProfiledExecution,
};
use toposem_storage::{Engine, Query};

/// 20 000 tuples normally, 4 000 in CI short mode.
fn n() -> i64 {
    toposem_bench::sized(20_000, 4_000)
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(toposem_bench::sized(
            300, 50,
        )))
        .measurement_time(std::time::Duration::from_millis(toposem_bench::sized(
            2000, 300,
        )))
}

/// The employee schema with an unbounded age domain (the default
/// catalog caps ages at 150, which would forbid the tail).
fn fresh_db() -> Database {
    let mut catalog = DomainCatalog::new();
    catalog
        .bind("person-names", DomainSpec::AnyStr)
        .bind("ages", DomainSpec::AnyInt)
        .bind(
            "department-names",
            DomainSpec::Enum(vec!["sales".into(), "research".into(), "admin".into()]),
        )
        .bind("amounts", DomainSpec::AnyInt)
        .bind(
            "locations",
            DomainSpec::Enum(vec!["amsterdam".into(), "utrecht".into()]),
        );
    Database::new(
        Intension::analyse(employee_schema()),
        catalog,
        ContainmentPolicy::Eager,
    )
}

/// 99% of ages dense in [0, 97), 1% in a sparse tail ≥ 1000 stretching
/// the observed span ~1000×; ordered index on age.
fn skewed_engine(rows: i64) -> Engine {
    let eng = Engine::new(fresh_db());
    let (employee, age) = eng.with_db(|db| {
        let s = db.schema();
        (s.type_id("employee").unwrap(), s.attr_id("age").unwrap())
    });
    let deps = ["sales", "research", "admin"];
    for i in 0..rows {
        let a = if i % 100 == 99 {
            1_000 + (i * 7) % 900_000
        } else {
            i % 97
        };
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("w{i:06}"))),
                ("age", Value::Int(a)),
                ("depname", Value::str(deps[(i % 3) as usize])),
            ],
        )
        .unwrap();
    }
    eng.create_ord_index(employee, age).unwrap();
    eng
}

/// Uniform ages — estimates are already accurate, so the feedback loop
/// records observations without ever steering a plan. Hash index on
/// depname so the workload mixes access paths.
fn uniform_engine(rows: i64) -> Engine {
    let eng = Engine::new(fresh_db());
    let (employee, depname) = eng.with_db(|db| {
        let s = db.schema();
        (
            s.type_id("employee").unwrap(),
            s.attr_id("depname").unwrap(),
        )
    });
    let deps = ["sales", "research", "admin"];
    for i in 0..rows {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("u{i:06}"))),
                ("age", Value::Int(i % 120)),
                ("depname", Value::str(deps[(i % 3) as usize])),
            ],
        )
        .unwrap();
    }
    eng.create_index(employee, depname).unwrap();
    eng
}

/// Minimum wall time over `samples` runs (the estimator least polluted
/// by scheduler noise — same contract as o1).
fn min_time<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            criterion::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench(c: &mut Criterion) {
    // Equi-depth histograms see through this bench's skew statically
    // (q6's statistics — the tail range prices correctly on the first
    // plan), so pin the *runtime feedback* loop by reverting to min/max
    // interpolation for the whole process: the mispick it corrects must
    // exist to be corrected.
    toposem_storage::set_histograms_enabled(false);
    // Fixed parallelism so the static mispick (morsel-parallel SeqScan
    // beating a serial-priced IndexRangeSeek) is reproducible. Resolved
    // once per process via ExecOptions::default's OnceLock — set before
    // the first planned execution.
    std::env::set_var("TOPOSEM_THREADS", "4");
    std::env::set_var("TOPOSEM_MORSEL_SIZE", "512");

    let eng = skewed_engine(n());
    let (employee, age) = eng.with_db(|db| {
        let s = db.schema();
        (s.type_id("employee").unwrap(), s.attr_id("age").unwrap())
    });
    let q = Query::scan(employee).select_ge(age, Value::Int(1_000));
    let (_, naive) = eng.with_db(|db| q.execute(db)).unwrap();
    assert_eq!(naive.len() as i64, n() / 100, "1% tail");

    // The statically chosen plan, before any feedback.
    let stats0 = eng.statistics();
    let static_plan: Physical = eng
        .with_parts(|db, indexes| plan(&lower_and_rewrite(&q, db).unwrap(), db, indexes, &stats0));
    let static_desc = format!("{static_plan:?}");
    // Under parallel pricing the scan's morsel discount undercuts the
    // (serially priced) range seek; without the parallel feature the
    // seek already wins statically and only the estimate is wrong.
    let mispicked = static_desc.contains("SeqScan");
    if cfg!(feature = "parallel") {
        assert!(
            mispicked,
            "static interpolation must mispick the parallel scan:\n{static_desc}"
        );
    }

    // One profiled execution trains the loop.
    let (_, rel, qp1) = eng.query_profiled(&q).unwrap();
    assert_eq!(rel, naive, "mis-planned run is still correct");
    let q_before = qp1.root.q_error();
    assert!(
        q_before > 10.0,
        "the ~100× misestimate is what trains the loop: q={q_before}"
    );
    assert!(
        eng.feedback().stats().replans >= 1,
        "the correction crosses the re-plan threshold"
    );

    // The corrected plan seeks the tail instead of scanning everything.
    let stats1 = eng.statistics();
    let corrected_plan: Physical = eng
        .with_parts(|db, indexes| plan(&lower_and_rewrite(&q, db).unwrap(), db, indexes, &stats1));
    assert!(
        format!("{corrected_plan:?}").contains("IndexRangeSeek"),
        "corrected costing must pick the range seek: {corrected_plan:?}"
    );

    // q-error collapses once the correction is live.
    let (_, rel2, qp2) = eng.query_profiled(&q).unwrap();
    assert_eq!(rel2, naive, "feedback changes plans, never results");
    let q_after = qp2.root.q_error();
    assert!(
        q_after < q_before && q_after < 1.5,
        "q-error must collapse after training: {q_before} → {q_after}"
    );
    let analyzed = eng.explain_analyze(&q).unwrap();
    assert!(
        analyzed.contains('×'),
        "explain_analyze factors est as static×corr:\n{analyzed}"
    );

    // Speedup: corrected vs static plan, same engine, same options.
    let opts = ExecOptions::default();
    let (samples, iters) = toposem_bench::sized((15, 20), (10, 10));
    let time_plan = |p: &Physical| {
        eng.with_parts(|db, indexes| {
            min_time(samples, || {
                for _ in 0..iters {
                    criterion::black_box(execute_with(p, db, indexes, &opts));
                }
            })
        })
    };
    let static_t = time_plan(&static_plan);
    let corrected_t = time_plan(&corrected_plan);
    let speedup = static_t / corrected_t;
    println!(
        "q5 tail query ({} tuples, 1% tail, min of {samples}): static {:.3} ms, \
         corrected {:.3} ms → {speedup:.2}× speedup (q {q_before:.1} → {q_after:.2})",
        n(),
        static_t * 1e3 / iters as f64,
        corrected_t * 1e3 / iters as f64,
    );
    if mispicked {
        assert!(
            speedup >= 2.0,
            "feedback-corrected plan must be ≥2× faster than the static mispick, \
             measured {speedup:.2}×"
        );
    }

    // Overhead guard: recording observations every execution must stay
    // within 5% of a feedback-disabled engine on a uniform workload.
    std::env::set_var("TOPOSEM_FEEDBACK", "0");
    let eng_off = uniform_engine(toposem_bench::sized(10_000, 2_000));
    std::env::set_var("TOPOSEM_FEEDBACK", "1");
    let eng_on = uniform_engine(toposem_bench::sized(10_000, 2_000));
    assert!(!eng_off.feedback().enabled() && eng_on.feedback().enabled());
    let (employee_u, age_u, depname_u) = eng_on.with_db(|db| {
        let s = db.schema();
        (
            s.type_id("employee").unwrap(),
            s.attr_id("age").unwrap(),
            s.attr_id("depname").unwrap(),
        )
    });
    // A range returning ~2/3 of the table (clears the significance
    // gate, estimate already accurate) plus an indexed point select.
    let wide = Query::scan(employee_u).select_ge(age_u, Value::Int(40));
    let point = Query::scan(employee_u).select(depname_u, Value::str("sales"));
    let run_workload = |eng: &Engine| {
        for q in [&wide, &point] {
            criterion::black_box(eng.query_planned(q).unwrap());
        }
    };
    run_workload(&eng_off); // prime plan caches outside the timing
    run_workload(&eng_on);
    let off_t = min_time(samples, || {
        for _ in 0..iters {
            run_workload(&eng_off);
        }
    });
    let on_t = min_time(samples, || {
        for _ in 0..iters {
            run_workload(&eng_on);
        }
    });
    let overhead = on_t / off_t;
    println!(
        "q5 feedback overhead (uniform workload): disabled {:.3} ms, enabled {:.3} ms \
         → {overhead:.3}×",
        off_t * 1e3 / iters as f64,
        on_t * 1e3 / iters as f64,
    );
    assert!(
        overhead <= 1.05,
        "feedback recording must cost ≤5% on a uniform workload, measured {overhead:.3}×"
    );
    assert!(
        eng_on.feedback().stats().observations > 0,
        "the enabled engine actually recorded observations"
    );

    let mut samples_out = vec![
        toposem_bench::BenchSample::from_secs(
            "planned_feedback_off",
            iters as u64,
            off_t / iters as f64,
        ),
        toposem_bench::BenchSample::from_secs(
            "planned_feedback_on",
            iters as u64,
            on_t / iters as f64,
        ),
    ];
    // The mispick (and so the speedup ratio) only exists under parallel
    // pricing; serial runs omit the samples rather than emit a pair the
    // regression tracker would misread.
    if mispicked {
        samples_out.push(toposem_bench::BenchSample::from_secs(
            "static_plan",
            iters as u64,
            static_t / iters as f64,
        ));
        samples_out.push(toposem_bench::BenchSample::from_secs(
            "corrected_plan",
            iters as u64,
            corrected_t / iters as f64,
        ));
    }
    toposem_bench::emit_bench_json("q5_adaptive", &samples_out);

    let mut g = c.benchmark_group("q5_adaptive");
    g.bench_function("corrected_tail_query", |b| {
        b.iter(|| criterion::black_box(eng.query_planned(&q).unwrap()))
    });
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
