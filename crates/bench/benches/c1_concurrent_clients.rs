//! C1: concurrent snapshot readers scaling against an active writer.
//!
//! The workload models the server's session mix: reader "clients" run
//! an employee ⋈ department join through the MVCC snapshot path
//! ([`SnapshotExecution::query_snapshot_with`]) while a writer thread
//! keeps committing small transactions the whole time, churning the
//! committed-state snapshot under them. Each query executes serially
//! (`ExecOptions::serial()`) so the measured scaling is *session
//! concurrency* — snapshot reads never taking the engine write lock —
//! not morsel parallelism inside one query.
//!
//! The headline claim (the PR's acceptance bar): a fixed budget of
//! reads completes ≥2× faster on 4 reader threads than on 1, with the
//! writer active in both runs. On <4 cores the comparison still runs
//! and prints, but the ratio is only asserted where the hardware can
//! deliver it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::{ExecOptions, SnapshotExecution};
use toposem_storage::{Engine, Query};

/// Employee rows the readers join over; the writer's inserts land in
/// `person`, so snapshots churn while the read workload stays constant.
fn n() -> i64 {
    toposem_bench::sized(30_000, 6_000)
}

/// Total queries per measured run, split evenly across reader threads.
fn total_reads() -> usize {
    toposem_bench::sized(64, 24)
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(toposem_bench::sized(300, 50)))
        .measurement_time(Duration::from_millis(toposem_bench::sized(2000, 300)))
}

const DEPS: [(&str, &str); 3] = [
    ("sales", "amsterdam"),
    ("research", "utrecht"),
    ("admin", "utrecht"),
];

fn loaded_engine() -> Arc<Engine> {
    let eng = Arc::new(Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    )));
    let (employee, department) = eng.with_db(|db| {
        let s = db.schema();
        (
            s.type_id("employee").unwrap(),
            s.type_id("department").unwrap(),
        )
    });
    for (d, l) in DEPS {
        eng.insert(
            department,
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
    for i in 0..n() {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("e{i:06}"))),
                ("age", Value::Int(i % 90)),
                ("depname", Value::str(DEPS[(i % 3) as usize].0)),
            ],
        )
        .unwrap();
    }
    eng
}

/// Runs the fixed read budget on `threads` readers, each capturing a
/// fresh committed snapshot per query (the autocommit session pattern).
/// Returns the total row count so the work cannot be optimised away.
fn run_readers(eng: &Arc<Engine>, q: &Query, threads: usize) -> usize {
    let per = total_reads() / threads;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let serial = ExecOptions::serial();
                    let mut rows = 0usize;
                    for _ in 0..per {
                        let snap = eng.snapshot().expect("committed snapshot was primed");
                        let (_, rel) = eng.query_snapshot_with(&snap, q, &serial).unwrap();
                        rows += rel.len();
                    }
                    rows
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// Median wall time of `runs` executions of the read budget on
/// `threads` readers, with a writer committing throughout.
fn measure(eng: &Arc<Engine>, q: &Query, threads: usize, runs: usize) -> f64 {
    let person = eng.with_db(|db| db.schema().type_id("person").unwrap());
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            let mut i = 0i64;
            let mut committed = 0usize;
            while !stop.load(Ordering::SeqCst) {
                eng.begin().unwrap();
                for _ in 0..16 {
                    eng.insert(
                        person,
                        &[
                            ("name", Value::str(&format!("c1w{i:08}"))),
                            ("age", Value::Int(i % 90)),
                        ],
                    )
                    .unwrap();
                    i += 1;
                }
                eng.commit().unwrap();
                committed += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            committed
        });
        let mut samples: Vec<f64> = (0..runs)
            .map(|_| {
                let t0 = Instant::now();
                criterion::black_box(run_readers(eng, q, threads));
                t0.elapsed().as_secs_f64()
            })
            .collect();
        stop.store(true, Ordering::SeqCst);
        let committed = writer.join().unwrap();
        assert!(
            committed > 0,
            "the writer must have committed during the measurement"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[samples.len() / 2]
    })
}

fn bench(c: &mut Criterion) {
    let eng = loaded_engine();
    let (employee, department) = eng.with_db(|db| {
        let s = db.schema();
        (
            s.type_id("employee").unwrap(),
            s.type_id("department").unwrap(),
        )
    });
    let scan = Query::scan(employee);
    let q = Query::scan(employee).join(Query::scan(department));

    // Correctness before numbers: on one snapshot the join covers the
    // scan exactly (every employee's department exists), and a primed
    // snapshot means readers never need the engine lock later.
    let serial = ExecOptions::serial();
    let snap = eng.snapshot().expect("no txn active");
    let (_, emp) = eng.query_snapshot_with(&snap, &scan, &serial).unwrap();
    let (_, joined) = eng.query_snapshot_with(&snap, &q, &serial).unwrap();
    assert_eq!(emp.len() as i64, n());
    assert_eq!(
        joined.len(),
        emp.len(),
        "join over one snapshot must cover its scan"
    );
    drop((snap, emp, joined));

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let runs = toposem_bench::sized(7, 5);
    let total = total_reads();
    let t1 = measure(&eng, &q, 1, runs);
    let t4 = measure(&eng, &q, 4, runs);
    let speedup = t1 / t4;
    println!(
        "c1 {total} snapshot joins over {} employees on {cores} cores, writer active: \
         1 reader {:.1} ms, 4 readers {:.1} ms → {speedup:.2}×",
        n(),
        t1 * 1e3,
        t4 * 1e3
    );
    if cores >= 4 {
        // Full size asserts the headline 2×; CI short mode (6k rows on
        // shared 4-vCPU runners, with the writer stealing slices)
        // asserts a softer floor so scheduler noise doesn't flake the
        // smoke job while real regressions — readers serialising on an
        // engine lock run at ~1.0× — still fail loudly.
        let floor = toposem_bench::sized(2.0, 1.5);
        assert!(
            speedup >= floor,
            "snapshot readers must scale ≥{floor}× from 1→4 threads on {cores} cores, got {speedup:.2}×"
        );
    } else {
        println!("c1: ratio not asserted (needs ≥4 cores; have {cores})");
    }
    toposem_bench::emit_bench_json(
        "c1_concurrent_clients",
        &[
            toposem_bench::BenchSample::from_secs(
                "reader_1_thread",
                total as u64,
                t1 / total as f64,
            ),
            toposem_bench::BenchSample::from_secs(
                "reader_4_threads",
                total as u64,
                t4 / total as f64,
            ),
        ],
    );

    let mut g = c.benchmark_group("c1_concurrent_clients");
    g.bench_function("readers_x1", |b| b.iter(|| run_readers(&eng, &q, 1)));
    g.bench_function("readers_x4", |b| b.iter(|| run_readers(&eng, &q, 4)));
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
