//! R9: the §6 extensions — boolean-algebra law checking, incomplete-info
//! FD semantics, MVD checking (both formulations), and presheaf gluing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_bench::employee_db;
use toposem_constraints::{
    mvd_holds_as_product, mvd_holds_pairwise, BooleanAlgebra, IncompleteRelation, Mvd, PartialTuple,
};
use toposem_core::employee_schema;
use toposem_design::{random_database, ExtensionParams};
use toposem_extension::ContainmentPolicy;
use toposem_sheaf::ExtensionPresheaf;

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("r9_extensions");

    for atoms in [2usize, 4, 6] {
        let ba = BooleanAlgebra::with_atoms(atoms);
        g.bench_with_input(BenchmarkId::new("ba_verify_laws", atoms), &ba, |b, ba| {
            b.iter(|| ba.verify_laws())
        });
    }

    // Incomplete-information FD: certain semantics is exponential in the
    // incompleteness; sweep the number of partial tuples.
    for n in [2usize, 4, 6] {
        let algebras = vec![BooleanAlgebra::with_atoms(2), BooleanAlgebra::with_atoms(2)];
        let mut rel = IncompleteRelation::new(algebras.clone());
        for i in 0..n {
            let dep = algebras[0].atom(i % 2);
            let loc = if i % 3 == 0 {
                algebras[1].top()
            } else {
                algebras[1].atom(i % 2)
            };
            rel.insert(PartialTuple::new(vec![dep, loc]));
        }
        g.bench_with_input(BenchmarkId::new("fd_state_semantics", n), &rel, |b, r| {
            b.iter(|| r.fd_holds_state(&[0], &[1]))
        });
        g.bench_with_input(BenchmarkId::new("fd_certain_semantics", n), &rel, |b, r| {
            b.iter(|| r.fd_holds_certain(&[0], &[1]))
        });
    }

    // MVD: pairwise (O(n^2) with witness scan) vs product-shape (group
    // hash) — who wins and where.
    let schema = employee_schema();
    for n in [10usize, 50, 200] {
        let db = random_database(
            &schema,
            &ExtensionParams {
                tuples_per_type: n,
                value_range: 4,
                policy: ContainmentPolicy::Eager,
                seed: 6,
            },
        );
        let mvd = Mvd {
            lhs: schema.type_id("person").unwrap(),
            rhs: schema.type_id("employee").unwrap(),
            context: schema.type_id("worksfor").unwrap(),
        };
        g.bench_with_input(BenchmarkId::new("mvd_pairwise", n), &db, |b, db| {
            b.iter(|| mvd_holds_pairwise(db, &mvd))
        });
        g.bench_with_input(BenchmarkId::new("mvd_product_shape", n), &db, |b, db| {
            b.iter(|| mvd_holds_as_product(db, &mvd))
        });
    }

    // Presheaf gluing over the trivial cover on the fixture.
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    let employee = s.type_id("employee").unwrap();
    let open = db.intension().specialisation().s_set(employee).clone();
    g.bench_function("presheaf_gluing_fixture", |b| {
        let p = ExtensionPresheaf::new(&db);
        b.iter(|| p.gluing_failures(&open, std::slice::from_ref(&open)))
    });
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
