//! R1: minimal subbase selection (constructed-type discovery), with the
//! materialise-all vs subbase-only storage ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_bench::{employee_db, sweep_schema};
use toposem_core::{Intension, SpecialisationTopology};
use toposem_extension::ContainmentPolicy;
use toposem_storage::{Catalog, StoragePlan};
use toposem_topology::SubbaseAnalysis;

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("r1_subbase");
    for n in [8usize, 32, 128] {
        let schema = sweep_schema(n);
        let spec = SpecialisationTopology::of_schema(&schema);
        let cover = spec.cover();
        g.bench_with_input(
            BenchmarkId::new("greedy_minimal", schema.type_count()),
            &cover,
            |b, cov| {
                b.iter(|| SubbaseAnalysis::new(schema.type_count(), cov.clone()).greedy_minimal())
            },
        );
    }

    // Ablation: reading the constructed worksfor type, materialised vs
    // derived from contributors.
    let db = employee_db(ContainmentPolicy::Eager);
    let worksfor = db.schema().type_id("worksfor").unwrap();
    let materialised = Catalog::new(StoragePlan::MaterialiseAll);
    let derived = Catalog::new(StoragePlan::SubbaseOnly);
    g.bench_function("read_constructed_materialised", |b| {
        b.iter(|| materialised.read(&db, worksfor).len())
    });
    g.bench_function("read_constructed_derived", |b| {
        b.iter(|| derived.read(&db, worksfor).len())
    });
    let _ = Intension::analyse(db.schema().clone());
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
