//! R4: extension mappings and the containment machinery — eager insert
//! vs on-demand collection (the maintenance ablation), swept over
//! relation cardinality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_core::{employee_schema, Intension};
use toposem_design::{random_database, ExtensionParams};
use toposem_extension::{e_map, verify_corollary, ContainmentPolicy};

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("r4_extension_maps");
    let schema = employee_schema();
    for n in [10usize, 100, 1000, 10_000] {
        for policy in [ContainmentPolicy::Eager, ContainmentPolicy::OnDemand] {
            let label = match policy {
                ContainmentPolicy::Eager => "insert_eager",
                ContainmentPolicy::OnDemand => "insert_on_demand",
            };
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| {
                    random_database(
                        &schema,
                        &ExtensionParams {
                            tuples_per_type: n,
                            value_range: (n as i64).max(4),
                            policy,
                            seed: 2,
                        },
                    )
                    .total_stored()
                })
            });
        }
        // Read side: collecting E_person(person) under both policies.
        for policy in [ContainmentPolicy::Eager, ContainmentPolicy::OnDemand] {
            let db = random_database(
                &schema,
                &ExtensionParams {
                    tuples_per_type: n,
                    value_range: (n as i64).max(4),
                    policy,
                    seed: 2,
                },
            );
            let person = schema.type_id("person").unwrap();
            let label = match policy {
                ContainmentPolicy::Eager => "read_extension_eager",
                ContainmentPolicy::OnDemand => "read_extension_on_demand",
            };
            g.bench_with_input(BenchmarkId::new(label, n), &db, |b, db| {
                b.iter(|| e_map(db, person, person).len())
            });
        }
    }
    // Corollary verification cost on the mid-size instance.
    let db = random_database(
        &schema,
        &ExtensionParams {
            tuples_per_type: 1000,
            value_range: 256,
            policy: ContainmentPolicy::Eager,
            seed: 2,
        },
    );
    g.bench_function("verify_corollary_1000", |b| {
        b.iter(|| verify_corollary(&db).all_hold())
    });
    let _ = Intension::analyse(schema.clone());
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
