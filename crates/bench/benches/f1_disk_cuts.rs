//! F1: enumerating compatible cuts (presheaf sections over S_person) as
//! the extension grows — the executable form of the disk diagram.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_bench::employee_db;
use toposem_core::employee_schema;
use toposem_design::{random_database, ExtensionParams};
use toposem_extension::ContainmentPolicy;
use toposem_sheaf::ExtensionPresheaf;

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f1_disk_cuts");

    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema().clone();
    let person = s.type_id("person").unwrap();
    let manager = s.type_id("manager").unwrap();
    let open_person = db.intension().specialisation().s_set(person).clone();
    let open_manager = db.intension().specialisation().s_set(manager).clone();

    g.bench_function("sections_over_s_person_fixture", |b| {
        let p = ExtensionPresheaf::new(&db);
        b.iter(|| p.sections_over(&open_person).len())
    });

    // Sweep: singleton opens scale linearly with the extension; use the
    // synthesised extension sizes over the employee schema.
    for n in [10usize, 100, 1000] {
        let sdb = random_database(
            &employee_schema(),
            &ExtensionParams {
                tuples_per_type: n,
                value_range: (n as i64).max(4),
                policy: ContainmentPolicy::Eager,
                seed: 1,
            },
        );
        g.bench_with_input(
            BenchmarkId::new("sections_singleton_open", n),
            &sdb,
            |b, db| {
                let p = ExtensionPresheaf::new(db);
                b.iter(|| p.sections_over(&open_manager).len())
            },
        );
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
