//! F4: FD satisfaction via λ construction (the commuting triangle), swept
//! over relation cardinality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_core::{employee_schema, GeneralisationTopology};
use toposem_design::{random_database, ExtensionParams};
use toposem_extension::ContainmentPolicy;
use toposem_fd::{check_fd, Fd};

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f4_fd_check");
    let schema = employee_schema();
    let gen = GeneralisationTopology::of_schema(&schema);
    let fd = Fd::new(
        &gen,
        schema.type_id("employee").unwrap(),
        schema.type_id("department").unwrap(),
        schema.type_id("worksfor").unwrap(),
    )
    .unwrap();
    for n in [10usize, 100, 1000, 10_000] {
        let db = random_database(
            &schema,
            &ExtensionParams {
                tuples_per_type: n,
                value_range: (n as i64).max(4),
                policy: ContainmentPolicy::Eager,
                seed: 4,
            },
        );
        g.bench_with_input(BenchmarkId::new("check_fd_lambda", n), &db, |b, db| {
            b.iter(|| check_fd(db, &fd).holds())
        });
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
