//! F3: the dual generalisation topology, swept over schema size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_bench::{sweep_schema, SCHEMA_SWEEP};
use toposem_core::GeneralisationTopology;

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f3_generalisation");
    for n in SCHEMA_SWEEP {
        let schema = sweep_schema(n);
        g.bench_with_input(
            BenchmarkId::new("dual_topology", schema.type_count()),
            &schema,
            |b, s| b.iter(|| GeneralisationTopology::of_schema(s)),
        );
        let gen = GeneralisationTopology::of_schema(&schema);
        g.bench_with_input(
            BenchmarkId::new("hasse_covers", schema.type_count()),
            &gen,
            |b, gt| b.iter(|| gt.order().covers().len()),
        );
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
