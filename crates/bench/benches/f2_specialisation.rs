//! F2: computing the specialisation sets S_e / the full specialisation
//! topology, swept over schema size, with the bitset-vs-naive ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_bench::{sweep_schema, SCHEMA_SWEEP};
use toposem_core::SpecialisationTopology;

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f2_specialisation");
    for n in SCHEMA_SWEEP {
        let schema = sweep_schema(n);
        g.bench_with_input(
            BenchmarkId::new("topology_from_subbase", schema.type_count()),
            &schema,
            |b, s| b.iter(|| SpecialisationTopology::of_schema(s)),
        );
        // Ablation: the naive O(n^2) pairwise-subset computation of the
        // same S_e family, without the word-parallel occurrence subbase.
        g.bench_with_input(
            BenchmarkId::new("naive_pairwise_subsets", schema.type_count()),
            &schema,
            |b, s| {
                b.iter(|| {
                    let mut total = 0usize;
                    for e in s.type_ids() {
                        for f in s.type_ids() {
                            if s.attrs_of(e).iter().all(|a| s.attrs_of(f).contains(a)) {
                                total += 1;
                            }
                        }
                    }
                    total
                })
            },
        );
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
