//! R6: the Armstrong inference engine — type-level closure vs the
//! classical attribute-level closure (the lifting ablation), swept over
//! context size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_bench::sweep_schema;
use toposem_core::{GeneralisationTopology, TypeId};
use toposem_fd::ArmstrongEngine;

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("r6_armstrong");
    for n in [8usize, 32, 128] {
        let schema = sweep_schema(n);
        let gen = GeneralisationTopology::of_schema(&schema);
        // Context: the type with the largest G-set (widest universe).
        let context = schema
            .type_ids()
            .max_by_key(|&e| gen.g_set(e).card())
            .unwrap();
        let engine = ArmstrongEngine::new(&schema, &gen, context);
        let members: Vec<TypeId> = engine.universe();
        let sigma: Vec<(TypeId, TypeId)> = members
            .iter()
            .zip(members.iter().cycle().skip(1))
            .take(members.len().min(8))
            .map(|(a, b)| (*a, *b))
            .collect();
        g.bench_with_input(
            BenchmarkId::new("type_level_full_closure", schema.type_count()),
            &sigma,
            |b, s| b.iter(|| engine.full_closure(s).len()),
        );
        g.bench_with_input(
            BenchmarkId::new("attr_level_closures", schema.type_count()),
            &sigma,
            |b, s| {
                b.iter(|| {
                    let mut total = 0usize;
                    for &x in &members {
                        total += engine.attr_closure(s, schema.attrs_of(x)).card();
                    }
                    total
                })
            },
        );
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
