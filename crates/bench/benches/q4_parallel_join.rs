//! Q4: morsel-parallel vs. serial execution of a 3-way sanctioned join
//! on ≥100k tuples.
//!
//! The workload joins `person` (100k rows) with `worksfor` (100k rows,
//! filtered to one location so the probe stays heavy while the output is
//! moderate) and the tiny `department` relation. The *same* physical
//! plan — pinned to hash joins so the partitioned parallel build/probe
//! path is what's measured, not a serial merge loop — runs once under
//! `ExecOptions::serial()` and once under a full-width worker pool.
//!
//! The headline claim: on a ≥4-core runner with the `parallel` feature,
//! morsel-parallel execution beats serial execution ≥2× wall-clock, and
//! both produce the identical relation (also equal to the naive
//! interpreter). On fewer cores (or without the feature) the comparison
//! still runs and prints, but the ratio is only asserted where the
//! hardware can deliver it.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::{
    execute_with, lower_and_rewrite, plan_with, ExecOptions, Physical, PlannerOptions,
};
use toposem_storage::{Engine, Query};

/// 100k matched person/worksfor pairs normally, 20k in CI short mode.
fn n() -> i64 {
    toposem_bench::sized(100_000, 20_000)
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(toposem_bench::sized(
            300, 50,
        )))
        .measurement_time(std::time::Duration::from_millis(toposem_bench::sized(
            2000, 300,
        )))
}

/// N person rows, N worksfor rows (1:1 on `{name, age}`, departments
/// assigned round-robin), and every admissible department row.
fn loaded_engine() -> Engine {
    let eng = Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ));
    let s = eng.with_db(|db| db.schema().clone());
    let person = s.type_id("person").unwrap();
    let worksfor = s.type_id("worksfor").unwrap();
    let department = s.type_id("department").unwrap();
    let deps = [
        ("sales", "amsterdam"),
        ("research", "utrecht"),
        ("admin", "utrecht"),
    ];
    for (d, l) in deps {
        eng.insert(
            department,
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
    for i in 0..n() {
        let (d, l) = deps[(i % 3) as usize];
        eng.insert(
            person,
            &[
                ("name", Value::str(&format!("p{i:06}"))),
                ("age", Value::Int(i % 90)),
            ],
        )
        .unwrap();
        eng.insert(
            worksfor,
            &[
                ("name", Value::str(&format!("p{i:06}"))),
                ("age", Value::Int(i % 90)),
                ("depname", Value::str(d)),
                ("location", Value::str(l)),
            ],
        )
        .unwrap();
    }
    eng
}

/// Median-of-`runs` wall time of `f`.
fn time<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            criterion::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench(c: &mut Criterion) {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let person = s.type_id("person").unwrap();
    let worksfor = s.type_id("worksfor").unwrap();
    let department = s.type_id("department").unwrap();
    let location = s.attr_id("location").unwrap();
    let n = n();

    // One location keeps ~1/3 of worksfor: both scans stay full-size
    // (the filter fuses into the parallel scan pipeline), the join work
    // stays heavy, and the output is moderate.
    let q = Query::scan(person)
        .join(Query::scan(worksfor))
        .join(Query::scan(department))
        .select(location, Value::str("amsterdam"));

    // Pin the plan to hash joins: serial and parallel then execute the
    // exact same partitioned-join-shaped tree, so the comparison is the
    // morsel dispatcher, not a plan-shape difference (the default plan
    // may pick a merge join, whose merge loop is inherently serial).
    let stats = eng.statistics();
    let plan: Physical = eng.with_parts(|db, indexes| {
        let logical = lower_and_rewrite(&q, db).unwrap();
        plan_with(
            &logical,
            db,
            indexes,
            &stats,
            &PlannerOptions {
                merge_joins: false,
                ..Default::default()
            },
        )
    });
    println!("q4 plan:\n{}", eng.with_db(|db| plan.explain(db, &stats)));
    assert!(
        eng.with_db(|db| plan.explain(db, &stats))
            .contains("HashJoin"),
        "the pinned plan must hash-join"
    );

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let serial = ExecOptions::serial();
    let par = ExecOptions::with_threads(cores);

    // Correctness before numbers: serial ≡ parallel ≡ naive.
    let naive = eng.with_db(|db| q.execute(db).unwrap().1);
    eng.with_parts(|db, indexes| {
        let s_rel = execute_with(&plan, db, indexes, &serial);
        let p_rel = execute_with(&plan, db, indexes, &par);
        assert_eq!(s_rel, naive, "serial execution diverged from naive");
        assert_eq!(
            p_rel, naive,
            "parallel execution diverged from serial/naive"
        );
    });
    assert_eq!(naive.len() as i64, n / 3 + i64::from(n % 3 != 0));

    let runs = toposem_bench::sized(9, 5);
    let serial_t =
        eng.with_parts(|db, indexes| time(runs, || execute_with(&plan, db, indexes, &serial)));
    let par_t = eng.with_parts(|db, indexes| time(runs, || execute_with(&plan, db, indexes, &par)));
    let speedup = serial_t / par_t;
    println!(
        "q4 3-way hash join over {n}+{n} tuples on {cores} cores \
         (parallel feature {}): serial {:.1} ms, morsel-parallel {:.1} ms → {speedup:.2}×",
        if cfg!(feature = "parallel") {
            "on"
        } else {
            "off"
        },
        serial_t * 1e3,
        par_t * 1e3
    );
    if cfg!(feature = "parallel") && cores >= 4 {
        // Full size asserts the headline 2×; CI short mode (20k rows on
        // shared 4-vCPU runners) asserts a softer floor so scheduler
        // noise doesn't flake the smoke job while real regressions —
        // a serialized pipeline runs at ~1.0× — still fail loudly.
        let floor = toposem_bench::sized(2.0, 1.3);
        assert!(
            speedup >= floor,
            "morsel-parallel execution must beat serial ≥{floor}× on {cores} cores, got {speedup:.2}×"
        );
    } else {
        println!(
            "q4: ratio not asserted (needs the `parallel` feature and ≥4 cores; have {cores})"
        );
    }
    toposem_bench::emit_bench_json(
        "q4_parallel_join",
        &[
            toposem_bench::BenchSample::from_secs("serial_3way_join", runs as u64, serial_t),
            toposem_bench::BenchSample::from_secs("parallel_3way_join", runs as u64, par_t),
        ],
    );

    let mut g = c.benchmark_group("q4_parallel_join");
    g.bench_function("serial", |b| {
        b.iter(|| eng.with_parts(|db, indexes| execute_with(&plan, db, indexes, &serial)))
    });
    g.bench_function("morsel_parallel", |b| {
        b.iter(|| eng.with_parts(|db, indexes| execute_with(&plan, db, indexes, &par)))
    });
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
