//! D1: WAL commit throughput — `PerCommit` vs `GroupCommit` fsync
//! policies at 10 000 single-tuple transactions.
//!
//! The point of group commit: an fsync costs ~100 µs on this class of
//! hardware, so syncing *every* commit caps a single writer near
//! 10 k txns/s regardless of CPU. Batching fsyncs behind
//! `GroupCommit { max_batch, max_wait }` amortises that cost across the
//! batch. The headline run measures both policies over the full 10 k
//! workload and prints the throughput ratio; Criterion then tracks
//! smaller per-iteration batches for regression detection.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toposem_core::{employee_schema, Intension, TypeId};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_storage::Engine;
use toposem_wal::{FlushPolicy, Wal, WalConfig};

/// 10 000 txns normally, 1 500 in CI short mode (`TOPOSEM_BENCH_SHORT`).
fn n() -> usize {
    toposem_bench::sized(10_000, 1_500)
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(toposem_bench::sized(200, 50)))
        .measurement_time(Duration::from_millis(toposem_bench::sized(2000, 300)))
}

fn temp_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "toposem-d1-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn durable_engine(dir: &PathBuf, flush: FlushPolicy) -> (Engine, TypeId) {
    let db = Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    );
    let employee = db.schema().type_id("employee").unwrap();
    let cfg = WalConfig {
        flush,
        segment_bytes: 64 * 1024 * 1024, // keep rotation out of the measurement
    };
    let eng = Engine::durable(db, Wal::create(dir, cfg).unwrap()).unwrap();
    (eng, employee)
}

/// One single-tuple transaction: begin, insert a distinct employee,
/// commit (the durability point under the engine's flush policy).
fn one_txn(eng: &Engine, employee: TypeId, i: usize) {
    eng.begin().unwrap();
    eng.insert(
        employee,
        &[
            ("name", Value::str(&format!("w{i}"))),
            ("age", Value::Int((i % 120) as i64)),
            ("depname", Value::str(["sales", "research", "admin"][i % 3])),
        ],
    )
    .unwrap();
    eng.commit().unwrap();
}

fn group_commit() -> FlushPolicy {
    FlushPolicy::GroupCommit {
        max_batch: 64,
        max_wait: Duration::from_millis(2),
    }
}

/// Wall time of `n` single-tuple transactions under `flush`, on a fresh
/// engine and log (setup and teardown excluded).
fn run(flush: FlushPolicy, n: usize) -> f64 {
    let dir = temp_dir();
    let (eng, employee) = durable_engine(&dir, flush);
    let t0 = Instant::now();
    for i in 0..n {
        one_txn(&eng, employee, i);
    }
    eng.sync().unwrap(); // drain any pending group-commit window
    let elapsed = t0.elapsed().as_secs_f64();
    drop(eng);
    let _ = fs::remove_dir_all(&dir);
    elapsed
}

fn bench(c: &mut Criterion) {
    // Headline head-to-head at the full workload size.
    let n = n();
    let per_commit = run(FlushPolicy::PerCommit, n);
    let grouped = run(group_commit(), n);
    let speedup = per_commit / grouped;
    println!(
        "d1 {n} single-tuple txns: PerCommit {:.2}s ({:.0} txns/s), \
         GroupCommit(64, 2ms) {:.2}s ({:.0} txns/s) → {speedup:.1}× throughput",
        per_commit,
        n as f64 / per_commit,
        grouped,
        n as f64 / grouped,
    );
    // Full size asserts the headline 2×; CI short mode softens the
    // floor — on runners whose fsync is nearly free (write-cached
    // overlay storage) the amortisation ratio legitimately shrinks,
    // while a broken group commit still lands at ~1.0×.
    let floor = toposem_bench::sized(2.0, 1.2);
    assert!(
        speedup >= floor,
        "group commit must amortise fsyncs at least {floor}× over per-commit \
         fsync on {n} txns, got {speedup:.2}×"
    );
    toposem_bench::emit_bench_json(
        "d1_wal_commit",
        &[
            toposem_bench::BenchSample::from_secs(
                "per_commit_txn",
                n as u64,
                per_commit / n as f64,
            ),
            toposem_bench::BenchSample::from_secs("group_commit_txn", n as u64, grouped / n as f64),
        ],
    );

    // Criterion regression tracking on smaller batches (fresh engine per
    // sample would swamp the measurement; distinct keys keep inserts
    // fresh while the engine grows linearly, which is the steady state a
    // server sees anyway).
    let mut g = c.benchmark_group("d1_wal_commit");
    for (label, flush) in [
        ("per_commit", FlushPolicy::PerCommit),
        ("group_commit", group_commit()),
        ("no_sync", FlushPolicy::NoSync),
    ] {
        let dir = temp_dir();
        let (eng, employee) = durable_engine(&dir, flush);
        let key = AtomicU64::new(0);
        g.bench_with_input(BenchmarkId::new(label, "100_txns"), &eng, |b, eng| {
            b.iter(|| {
                let base = key.fetch_add(100, Ordering::Relaxed) as usize;
                for i in base..base + 100 {
                    one_txn(eng, employee, i);
                }
            })
        });
        drop(eng);
        let _ = fs::remove_dir_all(&dir);
    }
    g.finish();
}

criterion_group!(name = benches; config = cfg(); targets = bench);
criterion_main!(benches);
