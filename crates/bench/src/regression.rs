//! Bench-regression tracking: diffing a run's `BENCH_*.json` reports
//! against the checked-in `BENCH_BASELINE.json`.
//!
//! Two kinds of guard, with deliberately different teeth:
//!
//! - **Absolute samples** (`ns_per_iter` per workload) are
//!   machine-dependent, so exceeding the baseline by more than the
//!   allowed factor only *warns* — unless the baseline marks the
//!   sample `"assert": true`, in which case it fails the diff (and CI).
//! - **Ratios** (one workload over another from the same run) cancel
//!   the machine out — profiled/unprofiled overhead, corrected/static
//!   speedup — so a ratio above its baselined `max` always fails.
//!
//! A workload present in the baseline but absent from the run warns
//! loudly instead of silently shrinking coverage. The renderer prints
//! a trajectory table (baseline → current, ratio, status) so a CI log
//! shows drift at a glance, not just the verdict.
//!
//! The baseline can also be *refreshed* from a run
//! ([`Baseline::refreshed`] + [`Baseline::render`], driven by
//! `bench_diff --write-baseline`): measured times are replaced, while
//! the hand-maintained structure — note, assert flags, regression
//! allowances, ratio definitions — is preserved verbatim.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::json::{get_field, parse_json, Json};

/// Regression factor applied to absolute samples when the baseline
/// entry does not set its own `max_regression`.
pub const DEFAULT_MAX_REGRESSION: f64 = 1.5;

/// One baselined workload time.
#[derive(Clone, Debug)]
pub struct BaselineSample {
    /// Workload label, matching `BenchSample::name`.
    pub name: String,
    /// Baselined wall time per iteration, nanoseconds.
    pub ns_per_iter: f64,
    /// When true, exceeding the allowance fails the diff instead of
    /// warning. Reserve for workloads whose absolute time is stable
    /// enough to gate CI on.
    pub assert: bool,
    /// Allowed `current / baseline` factor before the sample trips.
    pub max_regression: f64,
}

/// One baselined intra-run ratio (machine-independent, always
/// asserted).
#[derive(Clone, Debug)]
pub struct BaselineRatio {
    /// Human label for the report, e.g. `o1_profiling_overhead`.
    pub name: String,
    /// Numerator workload label.
    pub num: String,
    /// Denominator workload label.
    pub den: String,
    /// Maximum allowed `num / den`.
    pub max: f64,
}

/// Baseline for one bench binary.
#[derive(Clone, Debug, Default)]
pub struct BaselineBench {
    /// Bench name, matching `emit_bench_json`'s `bench` field.
    pub bench: String,
    /// Absolute per-workload times.
    pub samples: Vec<BaselineSample>,
    /// Intra-run ratios.
    pub ratios: Vec<BaselineRatio>,
}

/// The parsed `BENCH_BASELINE.json`.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Format version (currently 1).
    pub version: u64,
    /// Free-form maintenance note, preserved across refreshes.
    pub note: String,
    /// Per-bench baselines.
    pub benches: Vec<BaselineBench>,
}

fn as_f64(v: &Json) -> Option<f64> {
    match v {
        Json::Int(i) => Some(*i as f64),
        Json::UInt(u) => Some(*u as f64),
        Json::Float(f) => Some(*f),
        _ => None,
    }
}

fn as_str(v: &Json) -> Option<&str> {
    match v {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn str_field(obj: &[(String, Json)], name: &str, ctx: &str) -> Result<String, String> {
    get_field(obj, name)
        .and_then(as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("{ctx}: missing string field `{name}`"))
}

fn f64_field(obj: &[(String, Json)], name: &str, ctx: &str) -> Result<f64, String> {
    get_field(obj, name)
        .and_then(as_f64)
        .ok_or_else(|| format!("{ctx}: missing numeric field `{name}`"))
}

impl Baseline {
    /// Parses the baseline file. Unknown fields are ignored (the file
    /// is hand-maintained; forward-compatibility beats strictness).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let root = parse_json(text).map_err(|e| format!("baseline: {}", e.0))?;
        let obj = root.as_object().ok_or("baseline: root must be an object")?;
        let version = get_field(obj, "version")
            .and_then(as_f64)
            .ok_or("baseline: missing `version`")? as u64;
        let note = get_field(obj, "note")
            .and_then(as_str)
            .unwrap_or("")
            .to_owned();
        let mut benches = Vec::new();
        let list = get_field(obj, "benches")
            .and_then(Json::as_array)
            .ok_or("baseline: missing `benches` array")?;
        for b in list {
            let bo = b.as_object().ok_or("baseline: bench must be an object")?;
            let bench = str_field(bo, "bench", "baseline bench")?;
            let ctx = |what: &str| format!("baseline {bench}: {what}");
            let mut samples = Vec::new();
            if let Some(ss) = get_field(bo, "samples").and_then(Json::as_array) {
                for s in ss {
                    let so = s.as_object().ok_or_else(|| ctx("sample not an object"))?;
                    samples.push(BaselineSample {
                        name: str_field(so, "name", &bench)?,
                        ns_per_iter: f64_field(so, "ns_per_iter", &bench)?,
                        assert: matches!(get_field(so, "assert"), Some(Json::Bool(true))),
                        max_regression: get_field(so, "max_regression")
                            .and_then(as_f64)
                            .unwrap_or(DEFAULT_MAX_REGRESSION),
                    });
                }
            }
            let mut ratios = Vec::new();
            if let Some(rs) = get_field(bo, "ratios").and_then(Json::as_array) {
                for r in rs {
                    let ro = r.as_object().ok_or_else(|| ctx("ratio not an object"))?;
                    ratios.push(BaselineRatio {
                        name: str_field(ro, "name", &bench)?,
                        num: str_field(ro, "num", &bench)?,
                        den: str_field(ro, "den", &bench)?,
                        max: f64_field(ro, "max", &bench)?,
                    });
                }
            }
            benches.push(BaselineBench {
                bench,
                samples,
                ratios,
            });
        }
        Ok(Baseline {
            version,
            note,
            benches,
        })
    }

    /// A copy of this baseline with every sample's `ns_per_iter`
    /// replaced by the current run's measurement. Workloads the run did
    /// not produce keep their old value and are returned so the caller
    /// can warn about stale coverage; ratio definitions (being bounds,
    /// not measurements) pass through untouched.
    pub fn refreshed(
        &self,
        current: &BTreeMap<String, BTreeMap<String, f64>>,
    ) -> (Baseline, Vec<String>) {
        let mut out = self.clone();
        let mut stale = Vec::new();
        for b in &mut out.benches {
            let run = current.get(&b.bench);
            for s in &mut b.samples {
                match run.and_then(|r| r.get(&s.name)) {
                    Some(&ns) => s.ns_per_iter = ns,
                    None => stale.push(format!("{}/{}", b.bench, s.name)),
                }
            }
        }
        (out, stale)
    }

    /// Re-emits the baseline in the checked-in file's layout (one line
    /// per sample and ratio), so a `--write-baseline` refresh reviews
    /// as a minimal diff. `assert` and `max_regression` are written
    /// only where they deviate from the defaults, mirroring how the
    /// parser reads them.
    pub fn render(&self) -> String {
        let num = |v: f64| {
            if v == v.trunc() && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"version\": {},", self.version);
        let _ = writeln!(out, "  \"note\": \"{}\",", crate::json_escape(&self.note));
        let _ = writeln!(out, "  \"benches\": [");
        for (bi, b) in self.benches.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(
                out,
                "      \"bench\": \"{}\",",
                crate::json_escape(&b.bench)
            );
            let _ = write!(out, "      \"samples\": [");
            for (si, s) in b.samples.iter().enumerate() {
                let comma = if si + 1 < b.samples.len() { "," } else { "" };
                let mut extra = String::new();
                if s.assert {
                    extra.push_str(", \"assert\": true");
                }
                if (s.max_regression - DEFAULT_MAX_REGRESSION).abs() > f64::EPSILON {
                    let _ = write!(extra, ", \"max_regression\": {}", num(s.max_regression));
                }
                let _ = write!(
                    out,
                    "\n        {{\"name\": \"{}\", \"ns_per_iter\": {}{extra}}}{comma}",
                    crate::json_escape(&s.name),
                    num(s.ns_per_iter),
                );
            }
            let _ = writeln!(
                out,
                "\n      ]{}",
                if b.ratios.is_empty() { "" } else { "," }
            );
            if !b.ratios.is_empty() {
                let _ = write!(out, "      \"ratios\": [");
                for (ri, r) in b.ratios.iter().enumerate() {
                    let comma = if ri + 1 < b.ratios.len() { "," } else { "" };
                    let _ = write!(
                        out,
                        "\n        {{\"name\": \"{}\", \"num\": \"{}\", \"den\": \"{}\", \"max\": {}}}{comma}",
                        crate::json_escape(&r.name),
                        crate::json_escape(&r.num),
                        crate::json_escape(&r.den),
                        num(r.max),
                    );
                }
                let _ = writeln!(out, "\n      ]");
            }
            let _ = writeln!(
                out,
                "    }}{}",
                if bi + 1 < self.benches.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// Parses one `BENCH_<name>.json` report emitted by `emit_bench_json`
/// into `(bench, workload → ns_per_iter)`.
pub fn parse_report(text: &str) -> Result<(String, BTreeMap<String, f64>), String> {
    let root = parse_json(text).map_err(|e| format!("report: {}", e.0))?;
    let obj = root.as_object().ok_or("report: root must be an object")?;
    let bench = str_field(obj, "bench", "report")?;
    let mut samples = BTreeMap::new();
    let list = get_field(obj, "samples")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("report {bench}: missing `samples` array"))?;
    for s in list {
        let so = s
            .as_object()
            .ok_or_else(|| format!("report {bench}: sample not an object"))?;
        samples.insert(
            str_field(so, "name", &bench)?,
            f64_field(so, "ns_per_iter", &bench)?,
        );
    }
    Ok((bench, samples))
}

/// Verdict for one checked line of the diff.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Status {
    /// Within the allowance.
    Ok,
    /// Faster than baseline by more than the allowance — worth
    /// refreshing the baseline, but never an error.
    Improved,
    /// Regressed past the allowance on an unasserted sample, or the
    /// workload went missing from the run.
    Warn,
    /// Regressed past the allowance on an asserted sample or ratio.
    Fail,
}

/// One line of the trajectory table.
#[derive(Clone, Debug)]
pub struct Row {
    /// `bench/workload` (or `bench/ratio-name`).
    pub label: String,
    /// Baselined value (ns for samples, unitless for ratios).
    pub baseline: f64,
    /// Observed value this run, when present.
    pub current: Option<f64>,
    /// `current / baseline` for samples, `observed / max` for ratios.
    pub ratio: Option<f64>,
    /// Verdict.
    pub status: Status,
    /// One-line explanation for non-Ok rows.
    pub note: String,
}

/// The full diff outcome.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Every checked line, baseline order.
    pub rows: Vec<Row>,
    /// Count of `Status::Warn` rows.
    pub warnings: usize,
    /// Count of `Status::Fail` rows.
    pub failures: usize,
}

impl Report {
    /// Whether CI should pass.
    pub fn passed(&self) -> bool {
        self.failures == 0
    }

    /// The trajectory table plus the verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>12} {:>12} {:>8}  status",
            "workload", "baseline", "current", "ratio"
        );
        for r in &self.rows {
            let fmt_v = |v: f64| {
                if v >= 1e6 {
                    format!("{:.2}ms", v / 1e6)
                } else if v >= 1e3 {
                    format!("{:.2}µs", v / 1e3)
                } else {
                    format!("{v:.2}")
                }
            };
            let current = r.current.map_or("—".to_owned(), fmt_v);
            let ratio = r.ratio.map_or("—".to_owned(), |x| format!("{x:.3}×"));
            let status = match r.status {
                Status::Ok => "ok",
                Status::Improved => "improved",
                Status::Warn => "WARN",
                Status::Fail => "FAIL",
            };
            let _ = writeln!(
                out,
                "{:<44} {:>12} {:>12} {:>8}  {}{}{}",
                r.label,
                fmt_v(r.baseline),
                current,
                ratio,
                status,
                if r.note.is_empty() { "" } else { " — " },
                r.note
            );
        }
        let _ = writeln!(
            out,
            "bench-diff: {} checked, {} warnings, {} failures → {}",
            self.rows.len(),
            self.warnings,
            self.failures,
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Diffs a run's reports (`bench → workload → ns_per_iter`) against
/// the baseline.
pub fn diff(baseline: &Baseline, current: &BTreeMap<String, BTreeMap<String, f64>>) -> Report {
    let mut report = Report::default();
    let mut push = |row: Row| {
        match row.status {
            Status::Warn => report.warnings += 1,
            Status::Fail => report.failures += 1,
            _ => {}
        }
        report.rows.push(row);
    };
    for b in &baseline.benches {
        let run = current.get(&b.bench);
        for s in &b.samples {
            let label = format!("{}/{}", b.bench, s.name);
            let Some(cur) = run.and_then(|r| r.get(&s.name)).copied() else {
                push(Row {
                    label,
                    baseline: s.ns_per_iter,
                    current: None,
                    ratio: None,
                    status: Status::Warn,
                    note: "workload missing from this run".into(),
                });
                continue;
            };
            let ratio = cur / s.ns_per_iter.max(f64::MIN_POSITIVE);
            let (status, note) = if ratio > s.max_regression {
                if s.assert {
                    (
                        Status::Fail,
                        format!("asserted sample regressed >{:.2}×", s.max_regression),
                    )
                } else {
                    (
                        Status::Warn,
                        format!(
                            "regressed >{:.2}× (machine-dependent, not asserted)",
                            s.max_regression
                        ),
                    )
                }
            } else if ratio < 1.0 / s.max_regression {
                (Status::Improved, "consider refreshing the baseline".into())
            } else {
                (Status::Ok, String::new())
            };
            push(Row {
                label,
                baseline: s.ns_per_iter,
                current: Some(cur),
                ratio: Some(ratio),
                status,
                note,
            });
        }
        for r in &b.ratios {
            let label = format!("{}/{}", b.bench, r.name);
            let (num, den) = match run {
                Some(rn) => (rn.get(&r.num).copied(), rn.get(&r.den).copied()),
                None => (None, None),
            };
            let (Some(num), Some(den)) = (num, den) else {
                push(Row {
                    label,
                    baseline: r.max,
                    current: None,
                    ratio: None,
                    status: Status::Warn,
                    note: format!("{} or {} missing from this run", r.num, r.den),
                });
                continue;
            };
            let observed = num / den.max(f64::MIN_POSITIVE);
            let over = observed > r.max;
            push(Row {
                label,
                baseline: r.max,
                current: Some(observed),
                ratio: Some(observed / r.max),
                status: if over { Status::Fail } else { Status::Ok },
                note: if over {
                    format!(
                        "{}/{} = {observed:.3} exceeds max {:.3}",
                        r.num, r.den, r.max
                    )
                } else {
                    String::new()
                },
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
      "version": 1,
      "note": "hand-maintained",
      "benches": [
        {
          "bench": "q1_planner",
          "samples": [
            {"name": "planned_point_select", "ns_per_iter": 1000.0},
            {"name": "gated_workload", "ns_per_iter": 2000.0, "assert": true, "max_regression": 1.5}
          ],
          "ratios": [
            {"name": "overhead", "num": "profiled", "den": "unprofiled", "max": 1.2}
          ]
        }
      ]
    }"#;

    fn run(entries: &[(&str, f64)]) -> BTreeMap<String, BTreeMap<String, f64>> {
        let mut m = BTreeMap::new();
        m.insert(
            "q1_planner".to_owned(),
            entries.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        );
        m
    }

    #[test]
    fn baseline_round_trips() {
        let b = Baseline::parse(BASELINE).unwrap();
        assert_eq!(b.version, 1);
        assert_eq!(b.benches.len(), 1);
        let q1 = &b.benches[0];
        assert_eq!(q1.samples.len(), 2);
        assert!(!q1.samples[0].assert);
        assert_eq!(q1.samples[0].max_regression, DEFAULT_MAX_REGRESSION);
        assert!(q1.samples[1].assert);
        assert_eq!(q1.ratios.len(), 1);
        assert_eq!(q1.ratios[0].max, 1.2);
    }

    #[test]
    fn report_round_trips() {
        let text = r#"{
          "bench": "q5_adaptive",
          "short_mode": true,
          "threads": 4,
          "morsel_size": 512,
          "samples": [
            {"name": "static_plan", "iters": 10, "ns_per_iter": 200000.0},
            {"name": "corrected_plan", "iters": 10, "ns_per_iter": 8000.0}
          ]
        }"#;
        let (bench, samples) = parse_report(text).unwrap();
        assert_eq!(bench, "q5_adaptive");
        assert_eq!(samples["static_plan"], 200_000.0);
        assert_eq!(samples["corrected_plan"], 8_000.0);
    }

    #[test]
    fn within_allowance_passes() {
        let b = Baseline::parse(BASELINE).unwrap();
        let r = diff(
            &b,
            &run(&[
                ("planned_point_select", 1_200.0),
                ("gated_workload", 2_400.0),
                ("profiled", 110.0),
                ("unprofiled", 100.0),
            ]),
        );
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.warnings, 0);
    }

    #[test]
    fn synthetic_regression_on_asserted_sample_fails() {
        let b = Baseline::parse(BASELINE).unwrap();
        // Inject a 2× regression on the asserted workload.
        let r = diff(
            &b,
            &run(&[
                ("planned_point_select", 1_000.0),
                ("gated_workload", 4_000.0),
                ("profiled", 100.0),
                ("unprofiled", 100.0),
            ]),
        );
        assert!(!r.passed(), "2× on an asserted sample must fail");
        assert_eq!(r.failures, 1);
        assert!(r.render().contains("FAIL"));
    }

    #[test]
    fn regression_on_unasserted_sample_only_warns() {
        let b = Baseline::parse(BASELINE).unwrap();
        let r = diff(
            &b,
            &run(&[
                ("planned_point_select", 5_000.0),
                ("gated_workload", 2_000.0),
                ("profiled", 100.0),
                ("unprofiled", 100.0),
            ]),
        );
        assert!(r.passed(), "machine-dependent samples must not gate CI");
        assert_eq!(r.warnings, 1);
        assert!(r.render().contains("WARN"));
    }

    #[test]
    fn ratio_breach_always_fails() {
        let b = Baseline::parse(BASELINE).unwrap();
        let r = diff(
            &b,
            &run(&[
                ("planned_point_select", 1_000.0),
                ("gated_workload", 2_000.0),
                ("profiled", 150.0),
                ("unprofiled", 100.0),
            ]),
        );
        assert!(!r.passed(), "1.5 overhead against max 1.2 must fail");
        assert_eq!(r.failures, 1);
    }

    #[test]
    fn missing_workload_warns_loudly() {
        let b = Baseline::parse(BASELINE).unwrap();
        let r = diff(&b, &run(&[("planned_point_select", 1_000.0)]));
        assert!(r.passed(), "missing coverage warns, never silently fails");
        // gated_workload missing + ratio operands missing.
        assert_eq!(r.warnings, 2);
        assert!(r.render().contains("missing"));
    }

    #[test]
    fn refresh_round_trips_and_preserves_structure() {
        let b = Baseline::parse(BASELINE).unwrap();
        let (fresh, stale) = b.refreshed(&run(&[
            ("planned_point_select", 1_234.5),
            ("profiled", 110.0),
        ]));
        // The unmeasured workload keeps its old value and is reported.
        assert_eq!(stale, vec!["q1_planner/gated_workload".to_owned()]);
        let reparsed = Baseline::parse(&fresh.render()).unwrap();
        assert_eq!(reparsed.note, "hand-maintained");
        let q1 = &reparsed.benches[0];
        assert_eq!(q1.samples[0].ns_per_iter, 1_234.5);
        assert_eq!(q1.samples[1].ns_per_iter, 2_000.0);
        assert!(q1.samples[1].assert, "assert flag must survive a refresh");
        assert_eq!(q1.samples[1].max_regression, 1.5);
        assert_eq!(q1.ratios.len(), 1);
        assert_eq!(q1.ratios[0].max, 1.2);
        // A refresh of a refresh is byte-stable.
        assert_eq!(reparsed.render(), fresh.render());
    }

    #[test]
    fn improvement_is_flagged_for_baseline_refresh() {
        let b = Baseline::parse(BASELINE).unwrap();
        let r = diff(
            &b,
            &run(&[
                ("planned_point_select", 100.0),
                ("gated_workload", 2_000.0),
                ("profiled", 100.0),
                ("unprofiled", 100.0),
            ]),
        );
        assert!(r.passed());
        assert!(r.rows.iter().any(|row| row.status == Status::Improved));
    }
}
