//! CI bench-regression gate: diffs the `BENCH_*.json` reports of a
//! bench run against the checked-in `BENCH_BASELINE.json`.
//!
//! ```text
//! bench_diff [--write-baseline] <BENCH_BASELINE.json> <json-dir>
//! ```
//!
//! Prints the trajectory table (baseline → current per workload) and
//! exits non-zero when an asserted sample or any baselined ratio
//! regressed past its allowance; machine-dependent drift on unasserted
//! samples and missing workloads only warn.
//!
//! With `--write-baseline` the run's measurements are accepted: the
//! baseline file is rewritten with each sample's `ns_per_iter` updated
//! from the run, while the note, assert flags, regression allowances,
//! and ratio definitions are preserved. The trajectory table is still
//! printed (it is the review diff), but the exit code is success —
//! refreshing *is* the act of accepting the drift.

use std::collections::BTreeMap;
use std::process::ExitCode;

use toposem_bench::regression::{diff, parse_report, Baseline};

fn run() -> Result<bool, String> {
    let mut write_baseline = false;
    let mut positional = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--write-baseline" => write_baseline = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            _ => positional.push(arg),
        }
    }
    let mut positional = positional.into_iter();
    let (Some(baseline_path), Some(json_dir)) = (positional.next(), positional.next()) else {
        return Err("usage: bench_diff [--write-baseline] <BENCH_BASELINE.json> <json-dir>".into());
    };
    let baseline = Baseline::parse(
        &std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("read {baseline_path}: {e}"))?,
    )?;
    let mut current: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let entries = std::fs::read_dir(&json_dir).map_err(|e| format!("read dir {json_dir}: {e}"))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let (bench, samples) = parse_report(&text)?;
        current.insert(bench, samples);
    }
    if current.is_empty() {
        return Err(format!("no BENCH_*.json reports found in {json_dir}"));
    }
    let report = diff(&baseline, &current);
    print!("{}", report.render());
    if write_baseline {
        let (fresh, stale) = baseline.refreshed(&current);
        for label in &stale {
            eprintln!("bench_diff: `{label}` missing from this run — keeping its old baseline");
        }
        std::fs::write(&baseline_path, fresh.render())
            .map_err(|e| format!("write {baseline_path}: {e}"))?;
        println!(
            "bench_diff: refreshed {baseline_path} from {} report(s){}",
            current.len(),
            if stale.is_empty() {
                String::new()
            } else {
                format!(" ({} workload(s) kept stale values)", stale.len())
            }
        );
        return Ok(true);
    }
    Ok(report.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}
