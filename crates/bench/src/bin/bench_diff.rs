//! CI bench-regression gate: diffs the `BENCH_*.json` reports of a
//! bench run against the checked-in `BENCH_BASELINE.json`.
//!
//! ```text
//! bench_diff <BENCH_BASELINE.json> <json-dir>
//! ```
//!
//! Prints the trajectory table (baseline → current per workload) and
//! exits non-zero when an asserted sample or any baselined ratio
//! regressed past its allowance; machine-dependent drift on unasserted
//! samples and missing workloads only warn.

use std::collections::BTreeMap;
use std::process::ExitCode;

use toposem_bench::regression::{diff, parse_report, Baseline};

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let (Some(baseline_path), Some(json_dir)) = (args.next(), args.next()) else {
        return Err("usage: bench_diff <BENCH_BASELINE.json> <json-dir>".into());
    };
    let baseline = Baseline::parse(
        &std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("read {baseline_path}: {e}"))?,
    )?;
    let mut current: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let entries = std::fs::read_dir(&json_dir).map_err(|e| format!("read dir {json_dir}: {e}"))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let (bench, samples) = parse_report(&text)?;
        current.insert(bench, samples);
    }
    if current.is_empty() {
        return Err(format!("no BENCH_*.json reports found in {json_dir}"));
    }
    let report = diff(&baseline, &current);
    print!("{}", report.render());
    Ok(report.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}
