//! Regenerates every table and figure of the paper as text (and the
//! symbolic results the theorems claim), printing paper-vs-measured for
//! EXPERIMENTS.md.
//!
//! Run with: `cargo run -p toposem-bench --bin figures` (optionally pass
//! experiment ids, e.g. `figures t1 f2 r6`; no arguments = everything).

use toposem_constraints::{check_jd, contributor_jd};
use toposem_core::GeneralisationTopology;
use toposem_extension::{check_all, verify_corollary, ContainmentPolicy};
use toposem_fd::{
    check_fd, nucleus, satisfied_fd_set, verify_completeness, verify_fd_corollary,
    verify_soundness, ArmstrongEngine, Fd,
};
use toposem_sheaf::ExtensionPresheaf;
use toposem_ur::{UniversalRelation, Window};

use toposem_bench::employee_db;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    if want("t1") {
        t1();
    }
    if want("f1") {
        f1();
    }
    if want("f2") {
        f2();
    }
    if want("r1") {
        r1();
    }
    if want("f3") {
        f3();
    }
    if want("r2") {
        r2();
    }
    if want("r3") {
        r3();
    }
    if want("r4") {
        r4();
    }
    if want("r5") {
        r5();
    }
    if want("f4") {
        f4();
    }
    if want("r6") {
        r6();
    }
    if want("r7") {
        r7();
    }
    if want("r8") {
        r8();
    }
    if want("r9") {
        r9();
    }
}

fn header(id: &str, title: &str) {
    println!("\n================ {id}: {title} ================");
}

/// T1: the p.5 table.
fn t1() {
    header("T1", "employee database: entity types and attribute sets");
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    println!("{:<12} attribute set", "entity");
    for e in s.type_ids() {
        println!(
            "{:<12} {{{}}}",
            s.type_name(e),
            s.attr_set_names(s.attrs_of(e)).join(", ")
        );
    }
}

/// F1: the disk diagram — each attribute a disk, a cut = an instance. We
/// render each compatible cut (presheaf section over S_person).
fn f1() {
    header("F1", "attribute disks; a single cut = an entity instance");
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    let spec = db.intension().specialisation();
    let person = s.type_id("person").unwrap();
    let presheaf = ExtensionPresheaf::new(&db);
    let open = spec.s_set(person).clone();
    let sections = presheaf.sections_over(&open);
    println!(
        "cuts through S_person = {:?}: {} compatible cut(s)",
        s.type_set_names(&open),
        sections.len()
    );
    for (i, fam) in sections.iter().enumerate() {
        println!("cut #{i}:");
        for (t, inst) in &fam.members {
            println!("  at {:<10} {}", s.type_name(*t), inst.display(s));
        }
    }
}

/// F2: the Venn diagram of specialisation sets.
fn f2() {
    header("F2", "specialisation sets S_e (paper's Venn diagram)");
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    let spec = db.intension().specialisation();
    for e in s.type_ids() {
        println!(
            "S_{:<10} = {{{}}}",
            s.type_name(e),
            s.type_set_names(spec.s_set(e)).join(", ")
        );
    }
    println!("paper: S_person ⊃ S_employee ⊃ S_manager; S_department ⊃ S_worksfor ⊂ S_employee");
}

/// R1: subbase and constructed types.
fn r1() {
    header("R1", "chosen subbase R_T and constructed types");
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    let i = db.intension();
    println!(
        "R_T        = {:?}",
        i.subbase_types()
            .iter()
            .map(|&e| s.type_name(e))
            .collect::<Vec<_>>()
    );
    println!(
        "constructed = {:?}",
        i.constructed_types()
            .iter()
            .map(|&e| s.type_name(e))
            .collect::<Vec<_>>()
    );
    println!("paper: R_T = {{person, department, employee, manager}}; worksfor constructed");
}

/// F3: generalisation sets.
fn f3() {
    header("F3", "generalisation sets G_e (paper's §3.2 diagrams)");
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    let gen = db.intension().generalisation();
    for e in s.type_ids() {
        println!(
            "G_{:<10} = {{{}}}",
            s.type_name(e),
            s.type_set_names(gen.g_set(e)).join(", ")
        );
    }
    println!("paper: G_manager = {{employee, person, manager}}, G_worksfor = {{employee, person, department, worksfor}}");
}

/// R2: duality corollary and non-complementarity.
fn r2() {
    header("R2", "duality: y ∈ S_x ⇔ x ∈ G_y; S/G are not complements");
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    let spec = db.intension().specialisation();
    let gen = db.intension().generalisation();
    let mut checked = 0;
    let mut holds = true;
    for x in s.type_ids() {
        for y in s.type_ids() {
            checked += 1;
            if spec.s_set(x).contains(y.index()) != gen.g_set(y).contains(x.index()) {
                holds = false;
            }
        }
    }
    println!("duality checked on {checked} pairs: {holds}");
    let person = s.type_id("person").unwrap();
    let u = spec.s_set(person).union(gen.g_set(person));
    let i = spec.s_set(person).intersection(gen.g_set(person));
    println!(
        "S_person ∪ G_person = {:?} (≠ E: {})",
        s.type_set_names(&u),
        !u.is_full()
    );
    println!(
        "S_person ∩ G_person = {:?} (= {{person}}: {})",
        s.type_set_names(&i),
        s.type_set_names(&i) == vec!["person"]
    );
}

/// R3: contributors.
fn r3() {
    header("R3", "contributors CO_e = direct generalisations");
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    for e in s.type_ids() {
        let co = db.intension().contributors_of(e);
        println!(
            "CO_{:<9} = {:?}",
            s.type_name(e),
            co.iter().map(|&c| s.type_name(c)).collect::<Vec<_>>()
        );
    }
    println!("paper: CO_worksfor = {{employee, department}}");
}

/// R4: containment and the extension-mapping corollary.
fn r4() {
    header("R4", "containment + extension-mapping corollary (a)(b)(c)");
    for policy in [ContainmentPolicy::Eager, ContainmentPolicy::OnDemand] {
        let db = employee_db(policy);
        let report = verify_corollary(&db);
        println!(
            "{policy:?}: containment violations: {}, corollary chains: {}, all hold: {}",
            db.verify_containment().len(),
            report.triples_checked,
            report.all_hold()
        );
    }
}

/// R5: the Extension Axiom.
fn r5() {
    header("R5", "Extension Axiom: injective i : E_e(e) → Π E_c(c)");
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    for report in check_all(&db) {
        if report.contributors.is_empty() {
            continue;
        }
        println!(
            "{:<10} contributors {:?}: undetermined {}, injectivity failures {}",
            s.type_name(report.entity_type),
            report
                .contributors
                .iter()
                .map(|&c| s.type_name(c))
                .collect::<Vec<_>>(),
            report.undetermined.len(),
            report.injectivity_failures.len()
        );
    }
    let worksfor = s.type_id("worksfor").unwrap();
    let jd = contributor_jd(&db, worksfor);
    let jr = check_jd(&db, &jd);
    println!(
        "join dependency over CO_worksfor: holds {} (spurious {}, missing {})",
        jr.holds, jr.spurious, jr.missing
    );
}

/// F4: the FD commuting triangle.
fn f4() {
    header("F4", "fd(e,f,g) ⇔ ∃λ with commuting triangle");
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    let gen = GeneralisationTopology::of_schema(s);
    let fd = Fd::new(
        &gen,
        s.type_id("employee").unwrap(),
        s.type_id("department").unwrap(),
        s.type_id("worksfor").unwrap(),
    )
    .unwrap();
    match check_fd(&db, &fd) {
        toposem_fd::FdCheck::Holds(lambda) => {
            println!("{} holds; λ has {} entries:", fd.display(s), lambda.len());
            for (k, v) in &lambda {
                println!("  λ({}) = {}", k.display(s), v.display(s));
            }
            println!(
                "triangle commutes: {}",
                toposem_fd::triangle_commutes(&db, &fd, &lambda)
            );
        }
        toposem_fd::FdCheck::Violated(a, b) => {
            println!(
                "{} violated by {} / {}",
                fd.display(s),
                a.display(s),
                b.display(s)
            );
        }
    }
}

/// R6: Armstrong axioms, propagation, soundness & completeness.
fn r6() {
    header("R6", "Armstrong axioms + propagation: sound and complete");
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    let gen = db.intension().generalisation();
    let worksfor = s.type_id("worksfor").unwrap();
    let engine = ArmstrongEngine::new(s, gen, worksfor);
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let sigma = [(employee, department)];
    let sound = verify_soundness(&engine, &sigma);
    let complete = verify_completeness(&engine, &sigma);
    println!(
        "context worksfor, Σ = {{employee → department}}: derivable FDs {}, unsound {}, underivable {}, incomplete {}",
        sound.checked,
        sound.unsound.len(),
        complete.checked,
        complete.incomplete.len()
    );
    println!(
        "derivable: {:?}",
        engine
            .derivable_fds(&sigma)
            .iter()
            .map(|fd| fd.display(s))
            .collect::<Vec<_>>()
    );
}

/// R7: nucleus and dependency mappings.
fn r7() {
    header("R7", "nucleus N_e, DF_e, dependency-mapping corollary");
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    let gen = db.intension().generalisation();
    let worksfor = s.type_id("worksfor").unwrap();
    let n = nucleus(gen, worksfor);
    println!("|N_worksfor| = {} reflexive dependencies:", n.len());
    for (x, y) in &n {
        println!("  fd({}, {}, worksfor)", s.type_name(*x), s.type_name(*y));
    }
    let sat = satisfied_fd_set(&db, worksfor);
    println!(
        "satisfied FD set in worksfor context: {} pairs (⊇ nucleus: {})",
        sat.len(),
        n.is_subset(&sat)
    );
    let report = verify_fd_corollary(&db);
    println!(
        "dependency-mapping corollary: {} chains, all hold: {}",
        report.chains_checked,
        report.all_hold()
    );
}

/// R8: view updates vs the Universal Relation.
fn r8() {
    header("R8", "unique view-update translation vs UR placeholders");
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema().clone();
    let mut ur = UniversalRelation::new(&s);
    let w = Window::new(&s, &["name", "age", "depname"]).unwrap();
    let row = vec![
        (
            s.attr_id("name").unwrap(),
            toposem_extension::Value::str("ann"),
        ),
        (s.attr_id("age").unwrap(), toposem_extension::Value::Int(40)),
        (
            s.attr_id("depname").unwrap(),
            toposem_extension::Value::str("sales"),
        ),
    ];
    println!(
        "{:<22} {:>12} {:>16}",
        "duplicate inserts k", "UR 2^k - 1", "toposem (always)"
    );
    for k in [1usize, 2, 4, 8] {
        let mut ur2 = UniversalRelation::new(&s);
        for _ in 0..k {
            ur2.insert_through_window(&w, &row);
        }
        println!(
            "{:<22} {:>12} {:>16}",
            k,
            ur2.delete_translation_count(&w, &row),
            1
        );
    }
    let _ = (&mut ur, db, row);
}

/// R9: the §6 extensions.
fn r9() {
    header("R9", "§6 extensions: nulls, MVDs, sheaf condition");
    use toposem_constraints::{BooleanAlgebra, IncompleteRelation, PartialTuple};
    let a = BooleanAlgebra::with_atoms(2);
    println!(
        "boolean algebra laws on 2-atom algebra: {}",
        a.verify_laws()
    );
    let mut rel = IncompleteRelation::new(vec![
        BooleanAlgebra::with_atoms(2),
        BooleanAlgebra::with_atoms(2),
    ]);
    let t = PartialTuple::new(vec![rel.algebras()[0].atom(0), rel.algebras()[1].top()]);
    rel.insert(t.clone());
    rel.insert(t);
    println!(
        "null-FD semantics (two identical partial tuples): state {}, certain {}, possible {}",
        rel.fd_holds_state(&[0], &[1]),
        rel.fd_holds_certain(&[0], &[1]),
        rel.fd_holds_possible(&[0], &[1])
    );
    let db = employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    let mvd = toposem_constraints::Mvd {
        lhs: s.type_id("person").unwrap(),
        rhs: s.type_id("employee").unwrap(),
        context: s.type_id("worksfor").unwrap(),
    };
    println!(
        "MVD pairwise == product-shape formulation: {}",
        toposem_constraints::mvd_holds_pairwise(&db, &mvd)
            == toposem_constraints::mvd_holds_as_product(&db, &mvd)
    );
    let p = ExtensionPresheaf::new(&db);
    let spec = db.intension().specialisation();
    let employee = s.type_id("employee").unwrap();
    let open = spec.s_set(employee).clone();
    println!(
        "extension presheaf: {} section(s) over S_employee, gluing failures {}",
        p.sections_over(&open).len(),
        p.gluing_failures(&open, std::slice::from_ref(&open))
    );
}
