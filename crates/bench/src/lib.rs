//! # toposem-bench
//!
//! Shared fixtures and workload builders for the benchmark harness. Every
//! table and figure of the paper has (a) a Criterion bench under
//! `benches/` named after its experiment id (see DESIGN.md §4), and (b) a
//! textual regenerator in the `figures` binary.

use toposem_core::{employee_schema, Intension, Schema, TypeId};
use toposem_design::{random_database, random_schema, ExtensionParams, SchemaParams};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};

/// Whether the bench suite runs in *short mode* (`TOPOSEM_BENCH_SHORT`
/// set to anything but `0`): smaller workloads and shorter measurement
/// windows, sized for CI smoke jobs that execute every bench on every PR
/// rather than for stable numbers. Headline ratio assertions still run —
/// the workloads are chosen so the claims hold at the reduced size.
pub fn short_mode() -> bool {
    std::env::var("TOPOSEM_BENCH_SHORT").is_ok_and(|v| v.trim() != "0" && !v.trim().is_empty())
}

/// `full` normally, `short` under [`short_mode`].
pub fn sized<T>(full: T, short: T) -> T {
    if short_mode() {
        short
    } else {
        full
    }
}

/// The employee database loaded with the canonical rows used across the
/// experiment suite (2 managers, 2 plain employees, 2 departments, and
/// the matching worksfor facts).
pub fn employee_db(policy: ContainmentPolicy) -> Database {
    let mut db = Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        policy,
    );
    let s = db.schema().clone();
    for (n, a, d, b) in [
        ("ann", 40, "sales", 100_000),
        ("bob", 50, "research", 80_000),
    ] {
        db.insert_fields(
            s.type_id("manager").unwrap(),
            &[
                ("name", Value::str(n)),
                ("age", Value::Int(a)),
                ("depname", Value::str(d)),
                ("budget", Value::Int(b)),
            ],
        )
        .unwrap();
    }
    for (n, a, d) in [("carol", 25, "sales"), ("dave", 35, "research")] {
        db.insert_fields(
            s.type_id("employee").unwrap(),
            &[
                ("name", Value::str(n)),
                ("age", Value::Int(a)),
                ("depname", Value::str(d)),
            ],
        )
        .unwrap();
    }
    for (d, l) in [("sales", "amsterdam"), ("research", "utrecht")] {
        db.insert_fields(
            s.type_id("department").unwrap(),
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
    for (n, a, d, l) in [
        ("ann", 40, "sales", "amsterdam"),
        ("carol", 25, "sales", "amsterdam"),
        ("bob", 50, "research", "utrecht"),
    ] {
        db.insert_fields(
            s.type_id("worksfor").unwrap(),
            &[
                ("name", Value::str(n)),
                ("age", Value::Int(a)),
                ("depname", Value::str(d)),
                ("location", Value::str(l)),
            ],
        )
        .unwrap();
    }
    db
}

/// The sweep of schema sizes used by the intension-level experiments
/// (F2, F3, R1, R2, R3).
pub const SCHEMA_SWEEP: [usize; 4] = [8, 32, 128, 512];

/// The sweep of relation cardinalities used by the extension-level
/// experiments (R4, R5, F4, R8).
pub const TUPLE_SWEEP: [usize; 4] = [10, 100, 1_000, 10_000];

/// A synthesised schema with roughly `n_types` entity types and a dense
/// ISA hierarchy, deterministic per size.
pub fn sweep_schema(n_types: usize) -> Schema {
    random_schema(&SchemaParams {
        n_attrs: (n_types * 2).clamp(8, 4096),
        n_types,
        isa_bias: 0.6,
        max_width: 8,
        seed: 0xC5_8711, // the report number
    })
}

/// A synthesised database over `schema` with `tuples_per_type` rows per
/// entity type, deterministic per size.
pub fn sweep_db(schema: &Schema, tuples_per_type: usize) -> Database {
    random_database(
        schema,
        &ExtensionParams {
            tuples_per_type,
            value_range: (tuples_per_type as i64 / 4).max(4),
            policy: ContainmentPolicy::Eager,
            seed: 0xC5_8711,
        },
    )
}

/// Type names resolved for display.
pub fn names(schema: &Schema, ids: &[TypeId]) -> Vec<String> {
    ids.iter()
        .map(|&e| schema.type_name(e).to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_loads_and_validates() {
        let db = employee_db(ContainmentPolicy::Eager);
        assert!(db.verify_containment().is_empty());
        let s = db.schema();
        assert_eq!(db.extension(s.type_id("person").unwrap()).len(), 4);
        assert_eq!(db.extension(s.type_id("worksfor").unwrap()).len(), 3);
    }

    #[test]
    fn sweep_schema_sizes_scale() {
        let small = sweep_schema(8);
        let large = sweep_schema(32);
        assert!(large.type_count() > small.type_count());
    }
}
