//! # toposem-bench
//!
//! Shared fixtures and workload builders for the benchmark harness. Every
//! table and figure of the paper has (a) a Criterion bench under
//! `benches/` named after its experiment id (see DESIGN.md §4), and (b) a
//! textual regenerator in the `figures` binary.

pub mod regression;

use toposem_core::{employee_schema, Intension, Schema, TypeId};
use toposem_design::{random_database, random_schema, ExtensionParams, SchemaParams};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};

/// Whether the bench suite runs in *short mode* (`TOPOSEM_BENCH_SHORT`
/// set to anything but `0`): smaller workloads and shorter measurement
/// windows, sized for CI smoke jobs that execute every bench on every PR
/// rather than for stable numbers. Headline ratio assertions still run —
/// the workloads are chosen so the claims hold at the reduced size.
pub fn short_mode() -> bool {
    std::env::var("TOPOSEM_BENCH_SHORT").is_ok_and(|v| v.trim() != "0" && !v.trim().is_empty())
}

/// `full` normally, `short` under [`short_mode`].
pub fn sized<T>(full: T, short: T) -> T {
    if short_mode() {
        short
    } else {
        full
    }
}

/// One measured workload in the machine-readable bench report.
#[derive(Clone, Debug)]
pub struct BenchSample {
    /// Workload label, e.g. `planned_point_select`.
    pub name: String,
    /// Iterations behind the reported per-iteration time.
    pub iters: u64,
    /// Wall time per iteration, in nanoseconds.
    pub ns_per_iter: f64,
}

impl BenchSample {
    /// A sample from a median-of-`iters` wall-clock measurement in
    /// seconds per iteration (the shape the benches' `time()` helpers
    /// produce).
    pub fn from_secs(name: &str, iters: u64, secs_per_iter: f64) -> Self {
        BenchSample {
            name: name.to_owned(),
            iters,
            ns_per_iter: secs_per_iter * 1e9,
        }
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// Serialises `samples` as `BENCH_<bench>.json` into the directory named
/// by `TOPOSEM_BENCH_JSON_DIR`, so CI can collect machine-readable
/// timings next to Criterion's human-oriented output. A no-op when the
/// variable is unset (local runs stay clean). The report records the
/// execution knobs in effect — short mode and the `TOPOSEM_THREADS` /
/// `TOPOSEM_MORSEL_SIZE` overrides (`null` when the default applies) —
/// so a regression seen in the numbers can be tied to its configuration.
pub fn emit_bench_json(bench: &str, samples: &[BenchSample]) {
    use std::fmt::Write;
    let Ok(dir) = std::env::var("TOPOSEM_BENCH_JSON_DIR") else {
        return;
    };
    let opt = |v: Option<u64>| v.map_or("null".to_owned(), |v| v.to_string());
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"{}\",", json_escape(bench));
    let _ = writeln!(out, "  \"short_mode\": {},", short_mode());
    let _ = writeln!(out, "  \"threads\": {},", opt(env_u64("TOPOSEM_THREADS")));
    let _ = writeln!(
        out,
        "  \"morsel_size\": {},",
        opt(env_u64("TOPOSEM_MORSEL_SIZE"))
    );
    let _ = writeln!(out, "  \"samples\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"iters\": {}, \"ns_per_iter\": {:.1}}}{comma}",
            json_escape(&s.name),
            s.iters,
            s.ns_per_iter,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    let path = std::path::Path::new(&dir).join(format!("BENCH_{bench}.json"));
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, out)) {
        eprintln!("warning: failed to write {}: {e}", path.display());
    }
}

/// The employee database loaded with the canonical rows used across the
/// experiment suite (2 managers, 2 plain employees, 2 departments, and
/// the matching worksfor facts).
pub fn employee_db(policy: ContainmentPolicy) -> Database {
    let mut db = Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        policy,
    );
    let s = db.schema().clone();
    for (n, a, d, b) in [
        ("ann", 40, "sales", 100_000),
        ("bob", 50, "research", 80_000),
    ] {
        db.insert_fields(
            s.type_id("manager").unwrap(),
            &[
                ("name", Value::str(n)),
                ("age", Value::Int(a)),
                ("depname", Value::str(d)),
                ("budget", Value::Int(b)),
            ],
        )
        .unwrap();
    }
    for (n, a, d) in [("carol", 25, "sales"), ("dave", 35, "research")] {
        db.insert_fields(
            s.type_id("employee").unwrap(),
            &[
                ("name", Value::str(n)),
                ("age", Value::Int(a)),
                ("depname", Value::str(d)),
            ],
        )
        .unwrap();
    }
    for (d, l) in [("sales", "amsterdam"), ("research", "utrecht")] {
        db.insert_fields(
            s.type_id("department").unwrap(),
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
    for (n, a, d, l) in [
        ("ann", 40, "sales", "amsterdam"),
        ("carol", 25, "sales", "amsterdam"),
        ("bob", 50, "research", "utrecht"),
    ] {
        db.insert_fields(
            s.type_id("worksfor").unwrap(),
            &[
                ("name", Value::str(n)),
                ("age", Value::Int(a)),
                ("depname", Value::str(d)),
                ("location", Value::str(l)),
            ],
        )
        .unwrap();
    }
    db
}

/// The sweep of schema sizes used by the intension-level experiments
/// (F2, F3, R1, R2, R3).
pub const SCHEMA_SWEEP: [usize; 4] = [8, 32, 128, 512];

/// The sweep of relation cardinalities used by the extension-level
/// experiments (R4, R5, F4, R8).
pub const TUPLE_SWEEP: [usize; 4] = [10, 100, 1_000, 10_000];

/// A synthesised schema with roughly `n_types` entity types and a dense
/// ISA hierarchy, deterministic per size.
pub fn sweep_schema(n_types: usize) -> Schema {
    random_schema(&SchemaParams {
        n_attrs: (n_types * 2).clamp(8, 4096),
        n_types,
        isa_bias: 0.6,
        max_width: 8,
        seed: 0xC5_8711, // the report number
    })
}

/// A synthesised database over `schema` with `tuples_per_type` rows per
/// entity type, deterministic per size.
pub fn sweep_db(schema: &Schema, tuples_per_type: usize) -> Database {
    random_database(
        schema,
        &ExtensionParams {
            tuples_per_type,
            value_range: (tuples_per_type as i64 / 4).max(4),
            policy: ContainmentPolicy::Eager,
            seed: 0xC5_8711,
        },
    )
}

/// Type names resolved for display.
pub fn names(schema: &Schema, ids: &[TypeId]) -> Vec<String> {
    ids.iter()
        .map(|&e| schema.type_name(e).to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_loads_and_validates() {
        let db = employee_db(ContainmentPolicy::Eager);
        assert!(db.verify_containment().is_empty());
        let s = db.schema();
        assert_eq!(db.extension(s.type_id("person").unwrap()).len(), 4);
        assert_eq!(db.extension(s.type_id("worksfor").unwrap()).len(), 3);
    }

    #[test]
    fn bench_json_round_trips() {
        let dir = std::env::temp_dir().join(format!("toposem-bench-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Serialisation is exercised directly (env vars are process-wide,
        // so the test avoids setting TOPOSEM_BENCH_JSON_DIR and instead
        // checks the emitted shape through the public API contract).
        std::env::set_var("TOPOSEM_BENCH_JSON_DIR", &dir);
        emit_bench_json(
            "unit",
            &[
                BenchSample::from_secs("planned_point", 30, 12.3456e-6),
                BenchSample::from_secs("naive_point", 30, 4.5e-3),
            ],
        );
        std::env::remove_var("TOPOSEM_BENCH_JSON_DIR");
        let text = std::fs::read_to_string(dir.join("BENCH_unit.json")).unwrap();
        assert!(text.contains("\"bench\": \"unit\""));
        assert!(
            text.contains("\"name\": \"planned_point\", \"iters\": 30, \"ns_per_iter\": 12345.6")
        );
        assert!(text.contains("\"ns_per_iter\": 4500000.0"));
        assert!(text.contains("\"short_mode\": "));
        assert!(text.contains("\"threads\": "));
        assert!(text.contains("\"morsel_size\": "));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_schema_sizes_scale() {
        let small = sweep_schema(8);
        let large = sweep_schema(32);
        assert!(large.type_count() > small.type_count());
    }
}
