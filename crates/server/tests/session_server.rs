//! End-to-end coverage of the session front door: real TCP clients
//! speaking the line protocol against one shared engine, exercising
//! snapshot-isolated reads, write transactions, DML/DDL, replica read
//! routing, and the framing itself.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog};
use toposem_repl::{
    Follower, FollowerConfig, InProcessTransport, SegmentTransport, Shipper, ShipperConfig,
};
use toposem_server::{serve, serve_with_replicas, ReplicaPool, ServerHandle, Session};
use toposem_storage::Engine;
use toposem_wal::{FlushPolicy, Wal, WalConfig};

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    )))
}

fn server() -> (Arc<Engine>, ServerHandle) {
    let eng = engine();
    let handle = serve(Arc::clone(&eng), "127.0.0.1:0").unwrap();
    (eng, handle)
}

/// A test client: sends one command, reads one framed response.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Sends `cmd`, returns `(header, body)` — header without the body
    /// count, e.g. `"OK employee"` or `"ERR unknown command"`.
    fn send(&mut self, cmd: &str) -> (String, Vec<String>) {
        writeln!(self.writer, "{cmd}").unwrap();
        self.writer.flush().unwrap();
        let mut head = String::new();
        self.reader.read_line(&mut head).unwrap();
        let head = head.trim_end().to_owned();
        if let Some(rest) = head.strip_prefix("OK ") {
            let (n, info) = rest.split_once(' ').unwrap_or((rest, ""));
            let n: usize = n.parse().unwrap_or_else(|_| panic!("bad frame: {head}"));
            let mut body = Vec::with_capacity(n);
            for _ in 0..n {
                let mut line = String::new();
                self.reader.read_line(&mut line).unwrap();
                body.push(line.trim_end().to_owned());
            }
            (format!("OK {info}").trim_end().to_owned(), body)
        } else {
            (head, Vec::new())
        }
    }

    /// Sends `cmd`, asserts success, returns the body lines.
    fn ok(&mut self, cmd: &str) -> Vec<String> {
        let (head, body) = self.send(cmd);
        assert!(head.starts_with("OK"), "`{cmd}` failed: {head}");
        body
    }

    /// Sends `cmd`, asserts failure, returns the error message.
    fn err(&mut self, cmd: &str) -> String {
        let (head, _) = self.send(cmd);
        assert!(head.starts_with("ERR"), "`{cmd}` unexpectedly ok: {head}");
        head
    }
}

#[test]
fn protocol_round_trip() {
    let (_eng, handle) = server();
    let mut c = Client::connect(&handle);

    let (head, _) = c.send("PING");
    assert_eq!(head, "OK pong");

    c.ok("INSERT employee name='w1', age=30, depname='sales'");
    c.ok("INSERT employee name='w2', age=10, depname='sales'");
    c.ok("INSERT employee name='w3', age=20, depname='admin'");

    // Ordered query: body rows come back sorted by the requested key.
    let rows = c.ok("QUERY scan employee | order by age asc");
    assert_eq!(rows.len(), 3, "rows: {rows:?}");
    assert!(
        rows[0].contains("age=10") && rows[2].contains("age=30"),
        "{rows:?}"
    );

    // Selection narrows, join resolves, explain renders a plan tree.
    let rows = c.ok("QUERY scan employee | select depname = 'sales'");
    assert_eq!(rows.len(), 2);
    let plan = c.ok("EXPLAIN scan employee | select depname = 'sales'");
    assert!(plan.iter().any(|l| l.contains("SeqScan")), "{plan:?}");

    // Deleting by full field list removes the tuple.
    let (head, _) = c.send("DELETE employee name='w3', age=20, depname='admin'");
    assert!(head.contains("deleted="), "{head}");
    assert_eq!(c.ok("QUERY scan employee").len(), 2);

    // Errors come back as ERR without killing the connection.
    c.err("FROBNICATE");
    c.err("QUERY scan nosuchtype");
    c.err("COMMIT"); // no open transaction
    assert_eq!(c.send("PING").0, "OK pong");

    // Metrics include the session/connection series.
    let metrics = c.ok("METRICS");
    assert!(metrics
        .iter()
        .any(|l| l.starts_with("toposem_sessions_open ")));
    assert!(metrics
        .iter()
        .any(|l| l.starts_with("toposem_connections_opened_total ")));
}

#[test]
fn begin_read_pins_one_snapshot_epoch() {
    let (_eng, handle) = server();
    let mut a = Client::connect(&handle);
    let mut b = Client::connect(&handle);

    a.ok("INSERT employee name='w1', age=1, depname='sales'");
    a.ok("INSERT employee name='w2', age=2, depname='sales'");
    assert_eq!(b.ok("QUERY scan employee").len(), 2);

    // A pins a snapshot; B's later commits must stay invisible to it.
    a.ok("BEGIN READ");
    b.ok("INSERT employee name='w3', age=3, depname='admin'");
    b.ok("INSERT employee name='w4', age=4, depname='admin'");
    assert_eq!(b.ok("QUERY scan employee").len(), 4, "B sees its commits");
    assert_eq!(
        a.ok("QUERY scan employee").len(),
        2,
        "pinned reader must not see later commits"
    );
    // Repeat: still the same epoch, however often A asks.
    assert_eq!(a.ok("QUERY scan employee").len(), 2);

    // Writes are rejected inside a read transaction.
    a.err("INSERT employee name='w5', age=5, depname='admin'");

    // Releasing the pin catches A up to the current committed state.
    a.ok("COMMIT");
    assert_eq!(a.ok("QUERY scan employee").len(), 4);
}

#[test]
fn write_transaction_is_invisible_until_commit() {
    let (_eng, handle) = server();
    let mut a = Client::connect(&handle);
    let mut b = Client::connect(&handle);

    a.ok("INSERT employee name='w1', age=1, depname='sales'");
    // Prime the committed snapshot so B's autocommit reads never need
    // the engine lock while A holds the write token.
    assert_eq!(b.ok("QUERY scan employee").len(), 1);

    a.ok("BEGIN");
    a.ok("INSERT employee name='w2', age=2, depname='sales'");
    assert_eq!(
        a.ok("QUERY scan employee").len(),
        2,
        "a write transaction sees its own writes"
    );
    assert_eq!(
        b.ok("QUERY scan employee").len(),
        1,
        "autocommit readers see only committed state"
    );

    // Another session cannot take the single write token meanwhile.
    b.err("BEGIN");

    a.ok("ABORT");
    assert_eq!(a.ok("QUERY scan employee").len(), 1, "abort rolled back");
    assert_eq!(b.ok("QUERY scan employee").len(), 1);

    a.ok("BEGIN");
    a.ok("INSERT employee name='w3', age=3, depname='admin'");
    a.ok("COMMIT");
    assert_eq!(b.ok("QUERY scan employee").len(), 2, "commit published");
}

#[test]
fn first_txn_reads_stay_lock_free_via_the_primed_snapshot() {
    let (eng, handle) = server();
    let mut a = Client::connect(&handle);
    let mut b = Client::connect(&handle);

    // A takes the write token as the engine's *first* transaction — no
    // session has ever requested a snapshot.
    a.ok("BEGIN");
    a.ok("INSERT employee name='w1', age=1, depname='sales'");

    // B's autocommit read arrives mid-transaction. The snapshot primed
    // at engine construction serves the committed (empty) state; the
    // snapshot-hit counter pins that the read went through the
    // lock-free route rather than the locked fallback.
    let hits_before = eng.metrics().snapshot_hits.get();
    assert_eq!(
        b.ok("QUERY scan employee").len(),
        0,
        "uncommitted writes must stay invisible"
    );
    assert!(
        eng.metrics().snapshot_hits.get() > hits_before,
        "first-txn autocommit read must hit the primed snapshot"
    );

    // BEGIN READ also succeeds mid-write-transaction for the same
    // reason (it needs a committed snapshot to pin).
    b.ok("BEGIN READ");
    assert_eq!(b.ok("QUERY scan employee").len(), 0);
    b.ok("COMMIT");

    a.ok("COMMIT");
    assert_eq!(b.ok("QUERY scan employee").len(), 1, "commit published");
}

#[test]
fn ddl_is_autocommit_only_and_changes_plans() {
    let (_eng, handle) = server();
    let mut c = Client::connect(&handle);
    for i in 0..20 {
        c.ok(&format!(
            "INSERT employee name='w{i:02}', age={i}, depname='sales'"
        ));
    }
    c.ok("CREATE INDEX ord employee age");
    let plan = c.ok("EXPLAIN scan employee | select age >= 10");
    assert!(
        plan.iter().any(|l| l.contains("IndexRangeSeek")),
        "created index must open an access path: {plan:?}"
    );

    c.ok("BEGIN");
    c.err("CREATE INDEX hash employee name");
    c.err("DROP INDEX ord employee age");
    c.ok("ABORT");

    let (head, _) = c.send("DROP INDEX ord employee age");
    assert_eq!(head, "OK dropped=true");
    let plan = c.ok("EXPLAIN scan employee | select age >= 10");
    assert!(
        !plan.iter().any(|l| l.contains("IndexRangeSeek")),
        "dropped index must not be planned against: {plan:?}"
    );
}

#[test]
fn disconnect_mid_transaction_releases_the_write_token() {
    let (eng, handle) = server();
    {
        let mut a = Client::connect(&handle);
        a.ok("INSERT employee name='w1', age=1, depname='sales'");
        a.ok("BEGIN");
        a.ok("INSERT employee name='w2', age=2, depname='sales'");
        // Drop the connection with the transaction still open.
    }
    // The session's Drop rolls back; a new session can write again.
    let mut b = Client::connect(&handle);
    let t0 = std::time::Instant::now();
    loop {
        let (head, _) = b.send("BEGIN");
        if head.starts_with("OK") {
            break;
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "write token never released: {head}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(
        b.ok("QUERY scan employee").len(),
        1,
        "the orphaned transaction must have rolled back"
    );
    b.ok("COMMIT");
    drop(b);
    drop(handle);
    assert_eq!(eng.metrics().connections_open.get(), 0);
}

#[test]
fn sessions_are_metered_and_attributed() {
    let eng = engine();
    let mut s1 = Session::new(Arc::clone(&eng));
    let s2 = Session::new(Arc::clone(&eng));
    assert_ne!(s1.id(), s2.id());
    assert_eq!(eng.metrics().sessions_open.get(), 2);

    let person = s1.type_id("person").unwrap();
    s1.insert(
        person,
        &[
            ("name", toposem_extension::Value::str("p1")),
            ("age", toposem_extension::Value::Int(7)),
        ],
    )
    .unwrap();
    let q = toposem_storage::Query::scan(person);
    let (_, rows) = s2.query(&q).unwrap();
    assert_eq!(rows.len(), 1);

    // The trace ring stamps the session id that ran the query.
    let traced: Vec<_> = eng
        .query_trace()
        .recent()
        .into_iter()
        .filter_map(|t| t.session)
        .collect();
    assert!(
        traced.contains(&s2.id()),
        "trace must attribute the query to session {}: {traced:?}",
        s2.id()
    );

    drop(s2);
    assert_eq!(eng.metrics().sessions_open.get(), 1);
    drop(s1);
    assert_eq!(eng.metrics().sessions_open.get(), 0);
}

// ---------------------------------------------------------------------
// Replica read routing.
// ---------------------------------------------------------------------

fn temp_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "toposem-server-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable primary with a shipper, one live follower, and a server
/// routing reads to it. The shipper and transport ride along so tests
/// can keep them alive or cut the link.
struct Replicated {
    primary: Arc<Engine>,
    transport: Arc<InProcessTransport>,
    _shipper: Shipper,
    follower: Arc<Follower>,
    handle: ServerHandle,
}

fn replicated_server(tag: &str, max_lsn_wait: Duration, staleness: Duration) -> Replicated {
    let dir = temp_dir(tag);
    let wal = Wal::create(
        &dir,
        WalConfig {
            flush: FlushPolicy::NoSync,
            segment_bytes: 4096,
        },
    )
    .unwrap();
    let primary = Arc::new(
        Engine::durable(
            Database::new(
                Intension::analyse(employee_schema()),
                DomainCatalog::employee_defaults(),
                ContainmentPolicy::Eager,
            ),
            wal,
        )
        .unwrap(),
    );
    let transport = Arc::new(InProcessTransport::new());
    let shipper = Shipper::start(
        Arc::clone(&primary),
        transport.clone() as Arc<dyn SegmentTransport>,
        ShipperConfig {
            poll_interval: Duration::from_millis(2),
        },
    )
    .unwrap();
    let follower = Arc::new(
        Follower::start_when_ready(
            transport.clone() as Arc<dyn SegmentTransport>,
            FollowerConfig {
                poll_interval: Duration::from_millis(2),
                max_lsn_wait,
            },
            Duration::from_secs(10),
        )
        .unwrap(),
    );
    let pool =
        Arc::new(ReplicaPool::new(vec![Arc::clone(&follower)]).with_staleness_bound(staleness));
    let handle = serve_with_replicas(Arc::clone(&primary), pool, "127.0.0.1:0").unwrap();
    Replicated {
        primary,
        transport,
        _shipper: shipper,
        follower,
        handle,
    }
}

/// Counts query (not commit) traces on an engine's ring.
fn query_traces(eng: &Engine) -> usize {
    eng.query_trace()
        .recent()
        .iter()
        .filter(|t| t.fingerprint != 0)
        .count()
}

#[test]
fn replica_serves_reads_and_primary_takes_writes() {
    let r = replicated_server("route", Duration::from_secs(5), Duration::from_secs(5));
    let mut a = Client::connect(&r.handle);
    let mut b = Client::connect(&r.handle);

    // Writes land on the primary and advance its WAL.
    let wal_before = r.primary.wal_next_lsn().unwrap();
    a.ok("INSERT employee name='w1', age=30, depname='sales'");
    a.ok("INSERT employee name='w2', age=10, depname='sales'");
    a.ok("INSERT employee name='w3', age=20, depname='admin'");
    assert!(r.primary.wal_next_lsn().unwrap() > wal_before);

    // The writing session reads its own writes immediately: the read
    // floor forces the replica to catch up (or the primary to answer).
    let replica_before = query_traces(&r.follower.engine());
    let rows = a.ok("QUERY scan employee | order by age asc");
    assert_eq!(rows.len(), 3, "{rows:?}");
    assert!(rows[0].contains("age=10"), "{rows:?}");

    // The read was served by the replica engine, not the primary.
    assert!(
        query_traces(&r.follower.engine()) > replica_before,
        "autocommit read must execute on the replica"
    );

    // BEGIN READ pins a replica snapshot: a later commit (by the other
    // session) stays invisible until the pin is released.
    a.ok("BEGIN READ");
    b.ok("INSERT employee name='w4', age=40, depname='admin'");
    assert_eq!(b.ok("QUERY scan employee").len(), 4, "B reads its write");
    assert_eq!(
        a.ok("QUERY scan employee").len(),
        3,
        "pinned replica reader must not see later commits"
    );
    a.ok("COMMIT");
    assert_eq!(a.ok("QUERY scan employee").len(), 4);

    // Writes are still rejected inside a read transaction.
    a.ok("BEGIN READ");
    a.err("INSERT employee name='w5', age=5, depname='admin'");
    a.ok("ABORT");
}

#[test]
fn stale_replica_falls_back_to_the_primary() {
    // Tiny bounds: a stalled replica must not block reads for long.
    let r = replicated_server(
        "stale",
        Duration::from_millis(20),
        Duration::from_millis(20),
    );
    let mut c = Client::connect(&r.handle);
    c.ok("INSERT employee name='w1', age=1, depname='sales'");
    assert_eq!(c.ok("QUERY scan employee").len(), 1);

    // Cut the replication link, then write: the replica can never
    // reach the session's new read floor.
    r.transport.set_offline(true);
    c.ok("INSERT employee name='w2', age=2, depname='sales'");

    let primary_before = query_traces(&r.primary);
    let rows = c.ok("QUERY scan employee | order by age asc");
    assert_eq!(rows.len(), 2, "fallback must serve the fresh state");
    assert!(
        query_traces(&r.primary) > primary_before,
        "stale replica must fall back to the primary"
    );

    // BEGIN READ falls back the same way and pins fresh state.
    c.ok("BEGIN READ");
    assert_eq!(c.ok("QUERY scan employee").len(), 2);
    c.ok("COMMIT");

    // Restore the link: replica routing resumes once caught up.
    r.transport.set_offline(false);
    assert!(r
        .follower
        .wait_for_lsn(r.primary.wal_next_lsn().unwrap(), Duration::from_secs(10)));
    assert_eq!(c.ok("QUERY scan employee").len(), 2);
}

// ---------------------------------------------------------------------
// Protocol polish: string escapes and SHOW TRACE.
// ---------------------------------------------------------------------

#[test]
fn string_escapes_round_trip_through_the_wire() {
    let (_eng, handle) = server();
    let mut c = Client::connect(&handle);

    // A value with an embedded newline, quote, and backslash survives
    // insert → select → render without desynchronising the framing.
    c.ok(r"INSERT employee name='a\'b\nc\\d', age=1, depname='sales'");
    let rows = c.ok(r"QUERY scan employee | select name = 'a\'b\nc\\d'");
    assert_eq!(rows.len(), 1, "escaped literal must match the stored value");
    assert!(
        !rows[0].contains('\n') && rows[0].contains("\\n"),
        "newline must be escaped in the body line: {:?}",
        rows[0]
    );
    // The frame stayed in sync.
    assert_eq!(c.send("PING").0, "OK pong");

    // Unknown escapes are rejected as parse errors, connection intact.
    c.err(r"INSERT employee name='bad \q', age=1, depname='x'");
    assert_eq!(c.send("PING").0, "OK pong");
}

#[test]
fn show_trace_surfaces_worst_plans() {
    let (eng, handle) = server();
    let mut c = Client::connect(&handle);

    // Nothing profiled yet: an empty, well-formed frame.
    let (head, body) = c.send("SHOW TRACE");
    assert_eq!(head, "OK trace");
    assert!(body.is_empty());

    for i in 0..10 {
        c.ok(&format!(
            "INSERT employee name='w{i}', age={i}, depname='sales'"
        ));
    }
    // A profiled run retains its operator profile and records q-error,
    // which is what the watchdog ranks.
    let employee = eng.with_db(|db| db.schema().type_id("employee").unwrap());
    let q = toposem_storage::Query::scan(employee);
    use toposem_planner::{QueryRequest, QueryTarget};
    eng.run(&QueryRequest::new(q).profiled()).unwrap();

    let body = c.ok("SHOW TRACE 3");
    assert!(!body.is_empty(), "profiled query must appear in SHOW TRACE");
    assert!(
        body[0].starts_with("q=") && body[0].contains("exec_us="),
        "unexpected trace line: {:?}",
        body[0]
    );
    assert!(body.len() <= 3);
}
