//! Per-connection sessions: transaction state, snapshot-pinned reads,
//! replica routing, and name resolution from protocol [`QuerySpec`]s to
//! engine queries.
//!
//! The engine itself is a single-writer store — explicit transactions
//! take its one write token, and two sessions cannot both hold it. What
//! sessions add on top is **read routing** over the unified
//! [`QueryRequest`]/[`QueryTarget`] API:
//!
//! - An *autocommit* read (no open transaction) goes to a replication
//!   follower when a [`ReplicaPool`] is attached, with
//!   [`Consistency::AtLeast`] the session's *read floor* — the primary
//!   WAL watermark recorded at the session's last write — so a session
//!   always reads its own writes. A stale replica makes the read fall
//!   back to the primary's committed snapshot; without a pool it reads
//!   that snapshot directly, never taking the engine write lock.
//! - `BEGIN READ` pins one snapshot (from a replica at or past the
//!   read floor when possible, else the primary) for the whole
//!   transaction: every query until `COMMIT`/`ABORT` sees the exact
//!   same epoch, however many commits land in between.
//! - `BEGIN` (write) takes the engine transaction; the session's own
//!   reads route through the engine lock so they see the session's
//!   uncommitted writes. Writes and DDL always land on the primary.
//!
//! Every query a session runs is attributed to it in the trace ring via
//! [`toposem_obs::set_current_session`].
//!
//! [`Consistency::AtLeast`]: toposem_planner::Consistency::AtLeast

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use toposem_core::{AttrId, TypeId};
use toposem_extension::{Instance, Value};
use toposem_planner::{
    Consistency, PinnedSnapshot, PlannedExecution, QueryRequest, QueryResponse, QueryTarget,
};
use toposem_storage::{Engine, IndexKind, Query, QueryError, SortDir};

use crate::proto::{CmpOp, QuerySpec, Stage};
use crate::replica::ReplicaPool;

static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);

/// What a session can fail with; rendered to clients as `ERR <message>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The command is illegal in the current transaction state.
    State(String),
    /// A type or attribute name did not resolve against the schema.
    Resolve(String),
    /// The engine rejected the operation.
    Engine(String),
    /// Query validation or execution failed.
    Query(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::State(m)
            | SessionError::Resolve(m)
            | SessionError::Engine(m)
            | SessionError::Query(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// The session's transaction state.
enum Txn {
    /// Autocommit: reads route per query (replica or snapshot).
    None,
    /// Holds the engine's write transaction.
    Write,
    /// A read transaction pinned to one snapshot epoch — on a replica
    /// engine when the pool could serve the read floor, else on the
    /// primary.
    Read(PinnedSnapshot),
}

/// Restores the thread's trace attribution when a query scope ends.
struct AttributionGuard;

impl Drop for AttributionGuard {
    fn drop(&mut self) {
        toposem_obs::set_current_session(None);
    }
}

/// A connection's handle on the engine: transaction state plus query,
/// DML, and DDL entry points. Dropping a session rolls back any write
/// transaction it still holds.
pub struct Session {
    engine: Arc<Engine>,
    replicas: Option<Arc<ReplicaPool>>,
    id: u64,
    txn: Txn,
    /// Primary WAL watermark at this session's last write: replica
    /// reads require at least this LSN (read-your-writes). 0 until the
    /// session writes.
    read_floor: u64,
}

impl Session {
    /// Opens a session over `engine` with a fresh id. Every read is
    /// served by the primary.
    pub fn new(engine: Arc<Engine>) -> Session {
        Session::with_replicas(engine, None)
    }

    /// Opens a session that routes autocommit reads and `BEGIN READ`
    /// pins to `replicas` (when `Some`), falling back to the primary
    /// when a replica is stale or the pool is empty.
    pub fn with_replicas(engine: Arc<Engine>, replicas: Option<Arc<ReplicaPool>>) -> Session {
        let id = NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed);
        engine.metrics().sessions_opened.inc();
        engine.metrics().sessions_open.inc();
        Session {
            engine,
            replicas,
            id,
            txn: Txn::None,
            read_floor: 0,
        }
    }

    /// This session's id, as stamped into query traces.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The engine this session fronts.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Whether a transaction (read or write) is open.
    pub fn in_txn(&self) -> bool {
        !matches!(self.txn, Txn::None)
    }

    /// `BEGIN` / `BEGIN READ`.
    pub fn begin(&mut self, read: bool) -> Result<(), SessionError> {
        if self.in_txn() {
            return Err(SessionError::State(
                "a transaction is already open".to_owned(),
            ));
        }
        if read {
            let pin = self.pin_read_target()?;
            self.txn = Txn::Read(pin);
        } else {
            self.engine
                .begin()
                .map_err(|e| SessionError::Engine(e.to_string()))?;
            self.txn = Txn::Write;
        }
        Ok(())
    }

    /// Picks the snapshot a `BEGIN READ` pins: a replica that has
    /// caught up to the session's read floor within the pool's
    /// staleness bound, else the primary's committed snapshot.
    fn pin_read_target(&self) -> Result<PinnedSnapshot, SessionError> {
        if let Some(pool) = &self.replicas {
            if let Some(follower) = pool.pick() {
                if follower.wait_for_lsn(self.read_floor, pool.staleness_bound()) {
                    if let Some(pin) = PinnedSnapshot::capture(&follower.engine()) {
                        return Ok(pin);
                    }
                }
                // Replica too stale (or unpinnable): read the primary.
            }
        }
        PinnedSnapshot::capture(&self.engine).ok_or_else(|| {
            SessionError::State(
                "no committed snapshot available (a write transaction is active)".to_owned(),
            )
        })
    }

    /// `COMMIT`. Committing a read transaction just releases the pin.
    pub fn commit(&mut self) -> Result<(), SessionError> {
        match std::mem::replace(&mut self.txn, Txn::None) {
            Txn::None => Err(SessionError::State("no open transaction".to_owned())),
            Txn::Read(_) => Ok(()),
            Txn::Write => {
                self.engine
                    .commit()
                    .map_err(|e| SessionError::Engine(e.to_string()))?;
                self.note_write();
                Ok(())
            }
        }
    }

    /// `ABORT`. Aborting a read transaction just releases the pin.
    pub fn abort(&mut self) -> Result<(), SessionError> {
        match std::mem::replace(&mut self.txn, Txn::None) {
            Txn::None => Err(SessionError::State("no open transaction".to_owned())),
            Txn::Read(_) => Ok(()),
            Txn::Write => self
                .engine
                .rollback()
                .map_err(|e| SessionError::Engine(e.to_string())),
        }
    }

    /// Runs a resolved query, returning the result as an ordered
    /// sequence (the root `order by`'s order, or arrival order).
    pub fn query(&self, q: &Query) -> Result<(TypeId, Vec<Instance>), SessionError> {
        toposem_obs::set_current_session(Some(self.id));
        let _guard = AttributionGuard;
        let req = QueryRequest::new(q.clone()).ordered();
        let res = match &self.txn {
            // Pinned: every query in the transaction sees one epoch.
            Txn::Read(pin) => pin.run(&req),
            // Holding the write token: route through the engine lock so
            // the session sees its own uncommitted writes.
            Txn::Write => self.engine.run(&req),
            Txn::None => self.autocommit_read(req),
        };
        let resp = res.map_err(|e| SessionError::Query(e.to_string()))?;
        let seq = resp.rows.seq().expect("ordered request yields Seq rows");
        Ok((resp.ty, seq))
    }

    /// An autocommit read: a pooled replica first (requiring the
    /// session's read floor), then the primary's committed snapshot.
    /// The primary's `Snapshot` mode itself degrades to the locked path
    /// when no snapshot can be produced, so this never fails for lack
    /// of one.
    fn autocommit_read(&self, req: QueryRequest) -> Result<QueryResponse, QueryError> {
        if let Some(pool) = &self.replicas {
            if let Some(follower) = pool.pick() {
                match follower.run(&req.clone().at_least(self.read_floor)) {
                    // Stale past the bound: serve from the primary.
                    Err(QueryError::Stale { .. }) => {}
                    other => return other,
                }
            }
        }
        self.engine
            .run(&req.with_consistency(Consistency::Snapshot))
    }

    /// Records that this session changed the primary: replica reads
    /// from here on must have applied at least the current watermark.
    fn note_write(&mut self) {
        if let Some(lsn) = self.engine.wal_next_lsn() {
            self.read_floor = lsn;
        }
    }

    /// Renders the query's physical plan (against the pinned snapshot's
    /// statistics when one is held — the plan the session would run).
    pub fn explain(&self, q: &Query) -> Result<String, SessionError> {
        self.engine
            .explain(q)
            .map_err(|e| SessionError::Query(e.to_string()))
    }

    fn writable(&self, what: &str) -> Result<(), SessionError> {
        match self.txn {
            Txn::Read(_) => Err(SessionError::State(format!(
                "{what} is not allowed in a read transaction"
            ))),
            _ => Ok(()),
        }
    }

    /// Inserts one instance; returns whether it was new.
    pub fn insert(&mut self, ty: TypeId, fields: &[(&str, Value)]) -> Result<bool, SessionError> {
        self.writable("insert")?;
        let inserted = self
            .engine
            .insert(ty, fields)
            .map_err(|e| SessionError::Engine(e.to_string()))?;
        self.note_write();
        Ok(inserted)
    }

    /// Deletes one instance identified by its full field list; returns
    /// the number of stored tuples removed (cascading included).
    pub fn delete(&mut self, ty: TypeId, fields: &[(&str, Value)]) -> Result<usize, SessionError> {
        self.writable("delete")?;
        let t = self
            .engine
            .with_db(|db| Instance::new(db.schema(), db.catalog(), ty, fields))
            .map_err(|e| SessionError::Query(e.to_string()))?;
        let removed = self
            .engine
            .delete(ty, &t)
            .map_err(|e| SessionError::Engine(e.to_string()))?;
        self.note_write();
        Ok(removed)
    }

    /// Builds an index. DDL is autocommit-only: index definitions are
    /// WAL-logged immediately and would not roll back with the
    /// transaction.
    pub fn create_index(
        &mut self,
        kind: IndexKind,
        ty: TypeId,
        attrs: &[AttrId],
    ) -> Result<(), SessionError> {
        self.ddl_allowed()?;
        self.engine
            .create_index_of(ty, kind, attrs)
            .map_err(|e| SessionError::Engine(e.to_string()))?;
        self.note_write();
        Ok(())
    }

    /// Drops an index; returns whether one existed. Autocommit-only,
    /// like [`Session::create_index`].
    pub fn drop_index(
        &mut self,
        kind: IndexKind,
        ty: TypeId,
        attrs: &[AttrId],
    ) -> Result<bool, SessionError> {
        self.ddl_allowed()?;
        let existed = self
            .engine
            .drop_index(ty, kind, attrs)
            .map_err(|e| SessionError::Engine(e.to_string()))?;
        self.note_write();
        Ok(existed)
    }

    fn ddl_allowed(&self) -> Result<(), SessionError> {
        if self.in_txn() {
            return Err(SessionError::State(
                "DDL is autocommit-only; COMMIT or ABORT first".to_owned(),
            ));
        }
        Ok(())
    }

    /// Resolves a protocol query against the engine's schema.
    pub fn resolve(&self, spec: &QuerySpec) -> Result<Query, SessionError> {
        self.engine.with_db(|db| resolve_query(db.schema(), spec))
    }

    /// Resolves an entity type name.
    pub fn type_id(&self, name: &str) -> Result<TypeId, SessionError> {
        self.engine.with_db(|db| {
            db.schema()
                .type_id(name)
                .ok_or_else(|| SessionError::Resolve(format!("unknown entity type `{name}`")))
        })
    }

    /// Resolves an attribute name.
    pub fn attr_id(&self, name: &str) -> Result<AttrId, SessionError> {
        self.engine.with_db(|db| {
            db.schema()
                .attr_id(name)
                .ok_or_else(|| SessionError::Resolve(format!("unknown attribute `{name}`")))
        })
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if matches!(self.txn, Txn::Write) {
            // Disconnect mid-transaction: roll the engine back so the
            // write token is not orphaned.
            let _ = self.engine.rollback();
        }
        self.engine.metrics().sessions_open.dec();
    }
}

/// Resolves a [`QuerySpec`]'s names against `schema` and builds the
/// engine [`Query`].
pub fn resolve_query(
    schema: &toposem_core::Schema,
    spec: &QuerySpec,
) -> Result<Query, SessionError> {
    let type_id = |name: &str| {
        schema
            .type_id(name)
            .ok_or_else(|| SessionError::Resolve(format!("unknown entity type `{name}`")))
    };
    let attr_id = |name: &str| {
        schema
            .attr_id(name)
            .ok_or_else(|| SessionError::Resolve(format!("unknown attribute `{name}`")))
    };
    let mut stages = spec.stages.iter();
    let mut q = match stages.next() {
        Some(Stage::Scan(ty)) => Query::scan(type_id(ty)?),
        Some(other) => {
            return Err(SessionError::Resolve(format!(
                "a pipeline must start with `scan`, not `{}`",
                stage_name(other)
            )))
        }
        None => return Err(SessionError::Resolve("empty pipeline".to_owned())),
    };
    for stage in stages {
        q = match stage {
            Stage::Scan(_) => {
                return Err(SessionError::Resolve(
                    "`scan` can only start a pipeline; use `join (scan …)`".to_owned(),
                ))
            }
            Stage::Select { attr, op, value } => {
                let a = attr_id(attr)?;
                let v = value.clone();
                match op {
                    CmpOp::Eq => q.select(a, v),
                    CmpOp::Lt => q.select_lt(a, v),
                    CmpOp::Le => q.select_le(a, v),
                    CmpOp::Gt => q.select_gt(a, v),
                    CmpOp::Ge => q.select_ge(a, v),
                }
            }
            Stage::Project(ty) => q.project(type_id(ty)?),
            Stage::Join(sub) => q.join(resolve_query(schema, sub)?),
            Stage::Union(sub) => q.union(resolve_query(schema, sub)?),
            Stage::Intersect(sub) => q.intersect(resolve_query(schema, sub)?),
            Stage::OrderBy(keys) => {
                let mut resolved: Vec<(AttrId, SortDir)> = Vec::with_capacity(keys.len());
                for (attr, dir) in keys {
                    resolved.push((attr_id(attr)?, *dir));
                }
                q.order_by(resolved)
            }
        };
    }
    Ok(q)
}

fn stage_name(s: &Stage) -> &'static str {
    match s {
        Stage::Scan(_) => "scan",
        Stage::Select { .. } => "select",
        Stage::Project(_) => "project",
        Stage::Join(_) => "join",
        Stage::Union(_) => "union",
        Stage::Intersect(_) => "intersect",
        Stage::OrderBy(_) => "order",
    }
}
