//! Read routing onto replication followers: a [`ReplicaPool`] hands
//! sessions a follower for each read, round-robin.
//!
//! The pool is deliberately dumb — it knows nothing about LSNs. The
//! consistency decision belongs to the session: after a session writes,
//! it records the primary's WAL watermark as its *read floor* and asks
//! the chosen follower for [`Consistency::AtLeast`] that floor
//! (read-your-writes); a follower that cannot reach the floor inside
//! the pool's staleness bound makes the session fall back to the
//! primary rather than serve a stale answer.
//!
//! [`Consistency::AtLeast`]: toposem_planner::Consistency::AtLeast

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use toposem_repl::Follower;

/// Default bound on how long a read waits for a replica to catch up to
/// the session's read floor before falling back to the primary.
pub const DEFAULT_STALENESS_BOUND: Duration = Duration::from_millis(500);

/// A round-robin pool of replication followers serving reads.
pub struct ReplicaPool {
    followers: Vec<Arc<Follower>>,
    staleness: Duration,
    next: AtomicUsize,
}

impl ReplicaPool {
    /// A pool over `followers` with the
    /// [default staleness bound](DEFAULT_STALENESS_BOUND).
    pub fn new(followers: Vec<Arc<Follower>>) -> ReplicaPool {
        ReplicaPool {
            followers,
            staleness: DEFAULT_STALENESS_BOUND,
            next: AtomicUsize::new(0),
        }
    }

    /// Override how long a pinned read may wait for a replica to reach
    /// the session's read floor before the session gives up on the
    /// replica and reads from the primary.
    pub fn with_staleness_bound(mut self, bound: Duration) -> ReplicaPool {
        self.staleness = bound;
        self
    }

    /// The configured staleness bound.
    pub fn staleness_bound(&self) -> Duration {
        self.staleness
    }

    /// Number of pooled followers.
    pub fn len(&self) -> usize {
        self.followers.len()
    }

    /// Whether the pool holds no followers (every read then goes to the
    /// primary).
    pub fn is_empty(&self) -> bool {
        self.followers.is_empty()
    }

    /// The next follower, round-robin; `None` when the pool is empty.
    pub fn pick(&self) -> Option<Arc<Follower>> {
        if self.followers.is_empty() {
            return None;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.followers.len();
        Some(Arc::clone(&self.followers[i]))
    }
}
