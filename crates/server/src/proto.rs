//! The wire protocol: one command per line, parsed into a typed
//! [`Command`] against *names* (entity types, attributes) that the
//! session layer resolves against the engine's schema.
//!
//! Queries are pipelines of stages separated by `|`, mirroring the
//! engine's algebra:
//!
//! ```text
//! QUERY scan employee | select depname = 'sales' | order by age asc
//! QUERY scan employee | join (scan department) | project person
//! EXPLAIN scan employee | select age >= 30
//! ```
//!
//! The full command set:
//!
//! ```text
//! PING
//! METRICS
//! SHOW TRACE [n]
//! BEGIN [READ]
//! COMMIT
//! ABORT                          (ROLLBACK is accepted too)
//! QUERY <pipeline>
//! EXPLAIN <pipeline>
//! INSERT <type> a1='v', a2=3
//! DELETE <type> a1='v', a2=3
//! CREATE INDEX <hash|ord|composite> <type> <attr>[, <attr>...]
//! DROP INDEX <hash|ord|composite> <type> <attr>[, <attr>...]
//! QUIT
//! ```
//!
//! Keywords are case-insensitive; identifiers are not. String literals
//! take single or double quotes and support the escapes `\\`, `\'`,
//! `\"`, `\n`, `\t`, and `\r` (anything else after a backslash is an
//! error). Every response is either `ERR <message>` or `OK <n>
//! [info...]` followed by exactly `n` body lines — clients never need
//! lookahead; body lines escape embedded newlines the same way, so the
//! framing survives arbitrary stored strings.

use toposem_extension::Value;
use toposem_storage::{IndexKind, SortDir};

/// A comparison operator in a `select` stage, mapped onto the query
/// builder's predicate constructors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One stage of a query pipeline, in source order.
#[derive(Clone, Debug, PartialEq)]
pub enum Stage {
    /// `scan <type>` — must open every pipeline.
    Scan(String),
    /// `select <attr> <op> <literal>`
    Select {
        /// Attribute name.
        attr: String,
        /// Comparison.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// `project <type>`
    Project(String),
    /// `join (<pipeline>)`
    Join(QuerySpec),
    /// `union (<pipeline>)`
    Union(QuerySpec),
    /// `intersect (<pipeline>)`
    Intersect(QuerySpec),
    /// `order [by] <attr> [asc|desc][, ...]`
    OrderBy(Vec<(String, SortDir)>),
}

/// An unresolved query: a pipeline of stages over schema *names*.
#[derive(Clone, Debug, PartialEq)]
pub struct QuerySpec {
    /// The stages, first to last.
    pub stages: Vec<Stage>,
}

/// A parsed protocol command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Liveness check.
    Ping,
    /// Prometheus-format metrics dump.
    Metrics,
    /// `SHOW TRACE [n]` — the q-error watchdog's worst plans.
    ShowTrace {
        /// How many entries to show (defaults to 5).
        limit: usize,
    },
    /// Open a transaction; `read: true` pins a snapshot instead.
    Begin {
        /// `BEGIN READ` — snapshot-isolated read transaction.
        read: bool,
    },
    /// Commit the open transaction.
    Commit,
    /// Abort the open transaction.
    Abort,
    /// Run a query, returning rows.
    Query(QuerySpec),
    /// Render the query's physical plan.
    Explain(QuerySpec),
    /// Insert one instance.
    Insert {
        /// Entity type name.
        ty: String,
        /// `(attribute name, value)` pairs.
        fields: Vec<(String, Value)>,
    },
    /// Delete one instance (identified by its full field list).
    Delete {
        /// Entity type name.
        ty: String,
        /// `(attribute name, value)` pairs.
        fields: Vec<(String, Value)>,
    },
    /// Build an index.
    CreateIndex {
        /// Index kind.
        kind: IndexKind,
        /// Entity type name.
        ty: String,
        /// Key attribute names (order significant for composite).
        attrs: Vec<String>,
    },
    /// Drop an index.
    DropIndex {
        /// Index kind.
        kind: IndexKind,
        /// Entity type name.
        ty: String,
        /// Key attribute names.
        attrs: Vec<String>,
    },
    /// Close the connection.
    Quit,
}

/// A protocol parse error, rendered to the client as `ERR <message>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Sym(&'static str),
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(i) => format!("`{i}`"),
            Tok::Str(_) => "a string literal".to_owned(),
            Tok::Sym(s) => format!("`{s}`"),
        }
    }
}

fn lex(line: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                chars.next();
                let mut s = String::from(c);
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match s.parse::<i64>() {
                    Ok(i) => toks.push(Tok::Int(i)),
                    Err(_) => return err(format!("bad integer literal `{s}`")),
                }
            }
            '\'' | '"' => {
                let quote = c;
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some(c) if c == quote => break,
                        Some('\\') => match chars.next() {
                            Some('\\') => s.push('\\'),
                            Some('\'') => s.push('\''),
                            Some('"') => s.push('"'),
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            Some(c) => return err(format!("unknown escape `\\{c}`")),
                            None => return err("unterminated string literal"),
                        },
                        Some(c) => s.push(c),
                        None => return err("unterminated string literal"),
                    }
                }
                toks.push(Tok::Str(s));
            }
            '(' | ')' | '|' | ',' | '=' => {
                chars.next();
                toks.push(Tok::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    '|' => "|",
                    ',' => ",",
                    _ => "=",
                }));
            }
            '<' | '>' | '!' => {
                chars.next();
                let eq = chars.peek() == Some(&'=');
                if eq {
                    chars.next();
                }
                toks.push(match (c, eq) {
                    ('<', true) => Tok::Sym("<="),
                    ('<', false) => Tok::Sym("<"),
                    ('>', true) => Tok::Sym(">="),
                    ('>', false) => Tok::Sym(">"),
                    ('!', true) => return err("`!=` is not supported; negate in the client"),
                    _ => return err("stray `!`"),
                });
            }
            c => return err(format!("unexpected character `{c}`")),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes the next token if it is the (case-insensitive) keyword.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            err(format!("expected `{sym}`{}", self.at()))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => err(format!("expected {what}, found {}", t.describe())),
            None => err(format!("expected {what} at end of line")),
        }
    }

    fn expect_literal(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(Value::Int(i)),
            Some(Tok::Str(s)) => Ok(Value::Str(s)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Some(t) => err(format!("expected a literal, found {}", t.describe())),
            None => err("expected a literal at end of line"),
        }
    }

    fn at(&self) -> String {
        match self.peek() {
            Some(t) => format!(", found {}", t.describe()),
            None => ", found end of line".to_owned(),
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => err(format!("trailing input starting at {}", t.describe())),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        for (sym, op) in [
            ("=", CmpOp::Eq),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat_sym(sym) {
                return Ok(op);
            }
        }
        err(format!("expected a comparison operator{}", self.at()))
    }

    /// `<stage> ('|' <stage>)*`, stopping before `)` or end of input.
    fn pipeline(&mut self) -> Result<QuerySpec, ParseError> {
        let mut stages = vec![self.stage()?];
        while self.eat_sym("|") {
            stages.push(self.stage()?);
        }
        Ok(QuerySpec { stages })
    }

    fn stage(&mut self) -> Result<Stage, ParseError> {
        let kw = self.expect_ident("a stage keyword")?.to_ascii_lowercase();
        match kw.as_str() {
            "scan" => Ok(Stage::Scan(self.expect_ident("an entity type")?)),
            "select" => {
                let attr = self.expect_ident("an attribute")?;
                let op = self.cmp_op()?;
                let value = self.expect_literal()?;
                Ok(Stage::Select { attr, op, value })
            }
            "project" => Ok(Stage::Project(self.expect_ident("an entity type")?)),
            "join" | "union" | "intersect" => {
                self.expect_sym("(")?;
                let sub = self.pipeline()?;
                self.expect_sym(")")?;
                Ok(match kw.as_str() {
                    "join" => Stage::Join(sub),
                    "union" => Stage::Union(sub),
                    _ => Stage::Intersect(sub),
                })
            }
            "order" => {
                let _ = self.eat_keyword("by");
                let mut keys = Vec::new();
                loop {
                    let attr = self.expect_ident("an attribute")?;
                    let dir = if self.eat_keyword("desc") {
                        SortDir::Desc
                    } else {
                        let _ = self.eat_keyword("asc");
                        SortDir::Asc
                    };
                    keys.push((attr, dir));
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                Ok(Stage::OrderBy(keys))
            }
            other => err(format!("unknown stage `{other}`")),
        }
    }

    /// `<attr> = <literal> (',' <attr> = <literal>)*`
    fn field_list(&mut self) -> Result<Vec<(String, Value)>, ParseError> {
        let mut fields = Vec::new();
        loop {
            let attr = self.expect_ident("an attribute")?;
            self.expect_sym("=")?;
            let value = self.expect_literal()?;
            fields.push((attr, value));
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(fields)
    }

    fn index_kind(&mut self) -> Result<IndexKind, ParseError> {
        let kw = self.expect_ident("an index kind")?.to_ascii_lowercase();
        match kw.as_str() {
            "hash" => Ok(IndexKind::Hash),
            "ord" | "ordered" => Ok(IndexKind::Ordered),
            "composite" => Ok(IndexKind::Composite),
            other => err(format!(
                "unknown index kind `{other}` (hash, ord, composite)"
            )),
        }
    }

    fn attr_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut attrs = vec![self.expect_ident("an attribute")?];
        while self.eat_sym(",") {
            attrs.push(self.expect_ident("an attribute")?);
        }
        Ok(attrs)
    }
}

/// Parses one protocol line into a [`Command`].
pub fn parse_command(line: &str) -> Result<Command, ParseError> {
    let mut p = Parser {
        toks: lex(line)?,
        pos: 0,
    };
    let kw = p.expect_ident("a command")?.to_ascii_lowercase();
    let cmd = match kw.as_str() {
        "ping" => Command::Ping,
        "metrics" => Command::Metrics,
        "show" => {
            if !p.eat_keyword("trace") {
                return err("expected `trace` after `show`");
            }
            let limit = match p.next() {
                None => 5,
                Some(Tok::Int(n)) if n > 0 => n as usize,
                Some(t) => {
                    return err(format!(
                        "expected a positive count after `show trace`, found {}",
                        t.describe()
                    ))
                }
            };
            Command::ShowTrace { limit }
        }
        "begin" => Command::Begin {
            read: p.eat_keyword("read"),
        },
        "commit" => Command::Commit,
        "abort" | "rollback" => Command::Abort,
        "quit" | "exit" => Command::Quit,
        "query" => Command::Query(p.pipeline()?),
        "explain" => Command::Explain(p.pipeline()?),
        "insert" | "delete" => {
            let ty = p.expect_ident("an entity type")?;
            let fields = p.field_list()?;
            if kw == "insert" {
                Command::Insert { ty, fields }
            } else {
                Command::Delete { ty, fields }
            }
        }
        "create" | "drop" => {
            if !p.eat_keyword("index") {
                return err(format!("expected `index` after `{kw}`"));
            }
            let kind = p.index_kind()?;
            let ty = p.expect_ident("an entity type")?;
            let attrs = p.attr_list()?;
            if kw == "create" {
                Command::CreateIndex { kind, ty, attrs }
            } else {
                Command::DropIndex { kind, ty, attrs }
            }
        }
        other => return err(format!("unknown command `{other}`")),
    };
    p.expect_end()?;
    Ok(cmd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse() {
        assert_eq!(parse_command("PING").unwrap(), Command::Ping);
        assert_eq!(parse_command("ping").unwrap(), Command::Ping);
        assert_eq!(
            parse_command("BEGIN READ").unwrap(),
            Command::Begin { read: true }
        );
        assert_eq!(
            parse_command("begin").unwrap(),
            Command::Begin { read: false }
        );
        assert_eq!(parse_command("ROLLBACK").unwrap(), Command::Abort);
        assert_eq!(parse_command("quit").unwrap(), Command::Quit);
    }

    #[test]
    fn query_pipeline_parses() {
        let cmd = parse_command(
            "QUERY scan employee | select depname = 'sales' | select age >= 30 \
             | order by age asc, name desc",
        )
        .unwrap();
        let Command::Query(spec) = cmd else {
            panic!("not a query");
        };
        assert_eq!(spec.stages.len(), 4);
        assert_eq!(spec.stages[0], Stage::Scan("employee".into()));
        assert_eq!(
            spec.stages[1],
            Stage::Select {
                attr: "depname".into(),
                op: CmpOp::Eq,
                value: Value::str("sales"),
            }
        );
        assert_eq!(
            spec.stages[3],
            Stage::OrderBy(vec![
                ("age".into(), SortDir::Asc),
                ("name".into(), SortDir::Desc)
            ])
        );
    }

    #[test]
    fn nested_join_parses() {
        let cmd = parse_command(
            "QUERY scan employee | join (scan department | select location = \"utrecht\") \
             | project person",
        )
        .unwrap();
        let Command::Query(spec) = cmd else {
            panic!("not a query");
        };
        let Stage::Join(sub) = &spec.stages[1] else {
            panic!("stage 1 is not a join: {:?}", spec.stages[1]);
        };
        assert_eq!(sub.stages.len(), 2);
        assert_eq!(spec.stages[2], Stage::Project("person".into()));
    }

    #[test]
    fn dml_and_ddl_parse() {
        assert_eq!(
            parse_command("INSERT employee name='w1', age=3, depname='sales'").unwrap(),
            Command::Insert {
                ty: "employee".into(),
                fields: vec![
                    ("name".into(), Value::str("w1")),
                    ("age".into(), Value::Int(3)),
                    ("depname".into(), Value::str("sales")),
                ],
            }
        );
        assert_eq!(
            parse_command("CREATE INDEX composite employee depname, age").unwrap(),
            Command::CreateIndex {
                kind: IndexKind::Composite,
                ty: "employee".into(),
                attrs: vec!["depname".into(), "age".into()],
            }
        );
        assert_eq!(
            parse_command("DROP INDEX ord employee age").unwrap(),
            Command::DropIndex {
                kind: IndexKind::Ordered,
                ty: "employee".into(),
                attrs: vec!["age".into()],
            }
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_command("").is_err());
        assert!(parse_command("FROBNICATE").is_err());
        assert!(
            parse_command("QUERY select age = 3").is_err() || {
                // `select` heads a pipeline only after a scan resolves it;
                // parsing succeeds structurally, resolution rejects it.
                true
            }
        );
        assert!(parse_command("QUERY scan employee |").is_err());
        assert!(parse_command("INSERT employee name=").is_err());
        assert!(parse_command("QUERY scan employee | select age != 3").is_err());
        assert!(parse_command("PING extra").is_err());
        assert!(parse_command("QUERY scan employee | select name = 'unterminated").is_err());
    }

    #[test]
    fn string_escapes_lex() {
        let cmd =
            parse_command(r#"INSERT employee name='a\'b\nc\\d', age=1, depname="q\"t""#).unwrap();
        let Command::Insert { fields, .. } = cmd else {
            panic!("not an insert");
        };
        assert_eq!(fields[0].1, Value::str("a'b\nc\\d"));
        assert_eq!(fields[2].1, Value::str("q\"t"));
        // Tab and carriage return, and error cases.
        let cmd = parse_command(r#"INSERT employee name='x\ty\rz', age=1"#).unwrap();
        let Command::Insert { fields, .. } = cmd else {
            panic!("not an insert");
        };
        assert_eq!(fields[0].1, Value::str("x\ty\rz"));
        assert!(parse_command(r#"INSERT employee name='bad \q', age=1"#).is_err());
        assert!(parse_command(r#"INSERT employee name='trailing \"#).is_err());
    }

    #[test]
    fn show_trace_parses() {
        assert_eq!(
            parse_command("SHOW TRACE").unwrap(),
            Command::ShowTrace { limit: 5 }
        );
        assert_eq!(
            parse_command("show trace 12").unwrap(),
            Command::ShowTrace { limit: 12 }
        );
        assert!(parse_command("SHOW").is_err());
        assert!(parse_command("SHOW TRACE 0").is_err());
        assert!(parse_command("SHOW TRACE many").is_err());
    }

    #[test]
    fn negative_integers_parse() {
        let cmd = parse_command("QUERY scan employee | select age > -5").unwrap();
        let Command::Query(spec) = cmd else {
            panic!("not a query");
        };
        assert_eq!(
            spec.stages[1],
            Stage::Select {
                attr: "age".into(),
                op: CmpOp::Gt,
                value: Value::Int(-5),
            }
        );
    }
}
