//! # toposem-server
//!
//! The concurrent-session front door over the toposem engine: three
//! thin layers that turn the single-process [`Engine`] into something
//! multiple clients can talk to at once.
//!
//! 1. **[`proto`]** — a line protocol. One command per line (`QUERY
//!    scan employee | select depname = 'sales' | order by age`,
//!    `BEGIN READ`, `INSERT employee name='w1', age=3, …`), parsed into
//!    a typed [`Command`] over schema *names*. Responses are framed as
//!    `OK <n> [info]` + `n` body lines, or a single `ERR <message>`.
//! 2. **[`session`]** — per-connection state. A [`Session`] resolves
//!    names against the schema, tracks the transaction mode, and routes
//!    reads through the unified `QueryRequest`/`QueryTarget` API:
//!    autocommit queries go to a replication follower when a
//!    [`ReplicaPool`] is attached (requiring the session's read floor,
//!    so a session always reads its own writes) or to the engine's
//!    current committed snapshot otherwise; `BEGIN READ` pins one
//!    snapshot for the whole transaction (snapshot isolation); a write
//!    transaction reads through the engine lock so it sees its own
//!    writes. Writes and DDL always execute on the primary. Every
//!    query is attributed to its session in the trace ring.
//! 3. **[`server`]** — a thread-per-connection TCP listener ([`serve`],
//!    [`serve_with_replicas`]). Readers scale because snapshot and
//!    replica queries never take the primary's write lock; writers
//!    serialise on the engine's single write token, exactly like the
//!    embedded API.
//!
//! The crate adds no dependencies beyond the workspace: the protocol
//! parser is hand-rolled and the server uses `std::net` blocking I/O.
//!
//! [`Engine`]: toposem_storage::Engine

pub mod proto;
pub mod replica;
pub mod server;
pub mod session;

pub use proto::{parse_command, CmpOp, Command, ParseError, QuerySpec, Stage};
pub use replica::ReplicaPool;
pub use server::{serve, serve_with_replicas, ServerHandle};
pub use session::{resolve_query, Session, SessionError};
