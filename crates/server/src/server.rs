//! The network front door: a thread-per-connection TCP server speaking
//! the line protocol in [`crate::proto`].
//!
//! Every connection gets its own [`Session`]; concurrent readers run
//! against copy-on-write engine snapshots and never contend on the
//! engine write lock, while writers serialise through the engine's
//! single write token. Responses are framed so clients need no
//! lookahead: `ERR <message>` on one line, or `OK <n> [info...]`
//! followed by exactly `n` body lines.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use toposem_storage::Engine;

use crate::proto::{parse_command, Command};
use crate::replica::ReplicaPool;
use crate::session::Session;

/// A running server: the bound address plus the accept thread's handle.
/// Dropping the handle shuts the listener down (open connections finish
/// on their own when their clients disconnect).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // Poke the blocking accept so it observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves the engine until the handle shuts down.
/// Every read is answered by the primary; see [`serve_with_replicas`]
/// to offload reads onto replication followers.
pub fn serve(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    serve_inner(engine, None, addr)
}

/// Like [`serve`], but sessions route autocommit reads and `BEGIN
/// READ` pins to `replicas`: each read picks a follower round-robin
/// and requires the session's read floor (read-your-writes), falling
/// back to the primary when the replica is stale past the pool's
/// bound. Write transactions and DDL always execute on the primary.
pub fn serve_with_replicas(
    engine: Arc<Engine>,
    replicas: Arc<ReplicaPool>,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle> {
    serve_inner(engine, Some(replicas), addr)
}

fn serve_inner(
    engine: Arc<Engine>,
    replicas: Option<Arc<ReplicaPool>>,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let accept = std::thread::Builder::new()
        .name("toposem-server-accept".to_owned())
        .spawn(move || accept_loop(listener, engine, replicas, flag))?;
    Ok(ServerHandle {
        addr: bound,
        shutdown,
        accept: Some(accept),
    })
}

fn accept_loop(
    listener: TcpListener,
    engine: Arc<Engine>,
    replicas: Option<Arc<ReplicaPool>>,
    shutdown: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let engine = Arc::clone(&engine);
        let replicas = replicas.clone();
        let _ = std::thread::Builder::new()
            .name("toposem-server-conn".to_owned())
            .spawn(move || {
                engine.metrics().connections_opened.inc();
                engine.metrics().connections_open.inc();
                let metrics = Arc::clone(engine.metrics());
                let _ = handle_connection(stream, engine, replicas);
                metrics.connections_open.dec();
            });
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: Arc<Engine>,
    replicas: Option<Arc<ReplicaPool>>,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut session = Session::with_replicas(engine, replicas);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let reply = match parse_command(trimmed) {
            Ok(Command::Quit) => {
                writer.write_all(b"OK 0 bye\n")?;
                return Ok(());
            }
            Ok(cmd) => dispatch(&mut session, cmd),
            Err(e) => Reply::err(e.to_string()),
        };
        reply.write_to(&mut writer)?;
    }
}

/// One framed response.
struct Reply {
    /// `Ok(info)` or `Err(message)`.
    head: Result<String, String>,
    body: Vec<String>,
}

impl Reply {
    fn ok(info: impl Into<String>) -> Reply {
        Reply {
            head: Ok(info.into()),
            body: Vec::new(),
        }
    }

    fn with_body(info: impl Into<String>, body: Vec<String>) -> Reply {
        Reply {
            head: Ok(info.into()),
            body,
        }
    }

    fn err(msg: impl Into<String>) -> Reply {
        Reply {
            head: Err(msg.into()),
            body: Vec::new(),
        }
    }

    fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut out = String::new();
        match &self.head {
            // Newlines inside body lines would desynchronise the
            // framing, so they are escaped (reversibly — the same
            // escapes the lexer accepts in string literals).
            Ok(info) => {
                out.push_str(&format!("OK {} {}\n", self.body.len(), escape_line(info)));
                for line in &self.body {
                    out.push_str(&escape_line(line));
                    out.push('\n');
                }
            }
            Err(msg) => out.push_str(&format!("ERR {}\n", escape_line(msg))),
        }
        w.write_all(out.as_bytes())?;
        w.flush()
    }
}

/// Escapes a response line so the one-line-per-row framing survives
/// arbitrary content: `\` doubles, and newline/tab/carriage-return
/// become `\n`/`\t`/`\r`. Clients reverse it with the lexer's escape
/// table.
fn escape_line(s: &str) -> String {
    if !s.contains(['\\', '\n', '\t', '\r']) {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn dispatch(session: &mut Session, cmd: Command) -> Reply {
    let result = match cmd {
        Command::Ping => Ok(Reply::ok("pong")),
        Command::Metrics => {
            let text = session.engine().metrics_prometheus();
            let body: Vec<String> = text.lines().map(str::to_owned).collect();
            Ok(Reply::with_body("metrics", body))
        }
        Command::ShowTrace { limit } => {
            let worst = session.engine().query_trace().worst_plans(limit);
            let body: Vec<String> = worst
                .iter()
                .map(|t| {
                    format!(
                        "q={:.2} rows={} plan={:#018x} fp={:#018x} plan_us={} exec_us={} \
                         cache_hit={}{}",
                        t.max_q,
                        t.rows,
                        t.plan_hash,
                        t.fingerprint,
                        t.plan_ns / 1_000,
                        t.exec_ns / 1_000,
                        t.cache_hit,
                        t.session
                            .map(|s| format!(" session={s}"))
                            .unwrap_or_default(),
                    )
                })
                .collect();
            Ok(Reply::with_body("trace", body))
        }
        Command::Begin { read } => session
            .begin(read)
            .map(|()| Reply::ok(if read { "begin read" } else { "begin" })),
        Command::Commit => session.commit().map(|()| Reply::ok("commit")),
        Command::Abort => session.abort().map(|()| Reply::ok("abort")),
        Command::Query(spec) => session.resolve(&spec).and_then(|q| {
            let (ty, rows) = session.query(&q)?;
            let (ty_name, body) = session.engine().with_db(|db| {
                let schema = db.schema();
                let rendered = rows
                    .iter()
                    .map(|t| {
                        t.fields()
                            .iter()
                            .map(|(a, v)| format!("{}={v}", schema.attr_name(*a)))
                            .collect::<Vec<_>>()
                            .join(" ")
                    })
                    .collect();
                (schema.type_name(ty).to_owned(), rendered)
            });
            Ok(Reply::with_body(ty_name, body))
        }),
        Command::Explain(spec) => session.resolve(&spec).and_then(|q| {
            let plan = session.explain(&q)?;
            let body: Vec<String> = plan.lines().map(str::to_owned).collect();
            Ok(Reply::with_body("plan", body))
        }),
        Command::Insert { ty, fields } => session.type_id(&ty).and_then(|t| {
            let borrowed: Vec<(&str, toposem_extension::Value)> = fields
                .iter()
                .map(|(a, v)| (a.as_str(), v.clone()))
                .collect();
            let inserted = session.insert(t, &borrowed)?;
            Ok(Reply::ok(format!("inserted={inserted}")))
        }),
        Command::Delete { ty, fields } => session.type_id(&ty).and_then(|t| {
            let borrowed: Vec<(&str, toposem_extension::Value)> = fields
                .iter()
                .map(|(a, v)| (a.as_str(), v.clone()))
                .collect();
            let removed = session.delete(t, &borrowed)?;
            Ok(Reply::ok(format!("deleted={removed}")))
        }),
        Command::CreateIndex { kind, ty, attrs } => {
            resolve_index(session, &ty, &attrs).and_then(|(t, attrs)| {
                session.create_index(kind, t, &attrs)?;
                Ok(Reply::ok("index created"))
            })
        }
        Command::DropIndex { kind, ty, attrs } => {
            resolve_index(session, &ty, &attrs).and_then(|(t, attrs)| {
                let existed = session.drop_index(kind, t, &attrs)?;
                Ok(Reply::ok(format!("dropped={existed}")))
            })
        }
        Command::Quit => unreachable!("handled by the connection loop"),
    };
    result.unwrap_or_else(|e| Reply::err(e.to_string()))
}

fn resolve_index(
    session: &Session,
    ty: &str,
    attrs: &[String],
) -> Result<(toposem_core::TypeId, Vec<toposem_core::AttrId>), crate::session::SessionError> {
    let t = session.type_id(ty)?;
    let mut resolved = Vec::with_capacity(attrs.len());
    for a in attrs {
        resolved.push(session.attr_id(a)?);
    }
    Ok((t, resolved))
}

#[cfg(test)]
mod tests {
    use super::escape_line;

    #[test]
    fn lines_escape_reversibly() {
        assert_eq!(escape_line("plain"), "plain");
        assert_eq!(escape_line("a\nb"), "a\\nb");
        assert_eq!(escape_line("a\\nb"), "a\\\\nb");
        assert_eq!(escape_line("t\tr\r"), "t\\tr\\r");
        // No escaped line ever contains a raw newline — the framing
        // invariant the server relies on.
        assert!(!escape_line("x\n\r\t\\y\n").contains('\n'));
    }
}
