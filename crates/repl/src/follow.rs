//! The follower side of replication: bootstrap from the shipped
//! checkpoint, replay shipped segments, then tail the live one.
//!
//! A [`Follower`] owns a read-only [`Engine`] built by
//! [`Engine::replica_from_checkpoint`] and advances it by feeding every
//! decoded record to [`Engine::apply_replicated`] — the same
//! buffering-until-commit logic crash recovery uses, so an aborted
//! transaction or a torn tail on the primary can never leak partial
//! state into the replica.
//!
//! Per segment the follower keeps one byte offset: the end of the last
//! CRC-valid frame it decoded. Each round it fetches only bytes past
//! that offset and stops at the first torn frame, waiting for the
//! shipper to deliver the rest — which makes mid-stream disconnects,
//! partially shipped frames, and primary crash-restarts (the torn
//! suffix is truncated and rewritten, always at or past the follower's
//! offset) all resolve to the same "resume at the offset" behaviour.
//! When the manifest's oldest segment starts above the follower's
//! applied LSN, the needed records are gone — the primary checkpointed
//! past this follower — so it re-bootstraps from the newer checkpoint
//! and swaps the engine behind its handle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use toposem_planner::{Consistency, QueryRequest, QueryResponse, QueryTarget};
use toposem_storage::{Engine, QueryError};
use toposem_wal::{decode_record, Decoded, SEG_HEADER_LEN};

use crate::transport::{decode_checkpoint, SegmentTransport};
use crate::ReplError;

/// Follower tuning.
#[derive(Clone, Copy, Debug)]
pub struct FollowerConfig {
    /// How often to poll the transport for a newer manifest.
    pub poll_interval: Duration,
    /// How long a [`Consistency::AtLeast`] query may wait for
    /// replication to reach its LSN before failing with
    /// [`QueryError::Stale`] — the follower's staleness bound.
    ///
    /// [`Consistency::AtLeast`]: toposem_planner::Consistency::AtLeast
    /// [`QueryError::Stale`]: toposem_storage::QueryError::Stale
    pub max_lsn_wait: Duration,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            poll_interval: Duration::from_millis(50),
            max_lsn_wait: Duration::from_millis(500),
        }
    }
}

struct FollowerShared {
    transport: Arc<dyn SegmentTransport>,
    /// The replica engine; swapped wholesale on re-bootstrap, so
    /// readers clone the `Arc` and keep a consistent engine even across
    /// a swap.
    engine: RwLock<Arc<Engine>>,
    /// Per-segment decode offsets (bytes into the segment file, so the
    /// header counts). A segment absent here starts at
    /// [`SEG_HEADER_LEN`].
    offsets: Mutex<HashMap<String, usize>>,
}

/// A replication follower: a read-only engine kept current by tailing
/// the shipped log. Dropping the handle stops the tailing thread (the
/// engine stays usable at whatever LSN it reached).
pub struct Follower {
    shared: Arc<FollowerShared>,
    cfg: FollowerConfig,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Follower {
    /// Bootstrap from the transport's current checkpoint, replay
    /// everything already shipped, and start tailing. Fails with
    /// [`ReplError::NoCheckpoint`] if nothing has been shipped yet —
    /// see [`Follower::start_when_ready`] to wait instead.
    pub fn start(
        transport: Arc<dyn SegmentTransport>,
        cfg: FollowerConfig,
    ) -> Result<Follower, ReplError> {
        let engine = bootstrap(transport.as_ref())?;
        let shared = Arc::new(FollowerShared {
            transport,
            engine: RwLock::new(engine),
            offsets: Mutex::new(HashMap::new()),
        });
        // Catch up on everything already shipped before returning, so a
        // fresh follower is immediately as current as the transport.
        catch_up(&shared)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("toposem-follower".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::park_timeout(cfg.poll_interval);
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        // Transient faults (link down, blob not shipped
                        // yet) leave the replica where it is; the next
                        // round resumes from the recorded offsets.
                        let _ = catch_up(&shared);
                    }
                })
                .map_err(|e| ReplError::Wal(e.to_string()))?
        };
        Ok(Follower {
            shared,
            cfg,
            stop,
            thread: Some(thread),
        })
    }

    /// Like [`Follower::start`], but waits up to `timeout` for the
    /// shipper's first checkpoint to appear.
    pub fn start_when_ready(
        transport: Arc<dyn SegmentTransport>,
        cfg: FollowerConfig,
        timeout: Duration,
    ) -> Result<Follower, ReplError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::start(Arc::clone(&transport), cfg) {
                Err(ReplError::NoCheckpoint) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                other => return other,
            }
        }
    }

    /// The replica engine as of now. The `Arc` stays valid across a
    /// re-bootstrap; call again to observe the swapped-in engine.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.shared.engine.read())
    }

    /// LSN up to which every committed record has been applied.
    pub fn applied_lsn(&self) -> u64 {
        self.engine().applied_lsn()
    }

    /// Block until the replica has applied at least `lsn` (true) or
    /// `timeout` elapses (false).
    pub fn wait_for_lsn(&self, lsn: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.applied_lsn() >= lsn {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Ask the tailing thread to stop and wait for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A follower answers the unified query API directly: `Latest` and
/// `Snapshot` run against the replica engine's current state (every
/// replica read is snapshot-consistent anyway — commits apply atomically
/// under the engine's write lock), and `AtLeast(lsn)` first waits out
/// the configured staleness bound ([`FollowerConfig::max_lsn_wait`]) for
/// replication to catch up, then fails with
/// [`toposem_storage::QueryError::Stale`] if it has not.
impl QueryTarget for Follower {
    fn run(&self, req: &QueryRequest) -> Result<QueryResponse, QueryError> {
        if let Consistency::AtLeast(lsn) = req.consistency() {
            if !self.wait_for_lsn(lsn, self.cfg.max_lsn_wait) {
                return Err(QueryError::Stale {
                    want_lsn: lsn,
                    applied_lsn: self.applied_lsn(),
                });
            }
        }
        // The engine's own impl re-checks the (now satisfied) LSN floor
        // and handles the remaining consistency modes.
        self.engine().run(req)
    }
}

/// Build a fresh replica engine from the transport's checkpoint.
fn bootstrap(transport: &dyn SegmentTransport) -> Result<Arc<Engine>, ReplError> {
    let bytes = transport
        .fetch_checkpoint()?
        .ok_or(ReplError::NoCheckpoint)?;
    let (meta, payload) = decode_checkpoint(&bytes)?;
    Ok(Arc::new(Engine::replica_from_checkpoint(meta, payload)?))
}

/// One replication round: fetch the manifest, re-bootstrap if the
/// shipped log no longer reaches back to our applied LSN, then decode
/// and apply new bytes from every segment that can still hold records
/// at or above it.
fn catch_up(shared: &FollowerShared) -> Result<(), ReplError> {
    let Some(mut manifest) = shared.transport.fetch_manifest()? else {
        return Ok(());
    };
    manifest.segments.sort_by_key(|s| s.first_lsn);

    let mut engine = Arc::clone(&shared.engine.read());
    engine
        .metrics()
        .repl
        .shipped_lsn
        .set(manifest.shipped_next_lsn);

    // Gap check: every record >= applied_lsn must still be fetchable.
    // The oldest shipped segment's first LSN is the earliest record the
    // transport still holds; if even that is above our applied LSN the
    // primary checkpointed past us and replay cannot continue.
    let applied = engine.applied_lsn();
    let gap = match manifest.segments.first() {
        Some(oldest) => applied < oldest.first_lsn,
        None => applied < manifest.checkpoint_next_lsn,
    };
    if gap && manifest.checkpoint_next_lsn > applied {
        let fresh = bootstrap(shared.transport.as_ref())?;
        // Counters live on the engine's metrics registry, so carry the
        // monotonic ones across the swap.
        let old = &engine.metrics().repl;
        let new = &fresh.metrics().repl;
        new.records_applied.add(old.records_applied.get());
        new.rebootstraps.add(old.rebootstraps.get() + 1);
        new.shipped_lsn.set(manifest.shipped_next_lsn);
        *shared.engine.write() = Arc::clone(&fresh);
        shared.offsets.lock().clear();
        engine = fresh;
    }

    let applied = engine.applied_lsn();
    let mut offsets = shared.offsets.lock();
    for (i, seg) in manifest.segments.iter().enumerate() {
        // A segment is fully below our applied LSN when the next
        // segment starts at or below it: mark it consumed without
        // fetching. (Covers the segments that fed the bootstrap
        // checkpoint and whole segments applied in earlier rounds.)
        if let Some(next) = manifest.segments.get(i + 1) {
            if next.first_lsn <= applied {
                offsets.insert(seg.name.clone(), seg.len as usize);
                continue;
            }
        }
        let from = *offsets.get(&seg.name).unwrap_or(&SEG_HEADER_LEN);
        if (from as u64) >= seg.len {
            continue;
        }
        // A removed-segment race (manifest older than the blob set)
        // surfaces as None: skip, the next manifest resolves it.
        let Some(buf) = shared.transport.fetch_segment(&seg.name, from as u64)? else {
            continue;
        };
        let mut at = 0usize;
        loop {
            match decode_record(&buf, at) {
                Decoded::End => break,
                // A torn frame is simply bytes the shipper has not
                // delivered yet; resume here next round.
                Decoded::Torn(_) => break,
                Decoded::Record { rec, next } => {
                    engine.apply_replicated(&rec)?;
                    at = next;
                }
            }
        }
        if at > 0 {
            offsets.insert(seg.name.clone(), from + at);
        }
    }
    // Forget offsets for segments the manifest no longer names.
    let live: std::collections::HashSet<&str> =
        manifest.segments.iter().map(|s| s.name.as_str()).collect();
    offsets.retain(|name, _| live.contains(name.as_str()));
    Ok(())
}
