//! The shipping seam: a [`SegmentTransport`] moves three kinds of blob
//! from a primary to its followers — the latest checkpoint, raw WAL
//! segment bytes, and a [`Manifest`] tying them together.
//!
//! Transports are deliberately dumb byte stores. All replication
//! intelligence (what to ship, what to fetch, when to re-bootstrap)
//! lives in [`Shipper`](crate::Shipper) and
//! [`Follower`](crate::Follower); a transport only has to deliver the
//! manifest *after* the blobs it names (both implementations here
//! publish the manifest last, and a networked transport would do the
//! same). Segment fetches are offset-based so a tailing follower pulls
//! only bytes it has not decoded yet.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};
use toposem_wal::CheckpointMeta;

use crate::ReplError;

/// Errors from a segment transport.
#[derive(Debug)]
pub enum TransportError {
    /// Underlying I/O failure (or a simulated one, for tests).
    Io(String),
    /// A manifest failed to encode or decode.
    Encode(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport io error: {e}"),
            TransportError::Encode(e) => write!(f, "transport encoding error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

impl From<serde_json::Error> for TransportError {
    fn from(e: serde_json::Error) -> Self {
        TransportError::Encode(e.to_string())
    }
}

/// One shipped segment as the manifest describes it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentEntry {
    /// Segment file name (`seg-<first_lsn>.wal`).
    pub name: String,
    /// LSN of the first record the segment may contain.
    pub first_lsn: u64,
    /// Bytes of the segment shipped so far (header included). The live
    /// segment keeps growing, so this is a lower bound on the next
    /// fetch.
    pub len: u64,
}

/// The checkpoint-segment manifest: the one blob a follower polls.
///
/// It names the current checkpoint and every shipped segment with its
/// first LSN, which lets a follower (a) skip whole segments already
/// below its applied LSN, (b) fetch the rest from its per-segment
/// decode offset only, and (c) detect the "primary checkpointed past
/// me" gap — the oldest listed segment starting *above* its applied
/// LSN — that forces a re-bootstrap.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// `next_lsn` of the published checkpoint; replay starts here after
    /// a bootstrap.
    pub checkpoint_next_lsn: u64,
    /// The primary's `next_lsn` when the manifest was published — the
    /// high-water mark followers report replication lag against.
    pub shipped_next_lsn: u64,
    /// Shipped segments in log order.
    pub segments: Vec<SegmentEntry>,
}

/// A byte store a primary publishes into and followers fetch from.
///
/// `fetch_*` methods return `Ok(None)` when the blob does not exist
/// (yet, or any more) — followers treat that as "try again later", so a
/// transport must reserve errors for real faults.
pub trait SegmentTransport: Send + Sync {
    /// Replace the published checkpoint (encoded with
    /// [`encode_checkpoint`]).
    fn publish_checkpoint(&self, bytes: &[u8]) -> Result<(), TransportError>;
    /// Fetch the published checkpoint, if any.
    fn fetch_checkpoint(&self) -> Result<Option<Vec<u8>>, TransportError>;
    /// Publish (or re-publish, when it has grown) a segment's full
    /// bytes.
    fn publish_segment(&self, name: &str, bytes: &[u8]) -> Result<(), TransportError>;
    /// Fetch a segment's bytes from byte offset `from`. `Ok(Some)` with
    /// an empty vector means the segment exists but has nothing past
    /// `from` yet.
    fn fetch_segment(&self, name: &str, from: u64) -> Result<Option<Vec<u8>>, TransportError>;
    /// Drop a segment the manifest no longer names.
    fn remove_segment(&self, name: &str) -> Result<(), TransportError>;
    /// Replace the manifest. Publishers must call this *after* the
    /// blobs it names are visible.
    fn publish_manifest(&self, m: &Manifest) -> Result<(), TransportError>;
    /// Fetch the current manifest, if any.
    fn fetch_manifest(&self) -> Result<Option<Manifest>, TransportError>;
}

/// Encode a checkpoint for shipping: the JSON meta line, a newline,
/// then the opaque snapshot payload — the same layout the on-disk
/// checkpoint file uses.
pub fn encode_checkpoint(meta: &CheckpointMeta, payload: &[u8]) -> Result<Vec<u8>, ReplError> {
    let mut bytes =
        serde_json::to_vec(meta).map_err(|e| ReplError::BadCheckpoint(e.to_string()))?;
    bytes.push(b'\n');
    bytes.extend_from_slice(payload);
    Ok(bytes)
}

/// Decode a shipped checkpoint back into its meta and snapshot payload.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<(CheckpointMeta, Vec<u8>), ReplError> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| ReplError::BadCheckpoint("missing meta line".into()))?;
    let meta: CheckpointMeta = serde_json::from_slice(&bytes[..nl])
        .map_err(|e| ReplError::BadCheckpoint(e.to_string()))?;
    Ok((meta, bytes[nl + 1..].to_vec()))
}

#[derive(Default)]
struct InProcessState {
    checkpoint: Option<Vec<u8>>,
    manifest: Option<Manifest>,
    segments: HashMap<String, Vec<u8>>,
}

/// An in-memory transport: primary and followers share one store
/// through cheap clones. Used by the replication tests and by embedded
/// read replicas inside a single process.
///
/// [`set_offline`](InProcessTransport::set_offline) simulates a network
/// partition — every call fails until the link is restored — which is
/// how the tests exercise mid-stream disconnect and catch-up.
#[derive(Clone, Default)]
pub struct InProcessTransport {
    state: Arc<Mutex<InProcessState>>,
    offline: Arc<AtomicBool>,
}

impl InProcessTransport {
    /// A fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cut (`true`) or restore (`false`) the link; while cut, every
    /// transport call returns an I/O error.
    pub fn set_offline(&self, offline: bool) {
        self.offline.store(offline, Ordering::SeqCst);
    }

    fn check_link(&self) -> Result<(), TransportError> {
        if self.offline.load(Ordering::SeqCst) {
            Err(TransportError::Io("simulated link down".into()))
        } else {
            Ok(())
        }
    }
}

impl SegmentTransport for InProcessTransport {
    fn publish_checkpoint(&self, bytes: &[u8]) -> Result<(), TransportError> {
        self.check_link()?;
        self.state.lock().unwrap().checkpoint = Some(bytes.to_vec());
        Ok(())
    }

    fn fetch_checkpoint(&self) -> Result<Option<Vec<u8>>, TransportError> {
        self.check_link()?;
        Ok(self.state.lock().unwrap().checkpoint.clone())
    }

    fn publish_segment(&self, name: &str, bytes: &[u8]) -> Result<(), TransportError> {
        self.check_link()?;
        self.state
            .lock()
            .unwrap()
            .segments
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn fetch_segment(&self, name: &str, from: u64) -> Result<Option<Vec<u8>>, TransportError> {
        self.check_link()?;
        Ok(self.state.lock().unwrap().segments.get(name).map(|bytes| {
            bytes
                .get(from as usize..)
                .map(|tail| tail.to_vec())
                .unwrap_or_default()
        }))
    }

    fn remove_segment(&self, name: &str) -> Result<(), TransportError> {
        self.check_link()?;
        self.state.lock().unwrap().segments.remove(name);
        Ok(())
    }

    fn publish_manifest(&self, m: &Manifest) -> Result<(), TransportError> {
        self.check_link()?;
        self.state.lock().unwrap().manifest = Some(m.clone());
        Ok(())
    }

    fn fetch_manifest(&self) -> Result<Option<Manifest>, TransportError> {
        self.check_link()?;
        Ok(self.state.lock().unwrap().manifest.clone())
    }
}

const DIR_CKPT: &str = "checkpoint.repl";
const DIR_MANIFEST: &str = "manifest.json";

/// A spool-directory transport: blobs are plain files under one root,
/// suitable for followers on a shared filesystem. Checkpoint and
/// manifest are replaced atomically (write-temp then rename) so a
/// follower never reads a half-written one; segments are whole-file
/// rewrites, which is safe because followers only trust bytes the
/// manifest already covers and the CRC framing rejects any torn tail.
#[derive(Clone, Debug)]
pub struct DirTransport {
    root: PathBuf,
}

impl DirTransport {
    /// Open (creating if needed) a spool rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, TransportError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DirTransport { root })
    }

    /// The spool directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), TransportError> {
        let tmp = self.root.join(format!("{name}.tmp"));
        let dst = self.root.join(name);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &dst)?;
        Ok(())
    }

    fn read_optional(&self, name: &str) -> Result<Option<Vec<u8>>, TransportError> {
        match fs::read(self.root.join(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

impl SegmentTransport for DirTransport {
    fn publish_checkpoint(&self, bytes: &[u8]) -> Result<(), TransportError> {
        self.write_atomic(DIR_CKPT, bytes)
    }

    fn fetch_checkpoint(&self) -> Result<Option<Vec<u8>>, TransportError> {
        self.read_optional(DIR_CKPT)
    }

    fn publish_segment(&self, name: &str, bytes: &[u8]) -> Result<(), TransportError> {
        self.write_atomic(name, bytes)
    }

    fn fetch_segment(&self, name: &str, from: u64) -> Result<Option<Vec<u8>>, TransportError> {
        Ok(self.read_optional(name)?.map(|bytes| {
            bytes
                .get(from as usize..)
                .map(|tail| tail.to_vec())
                .unwrap_or_default()
        }))
    }

    fn remove_segment(&self, name: &str) -> Result<(), TransportError> {
        match fs::remove_file(self.root.join(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn publish_manifest(&self, m: &Manifest) -> Result<(), TransportError> {
        self.write_atomic(DIR_MANIFEST, &serde_json::to_vec(m)?)
    }

    fn fetch_manifest(&self) -> Result<Option<Manifest>, TransportError> {
        match self.read_optional(DIR_MANIFEST)? {
            Some(bytes) => Ok(Some(serde_json::from_slice(&bytes)?)),
            None => Ok(None),
        }
    }
}
