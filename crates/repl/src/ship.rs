//! The primary side of replication: a background thread that watches
//! the engine's log directory and publishes checkpoint, segments, and
//! manifest through a [`SegmentTransport`].
//!
//! Each round the shipper:
//!
//! 1. syncs the engine's log so buffered commit records reach the
//!    segment files (bounding follower staleness by the poll interval
//!    even under `FlushPolicy::NoSync`),
//! 2. re-publishes the checkpoint if its LSN changed,
//! 3. re-publishes every segment whose on-disk bytes changed since the
//!    last round,
//! 4. publishes a fresh [`Manifest`] naming exactly the live segments,
//!    and finally
//! 5. removes transport segments the manifest no longer names.
//!
//! Ordering matters: blobs before manifest, removals after — a follower
//! acting on any manifest it observes finds every blob that manifest
//! names. Transient failures (a segment deleted by a concurrent
//! checkpoint mid-round, a transport hiccup) abort the round; the next
//! poll starts over from the directory's current truth.

use std::collections::HashMap;
use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use toposem_storage::Engine;
use toposem_wal::{crc32::crc32, list_segments, read_checkpoint, segment_first_lsn};

use crate::transport::{Manifest, SegmentEntry, SegmentTransport};
use crate::ReplError;

/// Shipper tuning.
#[derive(Clone, Copy, Debug)]
pub struct ShipperConfig {
    /// How often to scan the log directory for new bytes.
    pub poll_interval: Duration,
}

impl Default for ShipperConfig {
    fn default() -> Self {
        ShipperConfig {
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// What the shipper remembers about a segment between rounds: shipped
/// length plus a checksum of the shipped tail, so a same-length rewrite
/// after a primary crash-restart (torn tail truncated, new records
/// appended) still triggers a re-publish.
#[derive(Clone, Copy, PartialEq, Eq)]
struct ShippedState {
    len: u64,
    tail_crc: u32,
}

fn shipped_state(bytes: &[u8]) -> ShippedState {
    let tail_start = bytes.len().saturating_sub(64);
    ShippedState {
        len: bytes.len() as u64,
        tail_crc: crc32(&bytes[tail_start..]),
    }
}

/// A handle to the primary-side shipping thread. Dropping it stops the
/// thread after its current round.
pub struct Shipper {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Shipper {
    /// Start shipping `engine`'s log through `transport`. Fails with
    /// [`ReplError::NotDurable`] if the engine has no write-ahead log.
    ///
    /// The first round runs synchronously before this returns, so on
    /// success the transport already holds a checkpoint and manifest a
    /// follower can bootstrap from.
    pub fn start(
        engine: Arc<Engine>,
        transport: Arc<dyn SegmentTransport>,
        cfg: ShipperConfig,
    ) -> Result<Shipper, ReplError> {
        let dir = engine.wal_dir().ok_or(ReplError::NotDurable)?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut state = ShipperState::default();
        ship_round(&engine, &dir, transport.as_ref(), &mut state)?;
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("toposem-shipper".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::park_timeout(cfg.poll_interval);
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        // Transient faults (offline transport, racing
                        // checkpoint) abort the round; the next poll
                        // re-derives everything from the directory.
                        let _ = ship_round(&engine, &dir, transport.as_ref(), &mut state);
                    }
                })
                .map_err(|e| ReplError::Wal(e.to_string()))?
        };
        Ok(Shipper {
            stop,
            thread: Some(thread),
        })
    }

    /// Ask the thread to stop and wait for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

impl Drop for Shipper {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[derive(Default)]
struct ShipperState {
    ckpt_next_lsn: Option<u64>,
    shipped: HashMap<String, ShippedState>,
}

fn ship_round(
    engine: &Engine,
    dir: &Path,
    transport: &dyn SegmentTransport,
    state: &mut ShipperState,
) -> Result<(), ReplError> {
    let repl = Arc::clone(&engine.metrics().repl);

    // Push buffered commit records out to the segment files so they are
    // shippable; without this a NoSync engine's tail would sit in the
    // writer's buffer forever.
    engine.sync()?;

    let (meta, payload) = read_checkpoint(dir)?;
    if state.ckpt_next_lsn != Some(meta.next_lsn) {
        let bytes = crate::transport::encode_checkpoint(&meta, &payload)?;
        transport.publish_checkpoint(&bytes)?;
        repl.checkpoints_shipped.inc();
        state.ckpt_next_lsn = Some(meta.next_lsn);
    }

    let mut entries: Vec<SegmentEntry> = Vec::new();
    for path in list_segments(dir)? {
        let Some(name) = segment_name_of(&path) else {
            continue;
        };
        let Some(first_lsn) = segment_first_lsn(&name) else {
            continue;
        };
        // May race with a concurrent checkpoint deleting old segments;
        // the resulting error aborts this round and the next one sees
        // the post-checkpoint directory.
        let bytes = fs::read(&path).map_err(|e| ReplError::Wal(e.to_string()))?;
        let now = shipped_state(&bytes);
        let prev = state.shipped.get(&name).copied();
        if prev != Some(now) {
            transport.publish_segment(&name, &bytes)?;
            repl.segments_shipped.inc();
            let prev_len = prev.map(|p| p.len).unwrap_or(0);
            repl.bytes_shipped.add(now.len.saturating_sub(prev_len));
            state.shipped.insert(name.clone(), now);
        }
        entries.push(SegmentEntry {
            name,
            first_lsn,
            len: now.len,
        });
    }

    let shipped_next_lsn = engine.wal_next_lsn().unwrap_or(meta.next_lsn);
    transport.publish_manifest(&Manifest {
        checkpoint_next_lsn: meta.next_lsn,
        shipped_next_lsn,
        segments: entries.clone(),
    })?;
    repl.shipped_lsn.set(shipped_next_lsn);

    // Only after the manifest stopped naming them is it safe to drop
    // segments from the transport.
    let live: std::collections::HashSet<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    let stale: Vec<String> = state
        .shipped
        .keys()
        .filter(|n| !live.contains(n.as_str()))
        .cloned()
        .collect();
    for name in stale {
        transport.remove_segment(&name)?;
        state.shipped.remove(&name);
    }
    Ok(())
}

fn segment_name_of(path: &Path) -> Option<String> {
    Some(path.file_name()?.to_str()?.to_string())
}
