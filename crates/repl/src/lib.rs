//! # toposem-repl
//!
//! Log-shipping replication for the toposem engine: a primary ships its
//! checkpoint and CRC-framed WAL segments through a pluggable
//! [`SegmentTransport`], and any number of followers bootstrap from the
//! checkpoint, replay the shipped segments through the same logic as
//! crash recovery, and then tail the live segment — each exposing a
//! **read-only** [`Engine`] whose snapshots answer queries
//! bit-identically to the primary as of the follower's applied LSN.
//!
//! The design leans entirely on two properties the WAL already has:
//!
//! 1. **Segments are self-delimiting.** Every record is framed
//!    `[len][crc][payload]`, so raw segment *bytes* can be shipped at
//!    any moment — a partially written frame decodes as `Torn`, and the
//!    follower simply waits at that offset for more bytes. No seal
//!    protocol, no record-level acks.
//! 2. **Replay is idempotent below a watermark.** A follower tracks one
//!    applied LSN; records below it are skipped, so after a disconnect
//!    (or a transport that re-delivers a whole segment) the follower
//!    re-decodes from anywhere without double-applying.
//!
//! Catch-up cost is bounded by a **checkpoint-segment manifest**
//! ([`Manifest`]): the shipper publishes the checkpoint LSN plus every
//! segment's name, first LSN, and shipped length, so a follower fetches
//! only segments that can still contain records at or above its applied
//! LSN — and detects, from the manifest alone, when the primary has
//! checkpointed past it and a fresh bootstrap is cheaper than replay.
//!
//! Two transports ship today: [`InProcessTransport`] (a shared in-memory
//! store, for tests and embedded replicas) and [`DirTransport`] (a
//! spool directory, for shared-filesystem standbys). The trait is the
//! seam where TCP or S3-style blob transports plug in later.
//!
//! [`Engine`]: toposem_storage::Engine

pub mod follow;
pub mod ship;
pub mod transport;

pub use follow::{Follower, FollowerConfig};
pub use ship::{Shipper, ShipperConfig};
pub use transport::{
    decode_checkpoint, encode_checkpoint, DirTransport, InProcessTransport, Manifest, SegmentEntry,
    SegmentTransport, TransportError,
};

use toposem_storage::EngineError;
use toposem_wal::WalError;

/// Errors surfaced by replication operations.
#[derive(Debug)]
pub enum ReplError {
    /// The segment transport failed.
    Transport(TransportError),
    /// Reading the primary's log directory failed.
    Wal(String),
    /// Applying shipped records to the replica engine failed.
    Engine(EngineError),
    /// A shipper was started on an engine with no write-ahead log.
    NotDurable,
    /// The transport holds no checkpoint yet — nothing to bootstrap a
    /// follower from.
    NoCheckpoint,
    /// A shipped checkpoint's bytes were malformed.
    BadCheckpoint(String),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Transport(e) => write!(f, "transport failure: {e}"),
            ReplError::Wal(e) => write!(f, "log access failure: {e}"),
            ReplError::Engine(e) => write!(f, "replica apply failure: {e}"),
            ReplError::NotDurable => write!(f, "engine has no write-ahead log to ship"),
            ReplError::NoCheckpoint => write!(f, "transport holds no checkpoint yet"),
            ReplError::BadCheckpoint(why) => write!(f, "bad shipped checkpoint: {why}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<TransportError> for ReplError {
    fn from(e: TransportError) -> Self {
        ReplError::Transport(e)
    }
}

impl From<WalError> for ReplError {
    fn from(e: WalError) -> Self {
        ReplError::Wal(e.to_string())
    }
}

impl From<EngineError> for ReplError {
    fn from(e: EngineError) -> Self {
        ReplError::Engine(e)
    }
}
