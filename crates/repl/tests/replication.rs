//! Replication integration tests.
//!
//! The contract under test: a follower fed *only* the shipped
//! checkpoint and raw segment bytes converges to a database
//! bit-identical to the primary's at the same applied LSN — across
//! committed, aborted, and DDL-bearing workloads, mid-stream
//! disconnects, primary checkpoints that truncate the log under a
//! stalled follower, primary crash-restarts, and follower restarts.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use toposem_core::{employee_schema, GeneralisationTopology, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Instance, Value};
use toposem_fd::Fd;
use toposem_repl::{
    DirTransport, Follower, FollowerConfig, InProcessTransport, SegmentTransport, Shipper,
    ShipperConfig,
};
use toposem_storage::{snapshot, Engine, EngineError, IndexKind};
use toposem_wal::{FlushPolicy, Wal, WalConfig};

const NAMES: [&str; 5] = ["ann", "bob", "carol", "dave", "eve"];
const DEPS: [&str; 3] = ["sales", "research", "admin"];
const TICK: Duration = Duration::from_millis(2);
const PATIENCE: Duration = Duration::from_secs(20);

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "toposem-repl-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fresh_db() -> Database {
    Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    )
}

fn durable_engine(dir: &Path, flush: FlushPolicy) -> Arc<Engine> {
    let cfg = WalConfig {
        flush,
        segment_bytes: 2048, // small: shipping must cross segment rotations
    };
    Arc::new(Engine::durable(fresh_db(), Wal::create(dir, cfg).unwrap()).unwrap())
}

fn fast_ship() -> ShipperConfig {
    ShipperConfig {
        poll_interval: TICK,
    }
}

fn fast_follow() -> FollowerConfig {
    FollowerConfig {
        poll_interval: TICK,
        ..FollowerConfig::default()
    }
}

/// Wait until the follower's applied LSN reaches the primary's current
/// `next_lsn`, then deep-compare: canonical snapshot bytes and every
/// semantic extension must agree bit-for-bit.
fn assert_converges(primary: &Engine, follower: &Follower, context: &str) {
    let target = primary.wal_next_lsn().unwrap();
    assert!(
        follower.wait_for_lsn(target, PATIENCE),
        "follower stuck at lsn {} < {target}: {context}",
        follower.applied_lsn(),
    );
    let replica = follower.engine();
    assert_eq!(replica.applied_lsn(), target, "over-applied? {context}");
    let a = primary.with_db(|db| snapshot::to_vec(db).unwrap());
    let b = replica.with_db(|db| snapshot::to_vec(db).unwrap());
    assert_eq!(a, b, "replica state diverged: {context}");
    primary.with_db(|pdb| {
        replica.with_db(|rdb| {
            for e in pdb.schema().type_ids() {
                assert_eq!(
                    pdb.extension(e),
                    rdb.extension(e),
                    "extension of {} diverged: {context}",
                    pdb.schema().type_name(e)
                );
            }
        })
    });
}

fn insert_employee(eng: &Engine, name: &str, age: i64, dep: &str) {
    let employee = eng.with_db(|db| db.schema().type_id("employee").unwrap());
    eng.insert(
        employee,
        &[
            ("name", Value::str(name)),
            ("age", Value::Int(age)),
            ("depname", Value::str(dep)),
        ],
    )
    .unwrap();
}

/// The acceptance scenario: checkpoint bootstrap, committed txns with
/// propagation and cascade, an aborted txn, DDL — and a read-only
/// replica answering identically at the primary's LSN.
#[test]
fn follower_converges_and_is_read_only() {
    let dir = temp_dir("basic");
    let primary = durable_engine(&dir, FlushPolicy::NoSync);
    let (employee, manager, depname) = primary.with_db(|db| {
        let s = db.schema();
        (
            s.type_id("employee").unwrap(),
            s.type_id("manager").unwrap(),
            s.attr_id("depname").unwrap(),
        )
    });

    // Pre-ship state, partly checkpointed: the follower must see it via
    // bootstrap, not replay.
    primary.create_index(employee, depname).unwrap();
    insert_employee(&primary, "ann", 40, "sales");
    primary.checkpoint().unwrap();
    insert_employee(&primary, "bob", 30, "research");

    let transport = Arc::new(InProcessTransport::new());
    let _shipper = Shipper::start(
        Arc::clone(&primary),
        transport.clone() as Arc<dyn SegmentTransport>,
        fast_ship(),
    )
    .unwrap();
    let follower = Follower::start_when_ready(
        transport.clone() as Arc<dyn SegmentTransport>,
        fast_follow(),
        PATIENCE,
    )
    .unwrap();

    // Live traffic: a committed multi-op txn (manager insert propagates
    // eagerly), an aborted txn, a cascading delete.
    primary.begin().unwrap();
    primary
        .insert(
            manager,
            &[
                ("name", Value::str("carol")),
                ("age", Value::Int(35)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(100)),
            ],
        )
        .unwrap();
    primary.commit().unwrap();
    primary.begin().unwrap();
    insert_employee(&primary, "ghost", 99, "admin");
    primary.rollback().unwrap();
    let bob = primary.with_db(|db| {
        Instance::new(
            db.schema(),
            db.catalog(),
            employee,
            &[
                ("name", Value::str("bob")),
                ("age", Value::Int(30)),
                ("depname", Value::str("research")),
            ],
        )
        .unwrap()
    });
    primary.delete(employee, &bob).unwrap();

    assert_converges(&primary, &follower, "basic live traffic");

    // The replica refuses every mutation.
    let replica = follower.engine();
    assert!(replica.is_read_only());
    assert_eq!(replica.begin(), Err(EngineError::ReadOnly));
    assert_eq!(
        replica
            .insert(employee, &[("name", Value::str("x"))])
            .unwrap_err(),
        EngineError::ReadOnly
    );
    assert_eq!(replica.checkpoint(), Err(EngineError::ReadOnly));
    assert!(matches!(
        replica.create_index(employee, depname),
        Err(EngineError::ReadOnly)
    ));

    // And its indexes were maintained through live apply: the replica
    // answers the indexed lookup identically.
    assert_eq!(
        replica
            .lookup(employee, depname, &Value::str("sales"))
            .len(),
        primary
            .lookup(employee, depname, &Value::str("sales"))
            .len(),
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// The unified query API against a follower: `AtLeast(primary lsn)`
/// waits for replication and then answers exactly like the primary; an
/// unreachable LSN floor fails with `Stale`; writes are refused.
#[test]
fn follower_answers_the_unified_query_api() {
    use toposem_planner::{Consistency, QueryRequest, QueryTarget};
    use toposem_storage::{Query, QueryError};

    let dir = temp_dir("qt");
    let primary = durable_engine(&dir, FlushPolicy::NoSync);
    let (employee, depname, age) = primary.with_db(|db| {
        let s = db.schema();
        (
            s.type_id("employee").unwrap(),
            s.attr_id("depname").unwrap(),
            s.attr_id("age").unwrap(),
        )
    });
    let transport = Arc::new(InProcessTransport::new());
    let _shipper = Shipper::start(
        Arc::clone(&primary),
        transport.clone() as Arc<dyn SegmentTransport>,
        fast_ship(),
    )
    .unwrap();
    let follower = Follower::start_when_ready(
        transport as Arc<dyn SegmentTransport>,
        FollowerConfig {
            poll_interval: TICK,
            // Generous for the happy path (the shipper ticks every 2ms),
            // short enough that the Stale case below fails fast.
            max_lsn_wait: Duration::from_millis(300),
        },
        PATIENCE,
    )
    .unwrap();
    for (n, a, d) in [
        ("ann", 40, "sales"),
        ("bob", 30, "sales"),
        ("eve", 20, "admin"),
    ] {
        insert_employee(&primary, n, a, d);
    }

    // Read-your-writes through the LSN floor: no explicit wait needed.
    let lsn = primary.wal_next_lsn().unwrap();
    let q = Query::scan(employee).select(depname, Value::str("sales"));
    let on_follower = follower
        .run(&QueryRequest::new(q.clone()).at_least(lsn))
        .unwrap();
    let on_primary = primary.run(&QueryRequest::new(q.clone())).unwrap();
    assert_eq!(on_follower.ty, on_primary.ty);
    assert_eq!(on_follower.rows, on_primary.rows);

    // Ordered + profiled switches flow through the same pipeline.
    let o = Query::scan(employee).order_by_asc(age);
    let seq = follower
        .run(&QueryRequest::new(o).ordered().profiled().at_least(lsn))
        .unwrap();
    let ages: Vec<_> = seq
        .rows
        .iter()
        .map(|t| t.get(age).cloned().unwrap())
        .collect();
    assert_eq!(ages, vec![Value::Int(20), Value::Int(30), Value::Int(40)]);
    assert!(seq.profile.is_some());

    // An unreachable floor fails with Stale once the bound elapses.
    let strict = Follower::start_when_ready(
        Arc::new(InProcessTransport::new()) as Arc<dyn SegmentTransport>,
        fast_follow(),
        Duration::from_millis(10),
    );
    assert!(strict.is_err(), "empty transport must not bootstrap");
    let err = follower
        .run(
            &QueryRequest::new(Query::scan(employee))
                .with_consistency(Consistency::AtLeast(lsn + 1_000_000)),
        )
        .unwrap_err();
    assert!(matches!(err, QueryError::Stale { .. }), "got {err:?}");
    fs::remove_dir_all(&dir).unwrap();
}

/// A spool-directory transport carries the same contract as the
/// in-process one.
#[test]
fn dir_transport_converges() {
    let dir = temp_dir("dirt-src");
    let spool = temp_dir("dirt-spool");
    let primary = durable_engine(&dir, FlushPolicy::NoSync);
    insert_employee(&primary, "ann", 40, "sales");

    let transport = Arc::new(DirTransport::new(&spool).unwrap());
    let _shipper = Shipper::start(
        Arc::clone(&primary),
        transport.clone() as Arc<dyn SegmentTransport>,
        fast_ship(),
    )
    .unwrap();
    let follower = Follower::start_when_ready(
        transport as Arc<dyn SegmentTransport>,
        fast_follow(),
        PATIENCE,
    )
    .unwrap();
    insert_employee(&primary, "bob", 30, "research");
    primary.checkpoint().unwrap();
    insert_employee(&primary, "carol", 25, "admin");
    assert_converges(&primary, &follower, "dir transport");
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&spool).unwrap();
}

/// Mid-stream disconnect: the link drops while the primary keeps
/// committing; the follower stalls (never regresses, never applies a
/// partial txn) and catches up cleanly when the link returns.
#[test]
fn disconnect_and_catch_up() {
    let dir = temp_dir("disc");
    let primary = durable_engine(&dir, FlushPolicy::NoSync);
    let transport = Arc::new(InProcessTransport::new());
    let _shipper = Shipper::start(
        Arc::clone(&primary),
        transport.clone() as Arc<dyn SegmentTransport>,
        fast_ship(),
    )
    .unwrap();
    let follower = Follower::start_when_ready(
        transport.clone() as Arc<dyn SegmentTransport>,
        fast_follow(),
        PATIENCE,
    )
    .unwrap();
    insert_employee(&primary, "ann", 40, "sales");
    assert_converges(&primary, &follower, "before disconnect");

    transport.set_offline(true);
    let stalled_at = follower.applied_lsn();
    // Enough traffic to cross several segment rotations while dark.
    for i in 0..40 {
        insert_employee(&primary, NAMES[i % NAMES.len()], i as i64, DEPS[i % 3]);
    }
    std::thread::sleep(TICK * 10);
    assert_eq!(
        follower.applied_lsn(),
        stalled_at,
        "follower must hold position while the link is down"
    );

    transport.set_offline(false);
    assert_converges(&primary, &follower, "after reconnect");
    fs::remove_dir_all(&dir).unwrap();
}

/// The primary checkpoints (truncating shipped segments) while the
/// follower is dark: on reconnect the follower detects the gap from the
/// manifest, re-bootstraps from the newer checkpoint, and converges.
#[test]
fn checkpoint_under_stalled_follower_forces_rebootstrap() {
    let dir = temp_dir("reboot");
    let primary = durable_engine(&dir, FlushPolicy::NoSync);
    let transport = Arc::new(InProcessTransport::new());
    let _shipper = Shipper::start(
        Arc::clone(&primary),
        transport.clone() as Arc<dyn SegmentTransport>,
        fast_ship(),
    )
    .unwrap();
    let follower = Follower::start_when_ready(
        transport.clone() as Arc<dyn SegmentTransport>,
        fast_follow(),
        PATIENCE,
    )
    .unwrap();
    insert_employee(&primary, "ann", 40, "sales");
    assert_converges(&primary, &follower, "before the dark checkpoint");

    transport.set_offline(true);
    for i in 0..20 {
        insert_employee(&primary, NAMES[i % NAMES.len()], i as i64, DEPS[i % 3]);
    }
    primary.checkpoint().unwrap(); // old segments are gone now
    insert_employee(&primary, "eve", 1, "admin");
    transport.set_offline(false);

    assert_converges(&primary, &follower, "after rebootstrap");
    assert!(
        follower.engine().metrics().repl.rebootstraps.get() >= 1,
        "the gap must have been bridged by a re-bootstrap"
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// Kill the primary mid-transaction (torn tail on disk), recover it,
/// resume shipping over the same transport: the follower — which may
/// have decoded bytes of the now-truncated suffix's *valid prefix* but
/// never applied the uncommitted txn — converges on the recovered
/// primary's state. Then restart the follower from scratch on the same
/// transport and converge again.
#[test]
fn kill_primary_then_restart_both_sides() {
    let dir = temp_dir("kill");
    let transport = Arc::new(InProcessTransport::new());
    {
        let primary = durable_engine(&dir, FlushPolicy::PerCommit);
        let _shipper = Shipper::start(
            Arc::clone(&primary),
            transport.clone() as Arc<dyn SegmentTransport>,
            fast_ship(),
        )
        .unwrap();
        insert_employee(&primary, "ann", 40, "sales");
        insert_employee(&primary, "bob", 30, "research");
        // The crash victim: records on disk (and possibly shipped), no
        // Commit ever written.
        primary.begin().unwrap();
        insert_employee(&primary, "ghost", 99, "admin");
        primary.sync().unwrap();
        std::thread::sleep(TICK * 5); // let the shipper ship the torn tail
                                      // shipper drops first (stops shipping), then the engine "crashes"
    }

    let follower = Follower::start_when_ready(
        transport.clone() as Arc<dyn SegmentTransport>,
        fast_follow(),
        PATIENCE,
    )
    .unwrap();

    // Recover the primary: the uncommitted suffix is truncated; new
    // traffic overwrites those bytes and the re-shipped segment must
    // splice cleanly at the follower's decode offset.
    let cfg = WalConfig {
        flush: FlushPolicy::PerCommit,
        segment_bytes: 2048,
    };
    let primary = Arc::new(Engine::open(&dir, cfg).unwrap());
    let _shipper = Shipper::start(
        Arc::clone(&primary),
        transport.clone() as Arc<dyn SegmentTransport>,
        fast_ship(),
    )
    .unwrap();
    insert_employee(&primary, "carol", 25, "admin");
    assert_converges(&primary, &follower, "after primary kill-and-recover");
    let employee = primary.with_db(|db| db.schema().type_id("employee").unwrap());
    let name = primary.with_db(|db| db.schema().attr_id("name").unwrap());
    follower.engine().with_db(|db| {
        assert!(
            db.stored(employee)
                .iter()
                .all(|t| t.get(name) != Some(&Value::str("ghost"))),
            "uncommitted txn must not leak to the replica"
        );
    });

    // Follower restart: a brand-new follower bootstraps from the same
    // transport and reaches the same state.
    drop(follower);
    let follower2 = Follower::start_when_ready(
        transport as Arc<dyn SegmentTransport>,
        fast_follow(),
        PATIENCE,
    )
    .unwrap();
    insert_employee(&primary, "dave", 45, "sales");
    assert_converges(&primary, &follower2, "restarted follower");
    fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Differential oracle: primary ≡ follower for random workloads.
// ---------------------------------------------------------------------

/// One randomly generated workload element, including DDL.
#[derive(Clone, Debug)]
enum Op {
    Employee(usize, i64, usize),
    Manager(usize, i64, usize, i64),
    DeletePerson(usize, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..NAMES.len(), 0i64..5, 0..DEPS.len()).prop_map(|(n, a, d)| Op::Employee(n, a, d)),
        (0..NAMES.len(), 0i64..5, 0..DEPS.len(), 0i64..4)
            .prop_map(|(n, a, d, b)| Op::Manager(n, a, d, b)),
        (0..NAMES.len(), 0i64..5).prop_map(|(n, a)| Op::DeletePerson(n, a)),
    ]
}

fn apply_op(eng: &Engine, op: &Op) {
    let s = eng.with_db(|db| db.schema().clone());
    match op {
        Op::Employee(n, a, d) => {
            eng.insert(
                s.type_id("employee").unwrap(),
                &[
                    ("name", Value::str(NAMES[*n])),
                    ("age", Value::Int(*a)),
                    ("depname", Value::str(DEPS[*d])),
                ],
            )
            .unwrap();
        }
        Op::Manager(n, a, d, b) => {
            eng.insert(
                s.type_id("manager").unwrap(),
                &[
                    ("name", Value::str(NAMES[*n])),
                    ("age", Value::Int(*a)),
                    ("depname", Value::str(DEPS[*d])),
                    ("budget", Value::Int(*b)),
                ],
            )
            .unwrap();
        }
        Op::DeletePerson(n, a) => {
            let person = s.type_id("person").unwrap();
            let t = eng.with_db(|db| {
                Instance::new(
                    db.schema(),
                    db.catalog(),
                    person,
                    &[("name", Value::str(NAMES[*n])), ("age", Value::Int(*a))],
                )
                .unwrap()
            });
            eng.delete(person, &t).unwrap();
        }
    }
}

/// Toggle-style DDL so a random sequence can never double-create.
fn toggle_index(eng: &Engine) {
    let (employee, depname) = eng.with_db(|db| {
        let s = db.schema();
        (
            s.type_id("employee").unwrap(),
            s.attr_id("depname").unwrap(),
        )
    });
    if !eng
        .drop_index(employee, IndexKind::Hash, &[depname])
        .unwrap()
    {
        eng.create_index(employee, depname).unwrap();
    }
}

fn declare_fd_once(eng: &Engine) {
    let fd = eng.with_db(|db| {
        let s = db.schema();
        let gen = GeneralisationTopology::of_schema(s);
        Fd::new(
            &gen,
            s.type_id("employee").unwrap(),
            s.type_id("department").unwrap(),
            s.type_id("worksfor").unwrap(),
        )
        .unwrap()
    });
    // The random workload may already violate it; both sides must agree
    // on the outcome either way, and only a successful declaration logs.
    let _ = eng.declare_fd(fd);
}

proptest! {
    /// The replication oracle: for a random workload of transactions —
    /// committed, aborted, checkpointed, or DDL — a follower fed only
    /// checkpoints and shipped segments answers bit-identically to the
    /// primary at the primary's final LSN.
    #[test]
    fn follower_equals_primary_for_random_workloads(
        txns in prop::collection::vec(
            (prop::collection::vec(op_strategy(), 1..4), 0u8..6),
            1..12,
        ),
    ) {
        let dir = temp_dir("oracle");
        let primary = durable_engine(&dir, FlushPolicy::NoSync);
        let transport = Arc::new(InProcessTransport::new());
        let _shipper = Shipper::start(
            Arc::clone(&primary),
            transport.clone() as Arc<dyn SegmentTransport>,
            fast_ship(),
        ).unwrap();
        let follower = Follower::start_when_ready(
            transport.clone() as Arc<dyn SegmentTransport>,
            fast_follow(),
            PATIENCE,
        ).unwrap();

        for (ops, fate) in &txns {
            // fate: 0 = autocommit ops, 1 = explicit commit, 2 = abort,
            // 3 = commit then checkpoint, 4 = index DDL toggle,
            // 5 = FD declaration.
            match fate {
                0 => {
                    for op in ops {
                        apply_op(&primary, op);
                    }
                }
                2 => {
                    primary.begin().unwrap();
                    for op in ops {
                        apply_op(&primary, op);
                    }
                    primary.rollback().unwrap();
                }
                4 => toggle_index(&primary),
                5 => declare_fd_once(&primary),
                _ => {
                    primary.begin().unwrap();
                    for op in ops {
                        apply_op(&primary, op);
                    }
                    primary.commit().unwrap();
                    if *fate == 3 {
                        primary.checkpoint().unwrap();
                    }
                }
            }
        }
        let target = primary.wal_next_lsn().unwrap();
        prop_assert!(
            follower.wait_for_lsn(target, PATIENCE),
            "follower stuck at {} < {target} for {:?}",
            follower.applied_lsn(),
            txns,
        );
        let replica = follower.engine();
        let a = primary.with_db(|db| snapshot::to_vec(db).unwrap());
        let b = replica.with_db(|db| snapshot::to_vec(db).unwrap());
        prop_assert_eq!(a, b, "replica diverged for workload {:?}", txns);
        fs::remove_dir_all(&dir).unwrap();
    }
}
