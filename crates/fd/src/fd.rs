//! Functional dependencies over entity types (§5.1).
//!
//! The Integrity Axiom shifts dependencies from attributes to entity
//! types: an FD is a pair of entity types *in the context of* a third,
//! which must specialise both ("the context is necessary to disambiguate
//! dependencies [...] since entity types may be related in several ways").
//!
//! ```text
//! fd(e, f, h), with e, f ∈ G_h:
//!   ∀ t¹_h, t²_h ∈ R_h :  π^e_h(t¹) = π^e_h(t²) ⇒ π^f_h(t¹) = π^f_h(t²)
//! ```

use serde::{Deserialize, Serialize};
use toposem_core::{GeneralisationTopology, Schema, TypeId};

/// A functional dependency `fd(lhs, rhs, context)`: within the relation of
/// `context`, the `lhs` projection determines the `rhs` projection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Fd {
    /// The determining entity type `e`.
    pub lhs: TypeId,
    /// The determined entity type `f`.
    pub rhs: TypeId,
    /// The context `h` (a common specialisation of `lhs` and `rhs`).
    pub context: TypeId,
}

/// Errors raised validating an FD against an intension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FdError {
    /// `lhs ∉ G_context`.
    LhsOutsideContext { fd: Fd },
    /// `rhs ∉ G_context`.
    RhsOutsideContext { fd: Fd },
}

impl std::fmt::Display for FdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FdError::LhsOutsideContext { fd } => write!(
                f,
                "fd lhs {} is not a generalisation of context {}",
                fd.lhs, fd.context
            ),
            FdError::RhsOutsideContext { fd } => write!(
                f,
                "fd rhs {} is not a generalisation of context {}",
                fd.rhs, fd.context
            ),
        }
    }
}

impl std::error::Error for FdError {}

impl Fd {
    /// Builds and validates an FD: both sides must be generalisations of
    /// the context (the Integrity Axiom's "there exists an entity type
    /// which is a specialisation of all the entity types involved").
    pub fn new(
        gen: &GeneralisationTopology,
        lhs: TypeId,
        rhs: TypeId,
        context: TypeId,
    ) -> Result<Self, FdError> {
        let fd = Fd { lhs, rhs, context };
        if !gen.is_generalisation(lhs, context) {
            return Err(FdError::LhsOutsideContext { fd });
        }
        if !gen.is_generalisation(rhs, context) {
            return Err(FdError::RhsOutsideContext { fd });
        }
        Ok(fd)
    }

    /// Builds an FD without validation (for inference-internal use where
    /// membership in `G_context` is already established).
    pub fn unchecked(lhs: TypeId, rhs: TypeId, context: TypeId) -> Self {
        Fd { lhs, rhs, context }
    }

    /// Renders the FD with type names.
    pub fn display(&self, schema: &Schema) -> String {
        format!(
            "fd({}, {}, {})",
            schema.type_name(self.lhs),
            schema.type_name(self.rhs),
            schema.type_name(self.context)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::employee_schema;

    #[test]
    fn validation_requires_generalisations_of_context() {
        let s = employee_schema();
        let gen = GeneralisationTopology::of_schema(&s);
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        let worksfor = s.type_id("worksfor").unwrap();

        // person, department ∈ G_worksfor: valid in context worksfor.
        assert!(Fd::new(&gen, person, department, worksfor).is_ok());
        // department ∉ G_employee: invalid in context employee.
        let err = Fd::new(&gen, person, department, employee).unwrap_err();
        assert!(matches!(err, FdError::RhsOutsideContext { .. }));
        let err = Fd::new(&gen, department, person, employee).unwrap_err();
        assert!(matches!(err, FdError::LhsOutsideContext { .. }));
    }

    #[test]
    fn reflexive_context_is_allowed() {
        // e ∈ G_e, so fd(e, e, e) is well-formed.
        let s = employee_schema();
        let gen = GeneralisationTopology::of_schema(&s);
        let person = s.type_id("person").unwrap();
        assert!(Fd::new(&gen, person, person, person).is_ok());
    }

    #[test]
    fn display_uses_names() {
        let s = employee_schema();
        let gen = GeneralisationTopology::of_schema(&s);
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        let worksfor = s.type_id("worksfor").unwrap();
        let fd = Fd::new(&gen, employee, department, worksfor).unwrap();
        assert_eq!(fd.display(&s), "fd(employee, department, worksfor)");
    }
}
