//! Minimal covers of entity-type FD sets.
//!
//! A *minimal cover* of Σ is an equivalent FD set with no redundant
//! dependency: removing any member weakens the semantic closure. The
//! designer-facing use is the same as classically — present the smallest
//! set of constraints that says everything Σ says — but membership is
//! judged by the paper's type-level semantics (attribute projections in a
//! context).

use toposem_core::TypeId;

use crate::armstrong::ArmstrongEngine;

/// Removes semantically redundant FDs from `sigma` (same context),
/// returning a subset with the same semantic closure from which no
/// further member can be dropped. Deterministic: members are considered
/// for removal in reverse declaration order.
pub fn minimal_cover(
    engine: &ArmstrongEngine<'_>,
    sigma: &[(TypeId, TypeId)],
) -> Vec<(TypeId, TypeId)> {
    let mut keep: Vec<(TypeId, TypeId)> = sigma.to_vec();
    // Drop duplicates first.
    keep.dedup();
    let mut i = keep.len();
    while i > 0 {
        i -= 1;
        let candidate = keep[i];
        let mut trial = keep.clone();
        trial.remove(i);
        // Redundant iff the rest still implies it.
        if engine.implied_semantically(&trial, candidate.0, candidate.1) {
            keep = trial;
        }
    }
    keep
}

/// Are two FD sets semantically equivalent in the engine's context?
pub fn equivalent(
    engine: &ArmstrongEngine<'_>,
    a: &[(TypeId, TypeId)],
    b: &[(TypeId, TypeId)],
) -> bool {
    a.iter().all(|&(x, y)| engine.implied_semantically(b, x, y))
        && b.iter().all(|&(x, y)| engine.implied_semantically(a, x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, GeneralisationTopology, Schema};

    struct Setup {
        schema: Schema,
        gen: GeneralisationTopology,
    }

    fn setup() -> Setup {
        let schema = employee_schema();
        let gen = GeneralisationTopology::of_schema(&schema);
        Setup { schema, gen }
    }

    #[test]
    fn drops_reflexive_and_transitive_redundancy() {
        let s = setup();
        let worksfor = s.schema.type_id("worksfor").unwrap();
        let engine = ArmstrongEngine::new(&s.schema, &s.gen, worksfor);
        let person = s.schema.type_id("person").unwrap();
        let employee = s.schema.type_id("employee").unwrap();
        let department = s.schema.type_id("department").unwrap();
        let sigma = vec![
            (employee, person),     // reflexive: implied by ∅
            (person, employee),     // genuine
            (employee, department), // genuine
            (person, department),   // transitive consequence
        ];
        let min = minimal_cover(&engine, &sigma);
        assert!(equivalent(&engine, &sigma, &min));
        assert_eq!(min, vec![(person, employee), (employee, department)]);
    }

    #[test]
    fn minimal_cover_of_empty_is_empty() {
        let s = setup();
        let worksfor = s.schema.type_id("worksfor").unwrap();
        let engine = ArmstrongEngine::new(&s.schema, &s.gen, worksfor);
        assert!(minimal_cover(&engine, &[]).is_empty());
    }

    #[test]
    fn irredundant_sets_survive_unchanged() {
        let s = setup();
        let worksfor = s.schema.type_id("worksfor").unwrap();
        let engine = ArmstrongEngine::new(&s.schema, &s.gen, worksfor);
        let person = s.schema.type_id("person").unwrap();
        let department = s.schema.type_id("department").unwrap();
        let sigma = vec![(person, department)];
        assert_eq!(minimal_cover(&engine, &sigma), sigma);
    }

    #[test]
    fn result_is_actually_minimal() {
        let s = setup();
        let worksfor = s.schema.type_id("worksfor").unwrap();
        let engine = ArmstrongEngine::new(&s.schema, &s.gen, worksfor);
        let person = s.schema.type_id("person").unwrap();
        let employee = s.schema.type_id("employee").unwrap();
        let department = s.schema.type_id("department").unwrap();
        let sigma = vec![
            (person, employee),
            (employee, department),
            (department, person),
            (person, department),
        ];
        let min = minimal_cover(&engine, &sigma);
        assert!(equivalent(&engine, &sigma, &min));
        for i in 0..min.len() {
            let mut trial = min.clone();
            trial.remove(i);
            assert!(
                !equivalent(&engine, &min, &trial),
                "member {i} was redundant"
            );
        }
    }
}
