//! Armstrong relations for entity-type FDs.
//!
//! An *Armstrong relation* for a dependency set Σ exhibits **exactly** the
//! dependencies Σ implies: `fd(x, y, h)` holds on it iff Σ semantically
//! implies it. Armstrong's classical construction carries over to the
//! entity-type setting: one base tuple plus, per type `x ∈ G_h`, a tuple
//! agreeing with the base exactly on the attribute closure of `A_x`.
//! Agreement sets are then intersections of closed sets — closed again —
//! so the satisfied FDs are precisely the implied ones.
//!
//! Design-time use: show the designer a small concrete database that
//! satisfies everything they asked for and *nothing more*, making missing
//! constraints visible as concrete anomalies.

use toposem_core::{AttrId, Intension, TypeId};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, DomainSpec, Instance, Value};

use crate::armstrong::ArmstrongEngine;

/// Builds the Armstrong relation for `sigma` in `context`, loaded into a
/// fresh database (on-demand policy; only the context relation is
/// populated). The database satisfies `fd(x, y, context)` iff Σ implies
/// it.
pub fn armstrong_relation(
    intension: &Intension,
    context: TypeId,
    sigma: &[(TypeId, TypeId)],
) -> Database {
    let schema = intension.schema();
    let gen = intension.generalisation();
    let engine = ArmstrongEngine::new(schema, gen, context);
    let ctx_attrs = schema.attrs_of(context).clone();

    let mut catalog = DomainCatalog::new();
    for a in schema.attr_ids() {
        catalog.bind(&schema.attr(a).domain, DomainSpec::AnyInt);
    }
    let mut db = Database::new(intension.clone(), catalog, ContainmentPolicy::OnDemand);

    // Base tuple: all zeros.
    let t0 = Instance::from_parts(
        ctx_attrs
            .iter()
            .map(|a| (AttrId(a as u32), Value::Int(0)))
            .collect(),
    );
    db.insert(context, t0);

    // One witness tuple per type in G_context: agree with the base exactly
    // on the closure of its attribute set, unique salt elsewhere.
    for (k, xi) in gen.g_set(context).iter().enumerate() {
        let x = TypeId(xi as u32);
        let closed = engine.attr_closure(sigma, schema.attrs_of(x));
        let salt = (k as i64) + 1;
        let t = Instance::from_parts(
            ctx_attrs
                .iter()
                .map(|a| {
                    let v = if closed.contains(a) { 0 } else { salt };
                    (AttrId(a as u32), Value::Int(v))
                })
                .collect(),
        );
        db.insert(context, t);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_fd;
    use crate::fd::Fd;
    use toposem_core::employee_schema;

    fn all_pairs_agree(intension: &Intension, context: TypeId, sigma: &[(TypeId, TypeId)]) -> bool {
        let schema = intension.schema();
        let gen = intension.generalisation();
        let engine = ArmstrongEngine::new(schema, gen, context);
        let db = armstrong_relation(intension, context, sigma);
        let members: Vec<TypeId> = gen
            .g_set(context)
            .iter()
            .map(|i| TypeId(i as u32))
            .collect();
        for &x in &members {
            for &y in &members {
                let holds = check_fd(&db, &Fd::unchecked(x, y, context)).holds();
                let implied = engine.implied_semantically(sigma, x, y);
                if holds != implied {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn exhibits_exactly_the_closure_of_empty_sigma() {
        let i = Intension::analyse(employee_schema());
        let worksfor = i.schema().type_id("worksfor").unwrap();
        assert!(all_pairs_agree(&i, worksfor, &[]));
    }

    #[test]
    fn exhibits_exactly_the_closure_of_nontrivial_sigma() {
        let i = Intension::analyse(employee_schema());
        let s = i.schema();
        let worksfor = s.type_id("worksfor").unwrap();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        let person = s.type_id("person").unwrap();
        for sigma in [
            vec![(employee, department)],
            vec![(person, employee)],
            vec![(person, department), (department, person)],
        ] {
            assert!(all_pairs_agree(&i, worksfor, &sigma), "sigma {sigma:?}");
        }
    }

    #[test]
    fn works_in_every_context() {
        let i = Intension::analyse(employee_schema());
        for context in i.schema().type_ids() {
            assert!(all_pairs_agree(&i, context, &[]));
        }
    }

    #[test]
    fn relation_is_small() {
        // |G_worksfor| + 1 tuples at most (duplicates collapse).
        let i = Intension::analyse(employee_schema());
        let worksfor = i.schema().type_id("worksfor").unwrap();
        let db = armstrong_relation(&i, worksfor, &[]);
        let g = i.generalisation().g_set(worksfor).card();
        assert!(db.extension(worksfor).len() <= g + 1);
        assert!(db.extension(worksfor).len() >= 2);
    }
}
