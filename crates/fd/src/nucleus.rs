//! The nucleus `N_e` and the FD domain `DF_e` (§5.3).
//!
//! ```text
//! N_e  = the smallest FD set that always holds in G_e
//!        (the reflexive dependencies (x, y) with y ∈ G_x)
//! F_e  = { Y ∈ P(G_e × G_e) | N_e ⊆ Y }
//! F*_e = transitive closures of elements of F_e
//! DF_e = F*_e — the domain for functional dependencies over e
//! ```
//!
//! Elements of `DF_e` are exactly the FD sets that satisfy the Armstrong
//! axioms within `G_e`; `fd_e` denotes the element the designer wants to
//! hold.

use std::collections::BTreeSet;

use toposem_core::{GeneralisationTopology, TypeId};

/// A set of entity-type FDs in a fixed context universe `G_e`, as
/// lhs/rhs pairs.
pub type FdPairs = BTreeSet<(TypeId, TypeId)>;

/// `N_e`: all reflexive dependencies `(x, y)` with `x, y ∈ G_e`, `y ∈ G_x`
/// — these hold in every database state by the first Armstrong axiom.
pub fn nucleus(gen: &GeneralisationTopology, e: TypeId) -> FdPairs {
    let mut n = FdPairs::new();
    for xi in gen.g_set(e).iter() {
        let x = TypeId(xi as u32);
        for yi in gen.g_set(x).iter() {
            n.insert((x, TypeId(yi as u32)));
        }
    }
    n
}

/// The transitive closure of an FD pair set (the third Armstrong axiom).
pub fn transitive_closure(pairs: &FdPairs) -> FdPairs {
    let mut closed = pairs.clone();
    loop {
        let mut additions = Vec::new();
        for &(a, b) in &closed {
            for &(b2, c) in &closed {
                if b == b2 && !closed.contains(&(a, c)) {
                    additions.push((a, c));
                }
            }
        }
        if additions.is_empty() {
            return closed;
        }
        closed.extend(additions);
    }
}

/// Is `set` an element of `DF_e`? It must contain the nucleus and be
/// transitively closed.
pub fn is_in_df(gen: &GeneralisationTopology, e: TypeId, set: &FdPairs) -> bool {
    nucleus(gen, e).is_subset(set) && transitive_closure(set) == *set
}

/// The smallest element of `DF_e` containing `seed`: adjoin the nucleus,
/// then close transitively.
pub fn df_completion(gen: &GeneralisationTopology, e: TypeId, seed: &FdPairs) -> FdPairs {
    let mut s = seed.clone();
    s.extend(nucleus(gen, e));
    transitive_closure(&s)
}

/// Restricts an FD pair set to the universe `G_e × G_e` (used by the
/// dependency mappings: `F_e(f) = fd_f ∩ DF_e`).
pub fn restrict_to_context(gen: &GeneralisationTopology, e: TypeId, set: &FdPairs) -> FdPairs {
    let ge = gen.g_set(e);
    set.iter()
        .filter(|(x, y)| ge.contains(x.index()) && ge.contains(y.index()))
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::employee_schema;

    fn setup() -> (toposem_core::Schema, GeneralisationTopology) {
        let s = employee_schema();
        let g = GeneralisationTopology::of_schema(&s);
        (s, g)
    }

    #[test]
    fn nucleus_of_worksfor() {
        let (s, g) = setup();
        let worksfor = s.type_id("worksfor").unwrap();
        let n = nucleus(&g, worksfor);
        let employee = s.type_id("employee").unwrap();
        let person = s.type_id("person").unwrap();
        let department = s.type_id("department").unwrap();
        // Reflexive pairs for each member of G_worksfor…
        for t in [worksfor, employee, person, department] {
            assert!(n.contains(&(t, t)));
        }
        // …the hierarchy pairs…
        assert!(n.contains(&(worksfor, employee)));
        assert!(n.contains(&(worksfor, department)));
        assert!(n.contains(&(employee, person)));
        // …and nothing sideways.
        assert!(!n.contains(&(person, employee)));
        assert!(!n.contains(&(employee, department)));
    }

    #[test]
    fn nucleus_is_transitively_closed_already() {
        let (s, g) = setup();
        for e in s.type_ids() {
            let n = nucleus(&g, e);
            assert_eq!(transitive_closure(&n), n, "context {}", s.type_name(e));
            assert!(is_in_df(&g, e, &n));
        }
    }

    #[test]
    fn df_completion_adds_nucleus_and_closes() {
        let (s, g) = setup();
        let worksfor = s.type_id("worksfor").unwrap();
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        let seed: FdPairs = [(person, employee)].into_iter().collect();
        let completed = df_completion(&g, worksfor, &seed);
        assert!(is_in_df(&g, worksfor, &completed));
        // Transitivity: person → employee → person(nucleus)… and notably
        // person → employee chains with employee → person? No — but
        // (person, employee) with nucleus (employee, person) gives
        // (person, person), already reflexive. The interesting chain:
        // (worksfor, employee) ∘ ... nothing new sideways.
        assert!(completed.contains(&(person, employee)));
        assert!(!completed.contains(&(department, employee)));
    }

    #[test]
    fn is_in_df_rejects_non_closed_sets() {
        let (s, g) = setup();
        let worksfor = s.type_id("worksfor").unwrap();
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        // Nucleus + a chain that is not closed: person → department,
        // department → ... nothing; take employee → department and
        // person → employee without person → department.
        let mut set = nucleus(&g, worksfor);
        set.insert((person, employee));
        set.insert((employee, department));
        assert!(
            !is_in_df(&g, worksfor, &set),
            "missing (person, department)"
        );
        set.insert((person, department));
        assert!(is_in_df(&g, worksfor, &set));
    }

    #[test]
    fn restriction_drops_foreign_pairs() {
        let (s, g) = setup();
        let manager = s.type_id("manager").unwrap();
        let department = s.type_id("department").unwrap();
        let person = s.type_id("person").unwrap();
        let set: FdPairs = [(person, department), (person, person)]
            .into_iter()
            .collect();
        // department ∉ G_manager.
        let restricted = restrict_to_context(&g, manager, &set);
        assert_eq!(restricted.len(), 1);
        assert!(restricted.contains(&(person, person)));
    }
}
