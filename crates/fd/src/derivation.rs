//! Proof objects for the Armstrong calculus: not just *whether*
//! `fd(x, y, h)` is derivable, but the derivation tree itself, with one
//! node per axiom application. The design tool renders these so a
//! designer can see *why* a dependency is forced.

use toposem_core::{Schema, TypeId};

use crate::armstrong::ArmstrongEngine;

/// One step of a derivation of `x → y` (within a fixed context).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Derivation {
    /// A1: `y ∈ G_x` — reflexivity.
    Reflexive {
        /// Left side.
        x: TypeId,
        /// Right side (a generalisation of `x`).
        y: TypeId,
    },
    /// A given member of Σ.
    Given {
        /// Index into Σ.
        index: usize,
        /// Left side.
        x: TypeId,
        /// Right side.
        y: TypeId,
    },
    /// A3: transitivity through `mid`.
    Transitive {
        /// Left side.
        x: TypeId,
        /// The midpoint.
        mid: TypeId,
        /// Right side.
        y: TypeId,
        /// Proof of `x → mid`.
        left: Box<Derivation>,
        /// Proof of `mid → y`.
        right: Box<Derivation>,
    },
    /// A2⇐: assembly of a compound `y` from its direct generalisations.
    Assembled {
        /// Left side.
        x: TypeId,
        /// The assembled compound type.
        y: TypeId,
        /// Proofs of `x → c` for each contributor `c` of `y`.
        parts: Vec<Derivation>,
    },
}

impl Derivation {
    /// The conclusion `(x, y)` of this derivation.
    pub fn conclusion(&self) -> (TypeId, TypeId) {
        match self {
            Derivation::Reflexive { x, y } | Derivation::Given { x, y, .. } => (*x, *y),
            Derivation::Transitive { x, y, .. } => (*x, *y),
            Derivation::Assembled { x, y, .. } => (*x, *y),
        }
    }

    /// Number of axiom applications in the tree.
    pub fn size(&self) -> usize {
        match self {
            Derivation::Reflexive { .. } | Derivation::Given { .. } => 1,
            Derivation::Transitive { left, right, .. } => 1 + left.size() + right.size(),
            Derivation::Assembled { parts, .. } => {
                1 + parts.iter().map(Derivation::size).sum::<usize>()
            }
        }
    }

    /// Renders the tree with indentation.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = String::new();
        self.render_into(schema, 0, &mut out);
        out
    }

    fn render_into(&self, schema: &Schema, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let (x, y) = self.conclusion();
        let head = format!("{} → {}", schema.type_name(x), schema.type_name(y));
        match self {
            Derivation::Reflexive { .. } => {
                out.push_str(&format!("{pad}{head}   [A1 reflexivity]\n"));
            }
            Derivation::Given { index, .. } => {
                out.push_str(&format!("{pad}{head}   [given Σ#{index}]\n"));
            }
            Derivation::Transitive { left, right, .. } => {
                out.push_str(&format!("{pad}{head}   [A3 transitivity]\n"));
                left.render_into(schema, depth + 1, out);
                right.render_into(schema, depth + 1, out);
            }
            Derivation::Assembled { parts, .. } => {
                out.push_str(&format!("{pad}{head}   [A2 assembly]\n"));
                for p in parts {
                    p.render_into(schema, depth + 1, out);
                }
            }
        }
    }
}

/// Produces a derivation of `x → y` from `sigma` in the engine's context,
/// or `None` when underivable. The tree mirrors the closure computation:
/// reflexivity seeds, Σ members extend via transitivity, assemblable
/// compounds close over their contributors.
pub fn derive_with_proof(
    engine: &ArmstrongEngine<'_>,
    schema: &Schema,
    sigma: &[(TypeId, TypeId)],
    x: TypeId,
    y: TypeId,
) -> Option<Derivation> {
    use std::collections::BTreeMap;
    let gen_of = |t: TypeId| -> Vec<TypeId> {
        engine
            .universe()
            .into_iter()
            .filter(|&g| schema.attrs_of(g).is_subset(schema.attrs_of(t)))
            .collect()
    };
    // proofs[z] = derivation of x → z.
    let mut proofs: BTreeMap<TypeId, Derivation> = BTreeMap::new();
    // Seed: x → x and its generalisations.
    let mut frontier: Vec<TypeId> = vec![x];
    proofs.insert(x, Derivation::Reflexive { x, y: x });
    while let Some(t) = frontier.pop() {
        for g in gen_of(t) {
            if !proofs.contains_key(&g) {
                let proof = if t == x {
                    Derivation::Reflexive { x, y: g }
                } else {
                    Derivation::Transitive {
                        x,
                        mid: t,
                        y: g,
                        left: Box::new(proofs[&t].clone()),
                        right: Box::new(Derivation::Reflexive { x: t, y: g }),
                    }
                };
                proofs.insert(g, proof);
                frontier.push(g);
            }
        }
    }
    // Saturate with Σ (transitivity) and assembly.
    let assemblable: Vec<(TypeId, Vec<TypeId>)> = engine
        .universe()
        .into_iter()
        .filter_map(|t| {
            let co = toposem_core::contributors::computed_contributors(
                schema,
                // Safe: the engine was built over this schema's dual
                // topology; rebuild locally for contributor lookup.
                &toposem_core::GeneralisationTopology::of_schema(schema),
                t,
            );
            if co.is_empty() {
                return None;
            }
            let mut union = toposem_topology::BitSet::empty(schema.attr_count());
            for c in co.iter() {
                union.union_with(schema.attrs_of(TypeId(c as u32)));
            }
            (&union == schema.attrs_of(t))
                .then(|| (t, co.iter().map(|c| TypeId(c as u32)).collect::<Vec<_>>()))
        })
        .collect();
    loop {
        let mut grew = false;
        for (i, &(u, v)) in sigma.iter().enumerate() {
            if proofs.contains_key(&u) && !proofs.contains_key(&v) {
                let proof = if u == x {
                    Derivation::Given { index: i, x, y: v }
                } else {
                    Derivation::Transitive {
                        x,
                        mid: u,
                        y: v,
                        left: Box::new(proofs[&u].clone()),
                        right: Box::new(Derivation::Given {
                            index: i,
                            x: u,
                            y: v,
                        }),
                    }
                };
                proofs.insert(v, proof);
                grew = true;
                // Close the new member's generalisations reflexively.
                let mut stack = vec![v];
                while let Some(t) = stack.pop() {
                    for g in gen_of(t) {
                        if !proofs.contains_key(&g) {
                            proofs.insert(
                                g,
                                Derivation::Transitive {
                                    x,
                                    mid: t,
                                    y: g,
                                    left: Box::new(proofs[&t].clone()),
                                    right: Box::new(Derivation::Reflexive { x: t, y: g }),
                                },
                            );
                            stack.push(g);
                        }
                    }
                }
            }
        }
        for (t, co) in &assemblable {
            if !proofs.contains_key(t) && co.iter().all(|c| proofs.contains_key(c)) {
                let parts = co.iter().map(|c| proofs[c].clone()).collect();
                proofs.insert(*t, Derivation::Assembled { x, y: *t, parts });
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    proofs.get(&y).cloned()
}

/// Validates a derivation against the schema, Σ, and the A1/A2/A3 side
/// conditions — a proof checker independent of the proof search.
pub fn check_proof(schema: &Schema, sigma: &[(TypeId, TypeId)], d: &Derivation) -> bool {
    match d {
        Derivation::Reflexive { x, y } => schema.attrs_of(*y).is_subset(schema.attrs_of(*x)),
        Derivation::Given { index, x, y } => sigma.get(*index) == Some(&(*x, *y)),
        Derivation::Transitive {
            x,
            mid,
            y,
            left,
            right,
        } => {
            left.conclusion() == (*x, *mid)
                && right.conclusion() == (*mid, *y)
                && check_proof(schema, sigma, left)
                && check_proof(schema, sigma, right)
        }
        Derivation::Assembled { x, y, parts } => {
            let gen = toposem_core::GeneralisationTopology::of_schema(schema);
            let co = toposem_core::contributors::computed_contributors(schema, &gen, *y);
            let mut union = toposem_topology::BitSet::empty(schema.attr_count());
            for c in co.iter() {
                union.union_with(schema.attrs_of(TypeId(c as u32)));
            }
            if &union != schema.attrs_of(*y) {
                return false; // not assemblable
            }
            let proved: Vec<TypeId> = parts.iter().map(|p| p.conclusion().1).collect();
            co.iter().all(|c| proved.contains(&TypeId(c as u32)))
                && parts
                    .iter()
                    .all(|p| p.conclusion().0 == *x && check_proof(schema, sigma, p))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, GeneralisationTopology};

    #[test]
    fn proof_for_assembly_derivation() {
        let schema = employee_schema();
        let gen = GeneralisationTopology::of_schema(&schema);
        let worksfor = schema.type_id("worksfor").unwrap();
        let employee = schema.type_id("employee").unwrap();
        let department = schema.type_id("department").unwrap();
        let engine = ArmstrongEngine::new(&schema, &gen, worksfor);
        let sigma = [(employee, department)];
        let proof = derive_with_proof(&engine, &schema, &sigma, employee, worksfor)
            .expect("derivable by assembly");
        assert_eq!(proof.conclusion(), (employee, worksfor));
        assert!(
            check_proof(&schema, &sigma, &proof),
            "{}",
            proof.render(&schema)
        );
        assert!(matches!(proof, Derivation::Assembled { .. }));
        let rendered = proof.render(&schema);
        assert!(rendered.contains("[A2 assembly]"));
        assert!(rendered.contains("[given Σ#0]"));
    }

    #[test]
    fn proof_search_agrees_with_derivability() {
        let schema = employee_schema();
        let gen = GeneralisationTopology::of_schema(&schema);
        let worksfor = schema.type_id("worksfor").unwrap();
        let engine = ArmstrongEngine::new(&schema, &gen, worksfor);
        let employee = schema.type_id("employee").unwrap();
        let department = schema.type_id("department").unwrap();
        let person = schema.type_id("person").unwrap();
        for sigma in [
            vec![],
            vec![(employee, department)],
            vec![(person, department)],
        ] {
            for &x in &engine.universe() {
                for &y in &engine.universe() {
                    let derivable = engine.derives(&sigma, x, y);
                    let proof = derive_with_proof(&engine, &schema, &sigma, x, y);
                    assert_eq!(derivable, proof.is_some(), "x={x:?} y={y:?}");
                    if let Some(p) = proof {
                        assert_eq!(p.conclusion(), (x, y));
                        assert!(check_proof(&schema, &sigma, &p));
                    }
                }
            }
        }
    }

    #[test]
    fn proof_checker_rejects_bogus_proofs() {
        let schema = employee_schema();
        let person = schema.type_id("person").unwrap();
        let manager = schema.type_id("manager").unwrap();
        // person → manager is not reflexive (manager has more attributes).
        let bogus = Derivation::Reflexive {
            x: person,
            y: manager,
        };
        assert!(!check_proof(&schema, &[], &bogus));
        // Given with a wrong index.
        let bogus2 = Derivation::Given {
            index: 0,
            x: person,
            y: manager,
        };
        assert!(!check_proof(&schema, &[], &bogus2));
    }

    #[test]
    fn proof_sizes_are_reasonable() {
        let schema = employee_schema();
        let gen = GeneralisationTopology::of_schema(&schema);
        let worksfor = schema.type_id("worksfor").unwrap();
        let engine = ArmstrongEngine::new(&schema, &gen, worksfor);
        let employee = schema.type_id("employee").unwrap();
        let person = schema.type_id("person").unwrap();
        let proof = derive_with_proof(&engine, &schema, &[], employee, person).unwrap();
        assert!(proof.size() <= 3, "reflexive chains stay small");
    }
}
