//! FD satisfaction on extensions, and the §5.1 commuting-triangle theorem.
//!
//! ```text
//! Theorem: for e, f ∈ G_g:  fd(e, f, g)  iff  ∃ λ : E_e(g) → E_f(g)
//! such that the triangle commutes:   E_g(g) --π^e--> E_e(g)
//!                                        \            |
//!                                       π^f           λ
//!                                          \           v
//!                                           +-----> E_f(g)
//! ```
//!
//! On finite data the theorem is constructive: scan `R_g` building λ as a
//! map from lhs-projections to rhs-projections; a conflict is both an FD
//! violation and a proof that no commuting λ exists.

use std::collections::HashMap;

use toposem_extension::{Database, Instance};

use crate::fd::Fd;

/// The outcome of checking one FD on the current data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FdCheck {
    /// The FD holds; the witnessing λ is returned as an explicit map from
    /// lhs-projections to rhs-projections.
    Holds(HashMap<Instance, Instance>),
    /// The FD is violated by the two context tuples returned.
    Violated(Instance, Instance),
}

impl FdCheck {
    /// True when the FD holds.
    pub fn holds(&self) -> bool {
        matches!(self, FdCheck::Holds(_))
    }
}

/// Checks `fd` against the (collected) extension of its context,
/// constructing λ in one scan.
pub fn check_fd(db: &Database, fd: &Fd) -> FdCheck {
    let schema = db.schema();
    let lhs_attrs = schema.attrs_of(fd.lhs);
    let rhs_attrs = schema.attrs_of(fd.rhs);
    let mut lambda: HashMap<Instance, Instance> = HashMap::new();
    // Remember one witness tuple per lhs-projection for diagnostics.
    let mut witness: HashMap<Instance, Instance> = HashMap::new();
    for t in db.extension(fd.context).iter() {
        let key = t.project(lhs_attrs);
        let val = t.project(rhs_attrs);
        match lambda.get(&key) {
            None => {
                lambda.insert(key.clone(), val);
                witness.insert(key, t.clone());
            }
            Some(prev) if *prev == val => {}
            Some(_) => {
                let w = witness.remove(&key).expect("witness recorded with lambda");
                return FdCheck::Violated(w, t.clone());
            }
        }
    }
    FdCheck::Holds(lambda)
}

/// Verifies the commuting triangle for a λ produced by [`check_fd`]:
/// `λ(π^e(t)) = π^f(t)` for every `t ∈ E_g(g)`.
pub fn triangle_commutes(db: &Database, fd: &Fd, lambda: &HashMap<Instance, Instance>) -> bool {
    let schema = db.schema();
    let lhs_attrs = schema.attrs_of(fd.lhs);
    let rhs_attrs = schema.attrs_of(fd.rhs);
    db.extension(fd.context).iter().all(|t| {
        lambda
            .get(&t.project(lhs_attrs))
            .is_some_and(|v| *v == t.project(rhs_attrs))
    })
}

/// Checks a whole set of FDs; returns the violated ones.
pub fn violated<'a>(db: &Database, fds: impl IntoIterator<Item = &'a Fd>) -> Vec<Fd> {
    fds.into_iter()
        .filter(|fd| !check_fd(db, fd).holds())
        .copied()
        .collect()
}

/// True when the database satisfies every FD in the set.
pub fn satisfies<'a>(db: &Database, fds: impl IntoIterator<Item = &'a Fd>) -> bool {
    violated(db, fds).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, GeneralisationTopology, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog, Value};

    fn db_with_worksfor(rows: &[(&str, i64, &str, &str)]) -> Database {
        let mut d = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = d.schema().clone();
        let worksfor = s.type_id("worksfor").unwrap();
        for (name, age, dep, loc) in rows {
            d.insert_fields(
                worksfor,
                &[
                    ("name", Value::str(name)),
                    ("age", Value::Int(*age)),
                    ("depname", Value::str(dep)),
                    ("location", Value::str(loc)),
                ],
            )
            .unwrap();
        }
        d
    }

    fn fd_emp_dep(d: &Database) -> Fd {
        let s = d.schema();
        let gen = GeneralisationTopology::of_schema(s);
        Fd::new(
            &gen,
            s.type_id("employee").unwrap(),
            s.type_id("department").unwrap(),
            s.type_id("worksfor").unwrap(),
        )
        .unwrap()
    }

    /// F4: "each employee works for at most one department" as
    /// fd(employee, department, worksfor), with λ constructed explicitly.
    #[test]
    fn fd_holds_and_triangle_commutes() {
        let d = db_with_worksfor(&[
            ("ann", 40, "sales", "amsterdam"),
            ("bob", 30, "research", "utrecht"),
        ]);
        let fd = fd_emp_dep(&d);
        match check_fd(&d, &fd) {
            FdCheck::Holds(lambda) => {
                assert_eq!(lambda.len(), 2);
                assert!(triangle_commutes(&d, &fd, &lambda));
            }
            FdCheck::Violated(a, b) => {
                panic!("unexpected violation: {a:?} vs {b:?}")
            }
        }
    }

    #[test]
    fn fd_violation_is_detected_with_witnesses() {
        // The sales department in two locations: the employee projection
        // (which includes depname) fails to determine the department
        // projection (depname, location).
        let d = db_with_worksfor(&[
            ("ann", 40, "sales", "amsterdam"),
            ("ann", 40, "sales", "utrecht"),
        ]);
        let fd = fd_emp_dep(&d);
        match check_fd(&d, &fd) {
            FdCheck::Violated(a, b) => {
                let s = d.schema();
                let name = s.attr_id("name").unwrap();
                assert_eq!(a.get(name), b.get(name));
            }
            FdCheck::Holds(_) => panic!("violation missed"),
        }
        assert!(!satisfies(&d, &[fd]));
        assert_eq!(violated(&d, &[fd]).len(), 1);
    }

    #[test]
    fn empty_context_satisfies_everything() {
        let d = db_with_worksfor(&[]);
        let fd = fd_emp_dep(&d);
        assert!(check_fd(&d, &fd).holds());
    }

    #[test]
    fn reflexive_fd_always_holds() {
        let d = db_with_worksfor(&[
            ("ann", 40, "sales", "amsterdam"),
            ("ann", 40, "research", "utrecht"),
        ]);
        let s = d.schema();
        let gen = GeneralisationTopology::of_schema(s);
        let worksfor = s.type_id("worksfor").unwrap();
        let employee = s.type_id("employee").unwrap();
        // fd(worksfor, employee, worksfor): the whole tuple determines any
        // generalisation's projection — the nucleus in action.
        let fd = Fd::new(&gen, worksfor, employee, worksfor).unwrap();
        assert!(check_fd(&d, &fd).holds());
    }
}
