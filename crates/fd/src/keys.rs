//! Key inference: minimal determining sets of entity types for a context.
//!
//! A *key* of context `h` under Σ is a minimal set `X ⊆ G_h` of entity
//! types whose combined attributes determine all of `A_h` (attribute-level
//! semantics, which §5.1's projection definition induces). Keys are the
//! workhorse the engine uses to pick physical identifiers for subbase
//! relations.

use toposem_core::{GeneralisationTopology, Schema, TypeId};
use toposem_topology::BitSet;

use crate::armstrong::ArmstrongEngine;

/// All minimal keys of `context` under `sigma`, as sets of entity types
/// drawn from `G_context \ {context}` (the proper generalisations; the
/// context itself is always a trivial superkey). When no proper subset
/// determines the context, the result is empty — the context is its own
/// only key.
pub fn minimal_keys(
    schema: &Schema,
    gen: &GeneralisationTopology,
    context: TypeId,
    sigma: &[(TypeId, TypeId)],
) -> Vec<Vec<TypeId>> {
    let engine = ArmstrongEngine::new(schema, gen, context);
    let candidates: Vec<TypeId> = gen
        .g_set(context)
        .iter()
        .map(|i| TypeId(i as u32))
        .filter(|&t| t != context)
        .collect();
    let target = schema.attrs_of(context);
    let m = candidates.len();
    if m == 0 || m > 20 {
        return Vec::new(); // design-time sizes only
    }
    let determines = |subset: &[TypeId]| -> bool {
        let mut start = BitSet::empty(schema.attr_count());
        for t in subset {
            start.union_with(schema.attrs_of(*t));
        }
        let closed = engine.attr_closure(sigma, &start);
        target.is_subset(&closed)
    };
    // Enumerate subsets in order of increasing cardinality; keep those
    // determining the context with no smaller determining subset.
    let mut keys: Vec<Vec<TypeId>> = Vec::new();
    let mut masks: Vec<u32> = (0u32..(1 << m)).collect();
    masks.sort_by_key(|mask| mask.count_ones());
    for mask in masks {
        if mask == 0 {
            continue;
        }
        let subset: Vec<TypeId> = (0..m)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| candidates[i])
            .collect();
        let contains_smaller_key = keys.iter().any(|k| k.iter().all(|t| subset.contains(t)));
        if contains_smaller_key {
            continue;
        }
        if determines(&subset) {
            keys.push(subset);
        }
    }
    keys
}

/// Is `subset` a superkey of `context` under `sigma`?
pub fn is_superkey(
    schema: &Schema,
    gen: &GeneralisationTopology,
    context: TypeId,
    sigma: &[(TypeId, TypeId)],
    subset: &[TypeId],
) -> bool {
    let engine = ArmstrongEngine::new(schema, gen, context);
    let mut start = BitSet::empty(schema.attr_count());
    for t in subset {
        start.union_with(schema.attrs_of(*t));
    }
    let closed = engine.attr_closure(sigma, &start);
    schema.attrs_of(context).is_subset(&closed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::employee_schema;

    fn setup() -> (Schema, GeneralisationTopology) {
        let s = employee_schema();
        let g = GeneralisationTopology::of_schema(&s);
        (s, g)
    }

    #[test]
    fn worksfor_key_without_fds_is_both_contributors() {
        let (s, g) = setup();
        let worksfor = s.type_id("worksfor").unwrap();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        let person = s.type_id("person").unwrap();
        let keys = minimal_keys(&s, &g, worksfor, &[]);
        // Both {employee, department} and {person, department} cover all
        // of worksfor's attributes, and neither contains the other.
        assert_eq!(
            keys,
            vec![vec![employee, department], vec![person, department]]
        );
    }

    #[test]
    fn fd_shrinks_the_key() {
        let (s, g) = setup();
        let worksfor = s.type_id("worksfor").unwrap();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        // employee → department: the employee alone keys worksfor.
        // {person, department} stays minimal as a type set (it does not
        // contain the key {employee}).
        let person = s.type_id("person").unwrap();
        let keys = minimal_keys(&s, &g, worksfor, &[(employee, department)]);
        assert_eq!(keys, vec![vec![employee], vec![person, department]]);
    }

    #[test]
    fn manager_has_no_proper_key() {
        let (s, g) = setup();
        let manager = s.type_id("manager").unwrap();
        // budget is not derivable from any generalisation.
        assert!(minimal_keys(&s, &g, manager, &[]).is_empty());
        let employee = s.type_id("employee").unwrap();
        assert!(!is_superkey(&s, &g, manager, &[], &[employee]));
        assert!(is_superkey(&s, &g, manager, &[], &[manager]));
    }

    #[test]
    fn multiple_minimal_keys() {
        let (s, g) = setup();
        let worksfor = s.type_id("worksfor").unwrap();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        let person = s.type_id("person").unwrap();
        // person → employee and employee → department: person and employee
        // each key worksfor (person subsumes via closure).
        let sigma = [(person, employee), (employee, department)];
        let keys = minimal_keys(&s, &g, worksfor, &sigma);
        assert!(keys.contains(&vec![person]));
        assert!(keys.contains(&vec![employee]));
        assert_eq!(keys.len(), 2);
    }
}
