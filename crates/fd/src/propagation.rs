//! The propagation theorem (§5.2).
//!
//! ```text
//! Theorem: e, f ∈ G_g, fd(e, f, g), h ∈ S_g  ⇒  fd(e, f, h)
//! ```
//!
//! Dependencies extend down ISA hierarchies "in a way that is not captured
//! by the axioms"; together with the Armstrong axioms this yields the
//! globally sound and complete system. The proof (omitted in the paper)
//! rests on the containment condition: tuples of `R_h` project into `R_g`,
//! where the dependency already binds them.

use toposem_core::{Intension, TypeId};

use crate::fd::Fd;

/// All FDs obtained from `fds` by propagating each one to every
/// specialisation of its context (including the original).
pub fn propagate(intension: &Intension, fds: &[Fd]) -> Vec<Fd> {
    let spec = intension.specialisation();
    let mut out = Vec::new();
    for fd in fds {
        for hi in spec.s_set(fd.context).iter() {
            out.push(Fd {
                lhs: fd.lhs,
                rhs: fd.rhs,
                context: TypeId(hi as u32),
            });
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The propagated context set of one FD: `S_g` for its context `g`.
pub fn propagated_contexts(intension: &Intension, fd: &Fd) -> Vec<TypeId> {
    intension
        .specialisation()
        .s_set(fd.context)
        .iter()
        .map(|i| TypeId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_fd, satisfies};
    use toposem_core::{employee_schema, GeneralisationTopology, Intension};
    use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};

    fn intension() -> Intension {
        Intension::analyse(employee_schema())
    }

    #[test]
    fn propagation_targets_are_specialisations() {
        let i = intension();
        let s = i.schema();
        let gen = GeneralisationTopology::of_schema(s);
        let person = s.type_id("person").unwrap();
        // fd(person, person, person) propagates to all specialisations of
        // person: employee, manager, worksfor.
        let fd = Fd::new(&gen, person, person, person).unwrap();
        let contexts = propagated_contexts(&i, &fd);
        let names: Vec<&str> = contexts.iter().map(|&c| s.type_name(c)).collect();
        assert_eq!(names, vec!["employee", "person", "manager", "worksfor"]);
    }

    #[test]
    fn propagate_deduplicates() {
        let i = intension();
        let s = i.schema();
        let gen = GeneralisationTopology::of_schema(s);
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        let fd_p = Fd::new(&gen, person, person, person).unwrap();
        let fd_e = Fd::new(&gen, person, person, employee).unwrap();
        // fd_e is already among fd_p's propagations.
        let all = propagate(&i, &[fd_p, fd_e]);
        let count = all.iter().filter(|f| f.context == employee).count();
        assert_eq!(count, 1);
    }

    /// The theorem, checked semantically: a database satisfying fd(e,f,g)
    /// with maintained containment satisfies fd(e,f,h) for every h ∈ S_g.
    #[test]
    fn propagation_holds_semantically() {
        let i = intension();
        let s = i.schema().clone();
        let gen = GeneralisationTopology::of_schema(&s);
        let mut db = Database::new(
            intension(),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let manager = s.type_id("manager").unwrap();
        // Managers: name determines department (one job each).
        for (n, a, d, b) in [
            ("ann", 40, "sales", 100),
            ("bob", 30, "research", 200),
            ("carol", 50, "sales", 300),
        ] {
            db.insert_fields(
                manager,
                &[
                    ("name", Value::str(n)),
                    ("age", Value::Int(a)),
                    ("depname", Value::str(d)),
                    ("budget", Value::Int(b)),
                ],
            )
            .unwrap();
        }
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        // fd(person, employee, employee): a person is one employee.
        let base = Fd::new(&gen, person, employee, employee).unwrap();
        assert!(check_fd(&db, &base).holds());
        // It must propagate to manager (and worksfor, trivially empty).
        let propagated = propagate(&i, &[base]);
        assert!(propagated.len() >= 2);
        assert!(satisfies(&db, &propagated));
    }
}
