//! The implication problem, and the soundness & completeness theorems of
//! §5.2 as an executable harness.
//!
//! The paper claims (proofs omitted): *"The Armstrong Axioms, together
//! with the propagation theorem are a sound and complete system."* This
//! module substitutes for the missing proofs:
//!
//! - **Soundness** is checked by construction: whenever `fd(x,y,h)` is
//!   derivable from Σ, the classical attribute-level closure (sound and
//!   complete for projection semantics by Armstrong's theorem) must also
//!   imply it — see [`verify_soundness`].
//! - **Completeness** is checked witness-style: whenever `fd(x,y,h)` is
//!   *not* derivable, [`counterexample`] builds the two-tuple Armstrong
//!   relation that satisfies Σ yet violates the goal — see
//!   [`verify_completeness`].
//!
//! Completeness depends on the schema honouring the Integrity Axiom's
//! discipline ("check whether entity types mentioned in the dependency
//! have been observed as an entity already"): every semantically relevant
//! attribute set must be explicated as an entity type. On schemas with
//! overlapping types whose intersections are left implicit, the type-level
//! calculus can miss implications the attribute level sees;
//! `verify_completeness` returns the witnesses either way, and the
//! experiment suite quantifies the gap (experiment R6).

use toposem_core::{Intension, TypeId};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Instance, Value};

use crate::armstrong::ArmstrongEngine;
use crate::check::{check_fd, satisfies};
use crate::fd::Fd;
use crate::propagation::propagate;

/// Outcome of the soundness sweep over one context.
#[derive(Clone, Debug, Default)]
pub struct SoundnessReport {
    /// Derivable FDs checked.
    pub checked: usize,
    /// Derivable FDs that are *not* semantically implied — each one is a
    /// soundness bug (expected empty).
    pub unsound: Vec<(TypeId, TypeId)>,
}

/// Outcome of the completeness sweep over one context.
#[derive(Clone, Debug, Default)]
pub struct CompletenessReport {
    /// Underivable FDs checked.
    pub checked: usize,
    /// Underivable FDs for which the two-tuple counterexample failed to
    /// satisfy Σ or failed to violate the goal — i.e. semantically implied
    /// but not derivable. Empty iff the system is complete on this schema.
    pub incomplete: Vec<(TypeId, TypeId)>,
}

/// Checks soundness of the type-level calculus in context `h`: everything
/// derivable must be semantically implied (via the attribute baseline).
pub fn verify_soundness(
    engine: &ArmstrongEngine<'_>,
    sigma: &[(TypeId, TypeId)],
) -> SoundnessReport {
    let mut report = SoundnessReport::default();
    let universe = engine.universe();
    for &x in &universe {
        for &y in &universe {
            if engine.derives(sigma, x, y) {
                report.checked += 1;
                if !engine.implied_semantically(sigma, x, y) {
                    report.unsound.push((x, y));
                }
            }
        }
    }
    report
}

/// Checks completeness in context `h`: everything underivable must have a
/// genuine counterexample database (which [`counterexample`] constructs
/// whenever the goal is not semantically implied; when the goal *is*
/// implied yet underivable, the pair is recorded as incomplete).
pub fn verify_completeness(
    engine: &ArmstrongEngine<'_>,
    sigma: &[(TypeId, TypeId)],
) -> CompletenessReport {
    let mut report = CompletenessReport::default();
    let universe = engine.universe();
    for &x in &universe {
        for &y in &universe {
            if !engine.derives(sigma, x, y) {
                report.checked += 1;
                if engine.implied_semantically(sigma, x, y) {
                    report.incomplete.push((x, y));
                }
            }
        }
    }
    report
}

/// Builds the classical two-tuple Armstrong counterexample for
/// `fd(x, y, context)` under Σ, as a full [`Database`]: two context tuples
/// agreeing exactly on the attribute closure of `A_x`. Returns `None`
/// when the goal is semantically implied (no counterexample exists).
///
/// The returned database uses an all-integer domain catalog (every
/// attribute admits 0 and 1) and on-demand containment so the two tuples
/// live only in the context relation.
pub fn counterexample(
    intension: &Intension,
    sigma: &[(TypeId, TypeId)],
    goal: &Fd,
) -> Option<Database> {
    let schema = intension.schema();
    let gen = intension.generalisation();
    let engine = ArmstrongEngine::new(schema, gen, goal.context);
    if engine.implied_semantically(sigma, goal.lhs, goal.rhs) {
        return None;
    }
    let closed = engine.attr_closure(sigma, schema.attrs_of(goal.lhs));
    // Integer catalog admitting {0, 1} for every attribute regardless of
    // declared domain names.
    let mut catalog = DomainCatalog::new();
    for a in schema.attr_ids() {
        catalog.bind(
            &schema.attr(a).domain,
            toposem_extension::DomainSpec::AnyInt,
        );
    }
    let mut db = Database::new(intension.clone(), catalog, ContainmentPolicy::OnDemand);
    let ctx_attrs = schema.attrs_of(goal.context).clone();
    let t1 = Instance::from_parts(
        ctx_attrs
            .iter()
            .map(|a| (toposem_core::AttrId(a as u32), Value::Int(0)))
            .collect(),
    );
    let t2 = Instance::from_parts(
        ctx_attrs
            .iter()
            .map(|a| {
                let v = if closed.contains(a) { 0 } else { 1 };
                (toposem_core::AttrId(a as u32), Value::Int(v))
            })
            .collect(),
    );
    db.insert(goal.context, t1);
    db.insert(goal.context, t2);
    Some(db)
}

/// End-to-end witness check: the counterexample database satisfies every
/// FD of Σ (in the goal's context) and violates the goal.
pub fn counterexample_is_valid(
    intension: &Intension,
    sigma: &[(TypeId, TypeId)],
    goal: &Fd,
) -> bool {
    let Some(db) = counterexample(intension, sigma, goal) else {
        return false;
    };
    let sigma_fds: Vec<Fd> = sigma
        .iter()
        .map(|(u, v)| Fd::unchecked(*u, *v, goal.context))
        .collect();
    satisfies(&db, &sigma_fds) && !check_fd(&db, goal).holds()
}

/// Global implication: is `goal` derivable from `fds` using the Armstrong
/// axioms *plus the propagation theorem* across contexts? Base FDs whose
/// contexts generalise the goal's context apply after propagation.
pub fn derivable_globally(intension: &Intension, fds: &[Fd], goal: &Fd) -> bool {
    let schema = intension.schema();
    let gen = intension.generalisation();
    // Propagate every base FD down the ISA hierarchy, keep the ones landing
    // in the goal's context, then run the in-context engine.
    let propagated = propagate(intension, fds);
    let sigma: Vec<(TypeId, TypeId)> = propagated
        .iter()
        .filter(|fd| fd.context == goal.context)
        .map(|fd| (fd.lhs, fd.rhs))
        .collect();
    let engine = ArmstrongEngine::new(schema, gen, goal.context);
    engine.derives(&sigma, goal.lhs, goal.rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, GeneralisationTopology, Intension};

    fn intension() -> Intension {
        Intension::analyse(employee_schema())
    }

    #[test]
    fn soundness_on_employee_schema() {
        let i = intension();
        let s = i.schema();
        let gen = i.generalisation();
        let worksfor = s.type_id("worksfor").unwrap();
        let engine = ArmstrongEngine::new(s, gen, worksfor);
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        let person = s.type_id("person").unwrap();
        for sigma in [
            vec![],
            vec![(employee, department)],
            vec![(person, department), (department, person)],
        ] {
            let report = verify_soundness(&engine, &sigma);
            assert!(report.unsound.is_empty(), "{report:?}");
            assert!(report.checked > 0);
        }
    }

    /// R6: the employee schema explicates all relevant units, so the
    /// system is also complete there.
    #[test]
    fn completeness_on_employee_schema() {
        let i = intension();
        let s = i.schema();
        let gen = i.generalisation();
        let worksfor = s.type_id("worksfor").unwrap();
        let engine = ArmstrongEngine::new(s, gen, worksfor);
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        for sigma in [vec![], vec![(employee, department)]] {
            let report = verify_completeness(&engine, &sigma);
            assert!(report.incomplete.is_empty(), "{report:?}");
            assert!(report.checked > 0);
        }
    }

    #[test]
    fn counterexample_witnesses_underivability() {
        let i = intension();
        let s = i.schema();
        let gen = GeneralisationTopology::of_schema(s);
        let worksfor = s.type_id("worksfor").unwrap();
        let person = s.type_id("person").unwrap();
        let department = s.type_id("department").unwrap();
        // person → department is not implied by the empty Σ.
        let goal = Fd::new(&gen, person, department, worksfor).unwrap();
        assert!(counterexample_is_valid(&i, &[], &goal));
    }

    #[test]
    fn no_counterexample_for_implied_goals() {
        let i = intension();
        let s = i.schema();
        let gen = GeneralisationTopology::of_schema(s);
        let worksfor = s.type_id("worksfor").unwrap();
        let employee = s.type_id("employee").unwrap();
        let person = s.type_id("person").unwrap();
        // employee → person is reflexively implied.
        let goal = Fd::new(&gen, employee, person, worksfor).unwrap();
        assert!(counterexample(&i, &[], &goal).is_none());
    }

    #[test]
    fn global_derivation_uses_propagation() {
        let i = intension();
        let s = i.schema();
        let gen = GeneralisationTopology::of_schema(s);
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        let manager = s.type_id("manager").unwrap();
        // Base FD stated at the employee level…
        let base = Fd::new(&gen, person, employee, employee).unwrap();
        // …must hold at the manager level by propagation.
        let goal = Fd::new(&gen, person, employee, manager).unwrap();
        assert!(derivable_globally(&i, &[base], &goal));
        // But not at unrelated contexts lacking the base.
        let unrelated = Fd::new(&gen, person, person, person).unwrap();
        assert!(derivable_globally(&i, &[], &unrelated)); // reflexive
        let not_derivable = Fd::new(&gen, person, employee, employee).unwrap();
        assert!(!derivable_globally(&i, &[], &not_derivable));
    }
}
