//! The Armstrong axioms, rephrased over entity types (§5.2), as an
//! inference engine.
//!
//! ```text
//! A1  g ∈ G_e                 ⇒  fd(e, g, e)          (reflexivity)
//! A2  fd(f, g, e)  iff  ∀ h ∈ G_g : fd(f, h, e)       (union/decomposition)
//! A3  fd(f, g, e) ∧ fd(g, h, e)  ⇒  fd(f, h, e)       (transitivity)
//! ```
//!
//! "Note 2 is sound because of the Extension Axiom": the ⇐ direction of A2
//! assembles `g` from its generalisations, which is only information-sound
//! when `g` carries no attribute of its own beyond its contributors —
//! exactly the compound types whose attribute set equals the union of
//! their contributors' sets. The engine applies the assembling rule under
//! that proviso; [`crate::implication`] measures what this costs in
//! completeness on schemas that ignore the Integrity Axiom's discipline of
//! explicating every semantic unit as an entity type.

use std::collections::BTreeSet;

use toposem_core::{contributors::computed_contributors, GeneralisationTopology, Schema, TypeId};
use toposem_topology::BitSet;

use crate::fd::Fd;

/// An Armstrong-axiom inference engine for a fixed context.
pub struct ArmstrongEngine<'a> {
    schema: &'a Schema,
    gen: &'a GeneralisationTopology,
    context: TypeId,
    /// Types assemblable by A2⇐: their attribute set equals the union of
    /// their direct generalisations' sets.
    assemblable: Vec<(TypeId, Vec<TypeId>)>,
}

impl<'a> ArmstrongEngine<'a> {
    /// Sets up inference in the context `h`; the type universe is `G_h`.
    pub fn new(schema: &'a Schema, gen: &'a GeneralisationTopology, context: TypeId) -> Self {
        let mut assemblable = Vec::new();
        for yi in gen.g_set(context).iter() {
            let y = TypeId(yi as u32);
            let co = computed_contributors(schema, gen, y);
            if co.is_empty() {
                continue;
            }
            let mut union = BitSet::empty(schema.attr_count());
            for ci in co.iter() {
                union.union_with(schema.attrs_of(TypeId(ci as u32)));
            }
            if &union == schema.attrs_of(y) {
                assemblable.push((y, co.iter().map(|i| TypeId(i as u32)).collect()));
            }
        }
        ArmstrongEngine {
            schema,
            gen,
            context,
            assemblable,
        }
    }

    /// The context of this engine.
    pub fn context(&self) -> TypeId {
        self.context
    }

    /// The type universe `G_context`.
    pub fn universe(&self) -> Vec<TypeId> {
        self.gen
            .g_set(self.context)
            .iter()
            .map(|i| TypeId(i as u32))
            .collect()
    }

    /// All types derivable from `x` under `sigma` (given FDs in this
    /// context, as lhs/rhs pairs): the entity-type closure `x⁺`.
    ///
    /// Saturates three rules to a fixpoint:
    /// - A1: every generalisation of a derived type is derived;
    /// - A3 (+A2⇒): for `(u, v) ∈ sigma` with `u` derived, `v` is derived;
    /// - A2⇐ (Extension-Axiom assembly): an assemblable `y` whose direct
    ///   generalisations are all derived is derived.
    pub fn closure_of(&self, sigma: &[(TypeId, TypeId)], x: TypeId) -> BTreeSet<TypeId> {
        let mut derived: BTreeSet<TypeId> = BTreeSet::new();
        let mut frontier = vec![x];
        // A1 seeds: x and all its generalisations (fd(x, g, ·) for g ∈ G_x).
        while let Some(t) = frontier.pop() {
            if !derived.insert(t) {
                continue;
            }
            for gi in self.gen.g_set(t).iter() {
                frontier.push(TypeId(gi as u32));
            }
        }
        loop {
            let mut grew = false;
            for (u, v) in sigma {
                if derived.contains(u) && !derived.contains(v) {
                    // A3: x → u → v; then A1 closes v's generalisations.
                    let mut stack = vec![*v];
                    while let Some(t) = stack.pop() {
                        if derived.insert(t) {
                            grew = true;
                            for gi in self.gen.g_set(t).iter() {
                                stack.push(TypeId(gi as u32));
                            }
                        }
                    }
                }
            }
            for (y, co) in &self.assemblable {
                if !derived.contains(y) && co.iter().all(|c| derived.contains(c)) {
                    derived.insert(*y);
                    grew = true;
                }
            }
            if !grew {
                return derived;
            }
        }
    }

    /// Is `fd(x, y, context)` derivable from `sigma`?
    pub fn derives(&self, sigma: &[(TypeId, TypeId)], x: TypeId, y: TypeId) -> bool {
        self.closure_of(sigma, x).contains(&y)
    }

    /// The full derivable relation over `G_context × G_context`.
    pub fn full_closure(&self, sigma: &[(TypeId, TypeId)]) -> BTreeSet<(TypeId, TypeId)> {
        let mut out = BTreeSet::new();
        for x in self.universe() {
            for y in self.closure_of(sigma, x) {
                out.insert((x, y));
            }
        }
        out
    }

    /// Derivable FDs as [`Fd`] values.
    pub fn derivable_fds(&self, sigma: &[(TypeId, TypeId)]) -> Vec<Fd> {
        self.full_closure(sigma)
            .into_iter()
            .map(|(x, y)| Fd::unchecked(x, y, self.context))
            .collect()
    }

    /// The attribute-level closure of `start` under the attribute images
    /// of `sigma` — the classical Armstrong baseline the paper's
    /// type-level system is measured against.
    pub fn attr_closure(&self, sigma: &[(TypeId, TypeId)], start: &BitSet) -> BitSet {
        let rules: Vec<(&BitSet, &BitSet)> = sigma
            .iter()
            .map(|(u, v)| (self.schema.attrs_of(*u), self.schema.attrs_of(*v)))
            .collect();
        let mut closed = start.clone();
        loop {
            let mut grew = false;
            for (lhs, rhs) in &rules {
                if lhs.is_subset(&closed) && !rhs.is_subset(&closed) {
                    closed.union_with(rhs);
                    grew = true;
                }
            }
            if !grew {
                return closed;
            }
        }
    }

    /// Semantic implication via the attribute baseline: does every
    /// relation over `A_context` satisfying `sigma` (read attribute-wise)
    /// satisfy `x → y`? Classical soundness/completeness of attribute
    /// closure makes this decidable by one closure computation.
    pub fn implied_semantically(&self, sigma: &[(TypeId, TypeId)], x: TypeId, y: TypeId) -> bool {
        let closed = self.attr_closure(sigma, self.schema.attrs_of(x));
        self.schema.attrs_of(y).is_subset(&closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::employee_schema;

    struct Setup {
        schema: Schema,
        gen: GeneralisationTopology,
    }

    fn setup() -> Setup {
        let schema = employee_schema();
        let gen = GeneralisationTopology::of_schema(&schema);
        Setup { schema, gen }
    }

    #[test]
    fn reflexivity_axiom_a1() {
        let s = setup();
        let worksfor = s.schema.type_id("worksfor").unwrap();
        let engine = ArmstrongEngine::new(&s.schema, &s.gen, worksfor);
        // With empty sigma, every type derives exactly its generalisations.
        let employee = s.schema.type_id("employee").unwrap();
        let person = s.schema.type_id("person").unwrap();
        let closure = engine.closure_of(&[], employee);
        assert!(closure.contains(&employee));
        assert!(closure.contains(&person));
        assert!(!closure.contains(&worksfor));
    }

    #[test]
    fn transitivity_axiom_a3() {
        let s = setup();
        let worksfor = s.schema.type_id("worksfor").unwrap();
        let person = s.schema.type_id("person").unwrap();
        let employee = s.schema.type_id("employee").unwrap();
        let department = s.schema.type_id("department").unwrap();
        let engine = ArmstrongEngine::new(&s.schema, &s.gen, worksfor);
        // person → employee, employee → department ⊢ person → department.
        let sigma = [(person, employee), (employee, department)];
        assert!(engine.derives(&sigma, person, department));
    }

    #[test]
    fn assembly_axiom_a2_backward() {
        let s = setup();
        let worksfor = s.schema.type_id("worksfor").unwrap();
        let person = s.schema.type_id("person").unwrap();
        let employee = s.schema.type_id("employee").unwrap();
        let department = s.schema.type_id("department").unwrap();
        let engine = ArmstrongEngine::new(&s.schema, &s.gen, worksfor);
        // worksfor is assemblable from {employee, department}. Deriving
        // both from employee assembles worksfor itself:
        // employee → department ⊢ employee → worksfor.
        let sigma = [(employee, department)];
        assert!(engine.derives(&sigma, employee, worksfor));
        // But person alone derives neither.
        assert!(!engine.derives(&sigma, person, worksfor));
    }

    #[test]
    fn manager_is_not_assemblable() {
        let s = setup();
        let manager = s.schema.type_id("manager").unwrap();
        let employee = s.schema.type_id("employee").unwrap();
        let engine = ArmstrongEngine::new(&s.schema, &s.gen, manager);
        // manager has budget beyond its contributor employee, so nothing
        // short of manager itself derives manager.
        assert!(!engine.derives(&[], employee, manager));
        assert!(engine.derives(&[], manager, employee));
    }

    #[test]
    fn type_derivation_is_sound_for_attribute_semantics() {
        let s = setup();
        let worksfor = s.schema.type_id("worksfor").unwrap();
        let engine = ArmstrongEngine::new(&s.schema, &s.gen, worksfor);
        let universe = engine.universe();
        let person = s.schema.type_id("person").unwrap();
        let employee = s.schema.type_id("employee").unwrap();
        let department = s.schema.type_id("department").unwrap();
        let sigma = [(person, department), (employee, department)];
        for &x in &universe {
            for &y in &universe {
                if engine.derives(&sigma, x, y) {
                    assert!(
                        engine.implied_semantically(&sigma, x, y),
                        "unsound: derived {} -> {} without semantic implication",
                        s.schema.type_name(x),
                        s.schema.type_name(y)
                    );
                }
            }
        }
    }

    #[test]
    fn attr_closure_baseline() {
        let s = setup();
        let worksfor = s.schema.type_id("worksfor").unwrap();
        let engine = ArmstrongEngine::new(&s.schema, &s.gen, worksfor);
        let employee = s.schema.type_id("employee").unwrap();
        let department = s.schema.type_id("department").unwrap();
        let sigma = [(employee, department)];
        let closed = engine.attr_closure(&sigma, s.schema.attrs_of(employee));
        // employee's attrs plus department's attrs.
        let expect = s
            .schema
            .attrs_of(employee)
            .union(s.schema.attrs_of(department));
        assert_eq!(closed, expect);
    }

    #[test]
    fn full_closure_contains_nucleus() {
        let s = setup();
        let worksfor = s.schema.type_id("worksfor").unwrap();
        let engine = ArmstrongEngine::new(&s.schema, &s.gen, worksfor);
        let closure = engine.full_closure(&[]);
        // Every (x, g) with g ∈ G_x must be present (A1).
        for x in engine.universe() {
            for gi in s.gen.g_set(x).iter() {
                assert!(closure.contains(&(x, TypeId(gi as u32))));
            }
        }
    }
}
