//! Dependency mappings (§5.3): `F_e : S_e → DF_e` with the maps `pF` and
//! `πF`, mirroring the extension mappings of §4.2.
//!
//! ```text
//! F_e(f) = fd_f ∩ DF_e                        for f ∈ S_e
//! pF(f,g,e) : F_e(f) → F_e(g)                 for S_g ⊆ S_f ⊆ S_e
//! πF^f_g   : F_e(g) → F_f(g)
//!
//! Corollary: if S_g ⊆ S_f ⊆ S_e then
//!   (a) πF^e_g = πF^e_f ∘ πF^f_g
//!   (b) pF(f,g,e) ∘ pF(e,f,e) = pF(e,g,e)
//!   (c) πF^f_g ∘ pF(f,g,e) = pF(f,g,f) ∘ πF^f_f   (naturality)
//! ```
//!
//! "So again we translated the ordering reached at the intensional level
//! to an ordering at a different level." Here `fd_f` is taken to be the
//! set of dependencies *satisfied by the current database state* in
//! context `f`, which by the propagation theorem grows along
//! specialisation — making every `pF` an inclusion, exactly like the
//! extension restriction maps.

use toposem_core::TypeId;
use toposem_extension::Database;

use crate::check::check_fd;
use crate::fd::Fd;
use crate::nucleus::{restrict_to_context, FdPairs};

/// `fd_f`: all FD pairs over `G_f × G_f` satisfied by the current state
/// of `db` in context `f`.
pub fn satisfied_fd_set(db: &Database, f: TypeId) -> FdPairs {
    let gen = db.intension().generalisation();
    let mut out = FdPairs::new();
    let members: Vec<TypeId> = gen.g_set(f).iter().map(|i| TypeId(i as u32)).collect();
    for &x in &members {
        for &y in &members {
            if check_fd(db, &Fd::unchecked(x, y, f)).holds() {
                out.insert((x, y));
            }
        }
    }
    out
}

/// `F_e(f) = fd_f ∩ DF_e`: the dependencies of context `f` expressible in
/// the universe of `e`. Defined for `f ∈ S_e`.
pub fn f_map(db: &Database, e: TypeId, f: TypeId) -> FdPairs {
    assert!(
        db.intension().specialisation().is_specialisation(f, e),
        "F_e(f) requires f ∈ S_e"
    );
    let gen = db.intension().generalisation();
    restrict_to_context(gen, e, &satisfied_fd_set(db, f))
}

/// Report of the §5.3 corollary checks on concrete data.
#[derive(Clone, Debug, Default)]
pub struct FdCorollaryReport {
    /// Chains `(g, f, e)` with `S_g ⊆ S_f ⊆ S_e` checked.
    pub chains_checked: usize,
    /// Propagation failures: `F_e(f) ⊄ F_e(g)` for `g ∈ S_f` (pF not an
    /// inclusion).
    pub failed_inclusion: Vec<(TypeId, TypeId, TypeId)>,
    /// Naturality failures: restricting to `e` then widening to `f`
    /// disagrees with widening first.
    pub failed_naturality: Vec<(TypeId, TypeId, TypeId)>,
}

impl FdCorollaryReport {
    /// True when every identity held.
    pub fn all_hold(&self) -> bool {
        self.failed_inclusion.is_empty() && self.failed_naturality.is_empty()
    }
}

/// Verifies the dependency-mapping corollary on every chain
/// `S_g ⊆ S_f ⊆ S_e` of the intension, against the satisfied-FD sets of
/// the current database state.
pub fn verify_fd_corollary(db: &Database) -> FdCorollaryReport {
    let schema = db.schema();
    let spec = db.intension().specialisation();
    let gen = db.intension().generalisation();
    let mut report = FdCorollaryReport::default();
    // Precompute fd_f per context.
    let satisfied: Vec<FdPairs> = schema.type_ids().map(|f| satisfied_fd_set(db, f)).collect();
    for e in schema.type_ids() {
        for f in schema.type_ids() {
            if !spec.is_specialisation(f, e) {
                continue;
            }
            for g in schema.type_ids() {
                if !spec.is_specialisation(g, f) {
                    continue;
                }
                report.chains_checked += 1;
                // (b) inclusions: F_e(e) ⊆ F_e(f) ⊆ F_e(g) — propagation.
                let fe_e = restrict_to_context(gen, e, &satisfied[e.index()]);
                let fe_f = restrict_to_context(gen, e, &satisfied[f.index()]);
                let fe_g = restrict_to_context(gen, e, &satisfied[g.index()]);
                if !(fe_e.is_subset(&fe_f) && fe_f.is_subset(&fe_g)) {
                    report.failed_inclusion.push((g, f, e));
                }
                // (a)/(c) naturality: restricting fd_g to e directly equals
                // restricting to f first, then to e.
                let via_f = restrict_to_context(
                    gen,
                    e,
                    &restrict_to_context(gen, f, &satisfied[g.index()]),
                );
                if via_f != fe_g {
                    report.failed_naturality.push((g, f, e));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog, Value};

    fn loaded_db() -> Database {
        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        let manager = s.type_id("manager").unwrap();
        let worksfor = s.type_id("worksfor").unwrap();
        for (n, a, d, b) in [("ann", 40, "sales", 100), ("bob", 30, "research", 200)] {
            db.insert_fields(
                manager,
                &[
                    ("name", Value::str(n)),
                    ("age", Value::Int(a)),
                    ("depname", Value::str(d)),
                    ("budget", Value::Int(b)),
                ],
            )
            .unwrap();
        }
        db.insert_fields(
            worksfor,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("location", Value::str("amsterdam")),
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn satisfied_sets_contain_nucleus() {
        let db = loaded_db();
        let gen = db.intension().generalisation();
        for f in db.schema().type_ids() {
            let sat = satisfied_fd_set(&db, f);
            let nuc = crate::nucleus::nucleus(gen, f);
            assert!(
                nuc.is_subset(&sat),
                "nucleus must always hold in {}",
                db.schema().type_name(f)
            );
        }
    }

    #[test]
    fn f_map_requires_specialisation() {
        let db = loaded_db();
        let s = db.schema();
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        // employee ∈ S_person: fine.
        let _ = f_map(&db, person, employee);
    }

    #[test]
    #[should_panic(expected = "requires f ∈ S_e")]
    fn f_map_panics_outside_s_e() {
        let db = loaded_db();
        let s = db.schema();
        let person = s.type_id("person").unwrap();
        let department = s.type_id("department").unwrap();
        let _ = f_map(&db, person, department);
    }

    /// R7: the dependency-mapping corollary on real data.
    #[test]
    fn corollary_holds_on_loaded_database() {
        let db = loaded_db();
        let report = verify_fd_corollary(&db);
        assert!(report.all_hold(), "{report:?}");
        assert!(report.chains_checked >= 5);
    }

    #[test]
    fn propagation_makes_f_maps_monotone() {
        let db = loaded_db();
        let s = db.schema();
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        let manager = s.type_id("manager").unwrap();
        // F_person(person) ⊆ F_person(employee) ⊆ F_person(manager).
        let a = f_map(&db, person, person);
        let b = f_map(&db, person, employee);
        let c = f_map(&db, person, manager);
        assert!(a.is_subset(&b));
        assert!(b.is_subset(&c));
    }
}
