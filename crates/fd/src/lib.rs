//! # toposem-fd
//!
//! Functional dependencies over entity types (§5 of Siebes & Kersten
//! 1987): the context-indexed FD notion, satisfaction checking via the
//! commuting-triangle theorem, the rephrased Armstrong axioms as an
//! inference engine, the propagation theorem, the nucleus / `DF_e`
//! dependency domain with its mappings, key inference, and an executable
//! soundness & completeness harness substituting for the paper's omitted
//! proofs.

pub mod armstrong;
pub mod armstrong_relation;
pub mod check;
pub mod derivation;
pub mod fd;
pub mod implication;
pub mod keys;
pub mod mapping;
pub mod min_cover;
pub mod nucleus;
pub mod propagation;

pub use armstrong::ArmstrongEngine;
pub use armstrong_relation::armstrong_relation;
pub use check::{check_fd, satisfies, triangle_commutes, violated, FdCheck};
pub use derivation::{check_proof, derive_with_proof, Derivation};
pub use fd::{Fd, FdError};
pub use implication::{
    counterexample, counterexample_is_valid, derivable_globally, verify_completeness,
    verify_soundness, CompletenessReport, SoundnessReport,
};
pub use keys::{is_superkey, minimal_keys};
pub use mapping::{f_map, satisfied_fd_set, verify_fd_corollary, FdCorollaryReport};
pub use min_cover::{equivalent, minimal_cover};
pub use nucleus::{
    df_completion, is_in_df, nucleus, restrict_to_context, transitive_closure, FdPairs,
};
pub use propagation::{propagate, propagated_contexts};
