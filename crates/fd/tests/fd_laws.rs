//! Property-based substitutes for the §5 proofs the paper omits.
//!
//! - Soundness of the type-level Armstrong calculus: everything derivable
//!   is semantically implied — on *arbitrary* random schemas.
//! - Completeness: on schemas that honour the Integrity Axiom's discipline
//!   (every nonempty intersection of entity types is itself explicated as
//!   an entity type), everything semantically implied is derivable.
//! - The propagation theorem, checked semantically on random extensions.
//! - Counterexample construction: two-tuple Armstrong witnesses.

use proptest::prelude::*;
use toposem_core::{GeneralisationTopology, Intension, Schema, SchemaBuilder, TypeId};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, DomainSpec, Value};
use toposem_fd::{
    check_fd, counterexample_is_valid, satisfies, verify_completeness, verify_soundness,
    ArmstrongEngine, Fd,
};

const N_ATTRS: usize = 5;

/// Random schema from distinct attribute-set masks.
fn schema_from_masks(masks: &[u32]) -> Schema {
    let mut b = SchemaBuilder::new();
    for i in 0..N_ATTRS {
        b.attribute(&format!("a{i}"), &format!("d{i}"));
    }
    let names: Vec<String> = (0..N_ATTRS).map(|i| format!("a{i}")).collect();
    for (t, mask) in masks.iter().enumerate() {
        let attrs: Vec<&str> = (0..N_ATTRS)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| names[i].as_str())
            .collect();
        b.entity_type(&format!("t{t}"), &attrs);
    }
    b.build_strict().expect("distinct masks")
}

fn random_masks() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(1u32..(1 << N_ATTRS), 1..10).prop_map(|s| s.into_iter().collect())
}

/// Closes a mask set under nonempty pairwise intersection — the Integrity
/// Axiom's "explicate every semantic unit" discipline.
fn intersection_close(masks: &[u32]) -> Vec<u32> {
    let mut set: std::collections::BTreeSet<u32> = masks.iter().copied().collect();
    loop {
        let mut additions = Vec::new();
        for &a in &set {
            for &b in &set {
                let c = a & b;
                if c != 0 && !set.contains(&c) {
                    additions.push(c);
                }
            }
        }
        if additions.is_empty() {
            return set.into_iter().collect();
        }
        set.extend(additions);
    }
}

/// Random Σ for a context: pairs of generalisations of the context.
fn random_sigma(
    schema: &Schema,
    gen: &GeneralisationTopology,
    context: TypeId,
    picks: &[(usize, usize)],
) -> Vec<(TypeId, TypeId)> {
    let members: Vec<TypeId> = gen
        .g_set(context)
        .iter()
        .map(|i| TypeId(i as u32))
        .collect();
    let _ = schema;
    picks
        .iter()
        .map(|(i, j)| (members[i % members.len()], members[j % members.len()]))
        .collect()
}

proptest! {
    /// Soundness on arbitrary schemas: derivable ⇒ semantically implied.
    #[test]
    fn armstrong_is_sound(
        masks in random_masks(),
        picks in prop::collection::vec((0usize..8, 0usize..8), 0..5),
        ctx_pick in 0usize..8,
    ) {
        let schema = schema_from_masks(&masks);
        let gen = GeneralisationTopology::of_schema(&schema);
        let context = TypeId((ctx_pick % schema.type_count()) as u32);
        let sigma = random_sigma(&schema, &gen, context, &picks);
        let engine = ArmstrongEngine::new(&schema, &gen, context);
        let report = verify_soundness(&engine, &sigma);
        prop_assert!(report.unsound.is_empty(), "{:?}", report.unsound);
    }

    /// R6 headline: completeness on intersection-closed schemas.
    #[test]
    fn armstrong_is_complete_on_explicated_schemas(
        masks in random_masks(),
        picks in prop::collection::vec((0usize..8, 0usize..8), 0..5),
        ctx_pick in 0usize..8,
    ) {
        let closed = intersection_close(&masks);
        if closed.len() > 24 {
            return Ok(()); // keep the exhaustive sweep cheap
        }
        let schema = schema_from_masks(&closed);
        let gen = GeneralisationTopology::of_schema(&schema);
        let context = TypeId((ctx_pick % schema.type_count()) as u32);
        let sigma = random_sigma(&schema, &gen, context, &picks);
        let engine = ArmstrongEngine::new(&schema, &gen, context);
        let report = verify_completeness(&engine, &sigma);
        prop_assert!(
            report.incomplete.is_empty(),
            "incomplete on intersection-closed schema: {:?}",
            report.incomplete
        );
    }

    /// Counterexamples: for underivable goals that are also semantically
    /// unimplied, the two-tuple witness satisfies Σ and violates the goal.
    #[test]
    fn counterexamples_are_genuine(
        masks in random_masks(),
        picks in prop::collection::vec((0usize..8, 0usize..8), 0..4),
        ctx_pick in 0usize..8,
        goal_pick in (0usize..8, 0usize..8),
    ) {
        let schema = schema_from_masks(&masks);
        let gen = GeneralisationTopology::of_schema(&schema);
        let context = TypeId((ctx_pick % schema.type_count()) as u32);
        let sigma = random_sigma(&schema, &gen, context, &picks);
        let engine = ArmstrongEngine::new(&schema, &gen, context);
        let members: Vec<TypeId> = gen.g_set(context).iter().map(|i| TypeId(i as u32)).collect();
        let x = members[goal_pick.0 % members.len()];
        let y = members[goal_pick.1 % members.len()];
        if !engine.implied_semantically(&sigma, x, y) {
            let intension = Intension::analyse(schema);
            let goal = Fd::unchecked(x, y, context);
            prop_assert!(counterexample_is_valid(&intension, &sigma, &goal));
        }
    }

    /// The propagation theorem semantically: any database (random
    /// extensions under Eager containment) satisfying fd(e,f,g) satisfies
    /// fd(e,f,h) for h ∈ S_g.
    #[test]
    fn propagation_theorem_semantic(
        masks in random_masks(),
        rows in prop::collection::vec(prop::collection::vec(0i64..3, N_ATTRS), 0..12),
    ) {
        let schema = schema_from_masks(&masks);
        let intension = Intension::analyse(schema.clone());
        let mut catalog = DomainCatalog::new();
        for i in 0..N_ATTRS {
            catalog.bind(&format!("d{i}"), DomainSpec::AnyInt);
        }
        let mut db = Database::new(intension.clone(), catalog, ContainmentPolicy::Eager);
        // Load each row into a round-robin entity type.
        for (k, row) in rows.iter().enumerate() {
            let e = TypeId((k % schema.type_count()) as u32);
            let fields: Vec<(toposem_core::AttrId, Value)> = schema
                .attrs_of(e)
                .iter()
                .map(|a| (toposem_core::AttrId(a as u32), Value::Int(row[a])))
                .collect();
            db.insert(e, toposem_extension::Instance::from_parts(fields));
        }
        let gen = intension.generalisation();
        let spec = intension.specialisation();
        for g in schema.type_ids() {
            let members: Vec<TypeId> =
                gen.g_set(g).iter().map(|i| TypeId(i as u32)).collect();
            for &e in &members {
                for &f in &members {
                    let base = Fd::unchecked(e, f, g);
                    if check_fd(&db, &base).holds() {
                        for hi in spec.s_set(g).iter() {
                            let h = TypeId(hi as u32);
                            let prop_fd = Fd::unchecked(e, f, h);
                            prop_assert!(
                                check_fd(&db, &prop_fd).holds(),
                                "propagation failed: {} at {}",
                                base.display(&schema),
                                schema.type_name(h)
                            );
                        }
                    }
                }
            }
        }
    }

    /// Derived FDs hold on any database satisfying Σ (soundness against
    /// real data, not just the attribute baseline).
    #[test]
    fn derived_fds_hold_on_satisfying_databases(
        masks in random_masks(),
        rows in prop::collection::vec(prop::collection::vec(0i64..2, N_ATTRS), 0..8),
        picks in prop::collection::vec((0usize..8, 0usize..8), 0..3),
        ctx_pick in 0usize..8,
    ) {
        let schema = schema_from_masks(&masks);
        let intension = Intension::analyse(schema.clone());
        let mut catalog = DomainCatalog::new();
        for i in 0..N_ATTRS {
            catalog.bind(&format!("d{i}"), DomainSpec::AnyInt);
        }
        let context = TypeId((ctx_pick % schema.type_count()) as u32);
        let mut db = Database::new(intension.clone(), catalog, ContainmentPolicy::Eager);
        for row in &rows {
            let fields: Vec<(toposem_core::AttrId, Value)> = schema
                .attrs_of(context)
                .iter()
                .map(|a| (toposem_core::AttrId(a as u32), Value::Int(row[a])))
                .collect();
            db.insert(context, toposem_extension::Instance::from_parts(fields));
        }
        let gen = intension.generalisation();
        let sigma = random_sigma(&schema, gen, context, &picks);
        let sigma_fds: Vec<Fd> = sigma
            .iter()
            .map(|(u, v)| Fd::unchecked(*u, *v, context))
            .collect();
        if satisfies(&db, &sigma_fds) {
            let engine = ArmstrongEngine::new(&schema, gen, context);
            for fd in engine.derivable_fds(&sigma) {
                prop_assert!(
                    check_fd(&db, &fd).holds(),
                    "derived FD {} violated",
                    fd.display(&schema)
                );
            }
        }
    }
}

/// A deterministic incompleteness witness on a schema that hides its
/// intersections — documents why the Integrity Axiom's explication
/// discipline matters (recorded in EXPERIMENTS.md under R6).
#[test]
fn incompleteness_without_explicated_intersections() {
    // Types: X = {a0}, Y = {a0, a1}, W = {a1, a2}. Σ = {X → W}.
    // Semantically {a0}⁺ = {a0, a1, a2} ⊇ A_Y, so X → Y is implied; but the
    // type calculus cannot assemble Y (its only generalisation is X and
    // A_Y ≠ A_X), so X → Y is underivable.
    let mut b = SchemaBuilder::new();
    for i in 0..3 {
        b.attribute(&format!("a{i}"), &format!("d{i}"));
    }
    let x = b.entity_type("x", &["a0"]);
    let y = b.entity_type("y", &["a0", "a1"]);
    let w = b.entity_type("w", &["a1", "a2"]);
    // Context: a type specialising everything.
    b.entity_type("all", &["a0", "a1", "a2"]);
    let schema = b.build_strict().unwrap();
    let gen = GeneralisationTopology::of_schema(&schema);
    let context = schema.type_id("all").unwrap();
    let engine = ArmstrongEngine::new(&schema, &gen, context);
    let sigma = [(x, w)];
    assert!(engine.implied_semantically(&sigma, x, y));
    assert!(!engine.derives(&sigma, x, y));
    let report = verify_completeness(&engine, &sigma);
    assert!(report.incomplete.contains(&(x, y)));
    // Explicating the missing unit {a1} restores completeness.
    let mut b2 = SchemaBuilder::new();
    for i in 0..3 {
        b2.attribute(&format!("a{i}"), &format!("d{i}"));
    }
    b2.entity_type("x", &["a0"]);
    b2.entity_type("y", &["a0", "a1"]);
    b2.entity_type("w", &["a1", "a2"]);
    b2.entity_type("b", &["a1"]); // the explicated intersection
    b2.entity_type("all", &["a0", "a1", "a2"]);
    let schema2 = b2.build_strict().unwrap();
    let gen2 = GeneralisationTopology::of_schema(&schema2);
    let ctx2 = schema2.type_id("all").unwrap();
    let engine2 = ArmstrongEngine::new(&schema2, &gen2, ctx2);
    let x2 = schema2.type_id("x").unwrap();
    let y2 = schema2.type_id("y").unwrap();
    let w2 = schema2.type_id("w").unwrap();
    assert!(engine2.derives(&[(x2, w2)], x2, y2));
    let report2 = verify_completeness(&engine2, &[(x2, w2)]);
    assert!(report2.incomplete.is_empty());
}
