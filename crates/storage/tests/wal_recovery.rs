//! Crash-recovery integration tests for the durable engine.
//!
//! The contract under test: after any crash, `Engine::recover` yields
//! exactly the state of some *committed prefix* of the workload —
//! checkpointed state plus every transaction whose `Commit` record
//! survived intact, with uncommitted suffixes discarded, a torn final
//! record tolerated, and indexes and statistics rebuilt.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Instance, Value};
use toposem_storage::{snapshot, Engine, EngineError};
use toposem_wal::{FlushPolicy, Wal, WalConfig};

const NAMES: [&str; 5] = ["ann", "bob", "carol", "dave", "eve"];
const DEPS: [&str; 3] = ["sales", "research", "admin"];

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "toposem-recovery-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fresh_db() -> Database {
    Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    )
}

fn durable_engine(dir: &Path, flush: FlushPolicy) -> Engine {
    let cfg = WalConfig {
        flush,
        segment_bytes: 2048, // small: recovery tests should cross segments
    };
    Engine::durable(fresh_db(), Wal::create(dir, cfg).unwrap()).unwrap()
}

/// Deep equality of two engines' databases: canonical snapshot bytes
/// (schema, policy, every stored relation) must agree, and so must the
/// semantic extensions.
fn assert_same_database(recovered: &Engine, shadow: &Engine, context: &str) {
    let a = recovered.with_db(|db| snapshot::to_vec(db).unwrap());
    let b = shadow.with_db(|db| snapshot::to_vec(db).unwrap());
    assert_eq!(a, b, "database state diverged: {context}");
    recovered.with_db(|rdb| {
        shadow.with_db(|sdb| {
            for e in rdb.schema().type_ids() {
                assert_eq!(
                    rdb.extension(e),
                    sdb.extension(e),
                    "extension of {} diverged: {context}",
                    rdb.schema().type_name(e)
                );
            }
        })
    });
}

fn insert_employee(eng: &Engine, name: &str, age: i64, dep: &str) {
    let employee = eng.with_db(|db| db.schema().type_id("employee").unwrap());
    eng.insert(
        employee,
        &[
            ("name", Value::str(name)),
            ("age", Value::Int(age)),
            ("depname", Value::str(dep)),
        ],
    )
    .unwrap();
}

/// The acceptance scenario: checkpoint + N committed transactions + one
/// uncommitted transaction, crash, recover. Recovery must restore
/// exactly the committed state — indexes and statistics included —
/// verified by deep equality against a shadow in-memory engine that
/// executed only the committed work.
#[test]
fn kill_and_recover_restores_exactly_the_committed_state() {
    let dir = temp_dir("kill");
    let eng = durable_engine(&dir, FlushPolicy::PerCommit);
    let shadow = Engine::new(fresh_db());
    let (employee, manager, depname) = eng.with_db(|db| {
        let s = db.schema();
        (
            s.type_id("employee").unwrap(),
            s.type_id("manager").unwrap(),
            s.attr_id("depname").unwrap(),
        )
    });

    // Pre-checkpoint state: an index and a couple of rows.
    eng.create_index(employee, depname).unwrap();
    shadow.create_index(employee, depname).unwrap();
    for (n, a, d) in [("ann", 40, "sales"), ("bob", 30, "research")] {
        insert_employee(&eng, n, a, d);
        insert_employee(&shadow, n, a, d);
    }
    eng.checkpoint().unwrap();

    // N committed transactions after the checkpoint, mirrored on the
    // shadow: inserts (with eager propagations via manager) and a
    // cascading delete.
    for (n, a, d, b) in [("carol", 35, "sales", 100), ("dave", 45, "admin", 70)] {
        eng.begin().unwrap();
        eng.insert(
            manager,
            &[
                ("name", Value::str(n)),
                ("age", Value::Int(a)),
                ("depname", Value::str(d)),
                ("budget", Value::Int(b)),
            ],
        )
        .unwrap();
        eng.commit().unwrap();
        shadow
            .insert(
                manager,
                &[
                    ("name", Value::str(n)),
                    ("age", Value::Int(a)),
                    ("depname", Value::str(d)),
                    ("budget", Value::Int(b)),
                ],
            )
            .unwrap();
    }
    let bob = eng.with_db(|db| {
        Instance::new(
            db.schema(),
            db.catalog(),
            employee,
            &[
                ("name", Value::str("bob")),
                ("age", Value::Int(30)),
                ("depname", Value::str("research")),
            ],
        )
        .unwrap()
    });
    eng.begin().unwrap();
    assert_eq!(eng.delete(employee, &bob).unwrap(), 1);
    eng.commit().unwrap();
    shadow.delete(employee, &bob).unwrap();

    // One transaction that never commits: the crash victim.
    eng.begin().unwrap();
    insert_employee(&eng, "ghost", 99, "admin");
    eng.sync().unwrap(); // its records reach disk — but no Commit does
    drop(eng); // crash

    let recovered = Engine::recover(&dir).unwrap();
    assert_same_database(&recovered, &shadow, "after kill-and-recover");
    // The uncommitted insert left no trace.
    assert!(recovered
        .lookup(employee, depname, &Value::str("admin"))
        .iter()
        .all(|t| t.get(eng_attr(&recovered, "name")) != Some(&Value::str("ghost"))));
    // Indexes were rebuilt (the lookup above used one)…
    assert_eq!(recovered.indexed_attr(employee), Some(depname));
    assert_eq!(
        recovered
            .lookup(employee, depname, &Value::str("sales"))
            .len(),
        shadow.lookup(employee, depname, &Value::str("sales")).len(),
    );
    // …and statistics agree with the shadow's.
    let (rs, ss) = (recovered.statistics(), shadow.statistics());
    recovered.with_db(|db| {
        for e in db.schema().type_ids() {
            assert_eq!(rs.cardinality(e), ss.cardinality(e));
        }
    });
    fs::remove_dir_all(&dir).unwrap();
}

fn eng_attr(eng: &Engine, name: &str) -> toposem_core::AttrId {
    eng.with_db(|db| db.schema().attr_id(name).unwrap())
}

/// A durable engine survives close/reopen cycles through `Engine::open`,
/// continuing the same log.
#[test]
fn open_continues_the_log_across_restarts() {
    let dir = temp_dir("reopen");
    let cfg = WalConfig {
        flush: FlushPolicy::PerCommit,
        segment_bytes: 2048,
    };
    let eng = durable_engine(&dir, FlushPolicy::PerCommit);
    insert_employee(&eng, "ann", 40, "sales");
    drop(eng);

    let eng = Engine::open(&dir, cfg).unwrap();
    assert!(eng.is_durable());
    insert_employee(&eng, "bob", 30, "research");
    eng.checkpoint().unwrap();
    insert_employee(&eng, "carol", 25, "admin");
    drop(eng);

    let recovered = Engine::recover(&dir).unwrap();
    let shadow = Engine::new(fresh_db());
    for (n, a, d) in [
        ("ann", 40, "sales"),
        ("bob", 30, "research"),
        ("carol", 25, "admin"),
    ] {
        insert_employee(&shadow, n, a, d);
    }
    assert_same_database(&recovered, &shadow, "after two restarts");
    fs::remove_dir_all(&dir).unwrap();
}

/// Declared FDs survive recovery: a violating insert that the live
/// engine would reject is also rejected after a restart, both via
/// `recover` (read-only) and `open` (continue).
#[test]
fn declared_fds_survive_recovery() {
    use toposem_core::GeneralisationTopology;
    use toposem_fd::Fd;

    let dir = temp_dir("fds");
    let eng = durable_engine(&dir, FlushPolicy::PerCommit);
    let (worksfor, fd) = eng.with_db(|db| {
        let s = db.schema();
        let gen = GeneralisationTopology::of_schema(s);
        (
            s.type_id("worksfor").unwrap(),
            Fd::new(
                &gen,
                s.type_id("employee").unwrap(),
                s.type_id("department").unwrap(),
                s.type_id("worksfor").unwrap(),
            )
            .unwrap(),
        )
    });
    eng.declare_fd(fd).unwrap();
    eng.insert(
        worksfor,
        &[
            ("name", Value::str("ann")),
            ("age", Value::Int(40)),
            ("depname", Value::str("sales")),
            ("location", Value::str("amsterdam")),
        ],
    )
    .unwrap();
    // Checkpoint so the declaration must survive via checkpoint meta
    // too, not just the log record.
    eng.checkpoint().unwrap();
    drop(eng);

    let violation = [
        ("name", Value::str("ann")),
        ("age", Value::Int(40)),
        ("depname", Value::str("sales")),
        ("location", Value::str("utrecht")),
    ];
    let recovered = Engine::recover(&dir).unwrap();
    assert!(
        matches!(
            recovered.insert(worksfor, &violation),
            Err(EngineError::FdViolation(_))
        ),
        "recovery must restore FD enforcement"
    );
    let cfg = WalConfig {
        flush: FlushPolicy::PerCommit,
        segment_bytes: 2048,
    };
    let reopened = Engine::open(&dir, cfg).unwrap();
    assert!(
        matches!(
            reopened.insert(worksfor, &violation),
            Err(EngineError::FdViolation(_))
        ),
        "open must restore FD enforcement"
    );
    drop(reopened);
    fs::remove_dir_all(&dir).unwrap();
}

/// `drop_index` is durably logged: recovery replays creates *and* drops
/// in log order, so a create/drop/create history converges to exactly
/// one live index, and a dropped index stays dropped across restarts
/// and checkpoints.
#[test]
fn drop_index_survives_recovery() {
    use toposem_storage::IndexKind;

    let dir = temp_dir("dropidx");
    let eng = durable_engine(&dir, FlushPolicy::PerCommit);
    let (employee, depname, age) = eng.with_db(|db| {
        let s = db.schema();
        (
            s.type_id("employee").unwrap(),
            s.attr_id("depname").unwrap(),
            s.attr_id("age").unwrap(),
        )
    });
    insert_employee(&eng, "ann", 40, "sales");
    eng.create_index(employee, depname).unwrap();
    eng.create_ord_index(employee, age).unwrap();
    // Drop the hash index; then create/drop/create the same ordered
    // index so replay must track the definition list in log order.
    assert!(eng
        .drop_index(employee, IndexKind::Hash, &[depname])
        .unwrap());
    assert!(eng
        .drop_index(employee, IndexKind::Ordered, &[age])
        .unwrap());
    eng.create_ord_index(employee, age).unwrap();
    drop(eng);

    let recovered = Engine::recover(&dir).unwrap();
    assert_eq!(
        recovered.index_defs(employee),
        vec![(IndexKind::Ordered, vec![age])],
        "recovery must replay drops in log order"
    );

    // A checkpoint after the drop must not resurrect it either.
    let cfg = WalConfig {
        flush: FlushPolicy::PerCommit,
        segment_bytes: 2048,
    };
    let reopened = Engine::open(&dir, cfg).unwrap();
    assert_eq!(
        reopened.index_defs(employee),
        vec![(IndexKind::Ordered, vec![age])]
    );
    reopened.checkpoint().unwrap();
    assert!(reopened
        .drop_index(employee, IndexKind::Ordered, &[age])
        .unwrap());
    drop(reopened);
    let recovered = Engine::recover(&dir).unwrap();
    assert!(
        recovered.index_defs(employee).is_empty(),
        "a post-checkpoint drop must survive recovery"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durability_api_guards() {
    let dir = temp_dir("guards");
    let volatile = Engine::new(fresh_db());
    assert!(!volatile.is_durable());
    assert_eq!(volatile.checkpoint(), Err(EngineError::NotDurable));
    assert_eq!(volatile.sync(), Err(EngineError::NotDurable));

    let eng = durable_engine(&dir, FlushPolicy::PerCommit);
    eng.begin().unwrap();
    // Checkpoints must capture transaction-consistent states only.
    assert_eq!(eng.checkpoint(), Err(EngineError::TransactionActive));
    eng.rollback().unwrap();
    eng.checkpoint().unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

/// Copies a log directory (the "crash image" the fuzzer mutates).
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let p = entry.unwrap().path();
        fs::copy(&p, dst.join(p.file_name().unwrap())).unwrap();
    }
}

/// Torn-tail fuzz: truncate the log at *every byte offset of the final
/// record* and assert recovery always yields a prefix-consistent
/// database — the full state when the record survives whole, the state
/// without the final transaction for every cut inside it, and never
/// anything else (no error, no partial transaction).
#[test]
fn torn_tail_fuzz_recovers_a_consistent_prefix_at_every_offset() {
    let dir = temp_dir("fuzz-src");
    let eng = durable_engine(&dir, FlushPolicy::PerCommit);
    let shadow = Engine::new(fresh_db());
    for (n, a, d) in [("ann", 40, "sales"), ("bob", 30, "research")] {
        insert_employee(&eng, n, a, d);
        insert_employee(&shadow, n, a, d);
    }
    // Expected prefix state *without* the final transaction.
    let before_last = shadow.with_db(|db| snapshot::to_vec(db).unwrap());
    // The final transaction, whose Commit is the log's last record.
    insert_employee(&eng, "carol", 25, "admin");
    insert_employee(&shadow, "carol", 25, "admin");
    let with_last = shadow.with_db(|db| snapshot::to_vec(db).unwrap());
    drop(eng);

    // Locate the final record: the last segment's length minus the frame
    // of the final Commit. Recovery of the untouched image must see the
    // full state; every truncation inside the final record must fall
    // back to the previous committed prefix.
    let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().ends_with(".wal"))
        .collect();
    segs.sort();
    let last_seg = segs.last().unwrap().clone();
    let full_len = fs::metadata(&last_seg).unwrap().len();
    // Find where the final record begins by scanning frame lengths.
    let bytes = fs::read(&last_seg).unwrap();
    let mut at = 20; // segment header
    let mut final_record_start = at;
    while at < bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        final_record_start = at;
        at += 8 + len;
    }
    assert_eq!(at as u64, full_len, "frame walk must land on EOF");

    let mut fell_back = 0;
    for cut in final_record_start as u64..=full_len {
        let image = temp_dir("fuzz-image");
        copy_dir(&dir, &image);
        let f = fs::OpenOptions::new()
            .write(true)
            .open(image.join(last_seg.file_name().unwrap()))
            .unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        let recovered =
            Engine::recover(&image).unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let state = recovered.with_db(|db| snapshot::to_vec(db).unwrap());
        if cut == full_len {
            assert_eq!(state, with_last, "untouched image must replay fully");
        } else {
            assert_eq!(
                state, before_last,
                "cut at byte {cut} (record starts at {final_record_start}) \
                 must yield the previous committed prefix"
            );
            fell_back += 1;
        }
        fs::remove_dir_all(&image).unwrap();
    }
    assert!(fell_back > 8, "the fuzz loop must exercise real cuts");
    fs::remove_dir_all(&dir).unwrap();
}

/// One randomly generated workload element.
#[derive(Clone, Debug)]
enum Op {
    /// Insert an employee (name, age, dep indices into small domains).
    Employee(usize, i64, usize),
    /// Insert a manager — exercises eager propagation replay.
    Manager(usize, i64, usize, i64),
    /// Delete a person by (name, age) — exercises cascade replay.
    DeletePerson(usize, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..NAMES.len(), 0i64..5, 0..DEPS.len()).prop_map(|(n, a, d)| Op::Employee(n, a, d)),
        (0..NAMES.len(), 0i64..5, 0..DEPS.len(), 0i64..4)
            .prop_map(|(n, a, d, b)| Op::Manager(n, a, d, b)),
        (0..NAMES.len(), 0i64..5).prop_map(|(n, a)| Op::DeletePerson(n, a)),
    ]
}

fn apply_op(eng: &Engine, op: &Op) {
    let s = eng.with_db(|db| db.schema().clone());
    match op {
        Op::Employee(n, a, d) => {
            eng.insert(
                s.type_id("employee").unwrap(),
                &[
                    ("name", Value::str(NAMES[*n])),
                    ("age", Value::Int(*a)),
                    ("depname", Value::str(DEPS[*d])),
                ],
            )
            .unwrap();
        }
        Op::Manager(n, a, d, b) => {
            eng.insert(
                s.type_id("manager").unwrap(),
                &[
                    ("name", Value::str(NAMES[*n])),
                    ("age", Value::Int(*a)),
                    ("depname", Value::str(DEPS[*d])),
                    ("budget", Value::Int(*b)),
                ],
            )
            .unwrap();
        }
        Op::DeletePerson(n, a) => {
            let person = s.type_id("person").unwrap();
            let t = eng.with_db(|db| {
                Instance::new(
                    db.schema(),
                    db.catalog(),
                    person,
                    &[("name", Value::str(NAMES[*n])), ("age", Value::Int(*a))],
                )
                .unwrap()
            });
            eng.delete(person, &t).unwrap();
        }
    }
}

proptest! {
    /// The recovery oracle: for a random workload of transactions — each
    /// committed, rolled back, or committed-then-checkpointed — recovery
    /// from disk equals a shadow in-memory engine that executed only the
    /// committed transactions. Runs under both flush policies that allow
    /// deterministic on-disk state at drop time.
    #[test]
    fn recovery_equals_shadow_for_random_committed_workloads(
        txns in prop::collection::vec(
            (prop::collection::vec(op_strategy(), 1..4), 0u8..4),
            1..10,
        ),
    ) {
        for flush in [FlushPolicy::PerCommit, FlushPolicy::NoSync] {
            let dir = temp_dir("oracle");
            let eng = durable_engine(&dir, flush);
            let shadow = Engine::new(fresh_db());
            for (ops, fate) in &txns {
                // fate: 0 = autocommit ops, 1 = explicit commit,
                // 2 = rollback, 3 = commit then checkpoint.
                match fate {
                    0 => {
                        for op in ops {
                            apply_op(&eng, op);
                            apply_op(&shadow, op);
                        }
                    }
                    2 => {
                        eng.begin().unwrap();
                        for op in ops {
                            apply_op(&eng, op);
                        }
                        eng.rollback().unwrap();
                    }
                    _ => {
                        eng.begin().unwrap();
                        for op in ops {
                            apply_op(&eng, op);
                        }
                        eng.commit().unwrap();
                        for op in ops {
                            apply_op(&shadow, op);
                        }
                        if *fate == 3 {
                            eng.checkpoint().unwrap();
                        }
                    }
                }
            }
            drop(eng);
            let recovered = Engine::recover(&dir).unwrap();
            let a = recovered.with_db(|db| snapshot::to_vec(db).unwrap());
            let b = shadow.with_db(|db| snapshot::to_vec(db).unwrap());
            prop_assert_eq!(a, b, "workload {:?} under {:?}", txns, flush);
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}
