//! Concurrency tests: the engine is `Sync` behind a single `RwLock`, so
//! concurrent readers and serialized writers must never observe a state
//! violating containment or declared FDs.

use std::sync::Arc;

use toposem_core::{employee_schema, GeneralisationTopology, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_fd::Fd;
use toposem_storage::Engine;

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    )))
}

#[test]
fn concurrent_inserts_preserve_containment() {
    let eng = engine();
    let schema = eng.with_db(|db| db.schema().clone());
    let employee = schema.type_id("employee").unwrap();
    let manager = schema.type_id("manager").unwrap();
    let mut handles = Vec::new();
    for t in 0..4 {
        let eng = Arc::clone(&eng);
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let name = format!("w{t}-{i}");
                if t % 2 == 0 {
                    eng.insert(
                        employee,
                        &[
                            ("name", Value::str(&name)),
                            ("age", Value::Int(i)),
                            ("depname", Value::str("sales")),
                        ],
                    )
                    .unwrap();
                } else {
                    eng.insert(
                        manager,
                        &[
                            ("name", Value::str(&name)),
                            ("age", Value::Int(i)),
                            ("depname", Value::str("research")),
                            ("budget", Value::Int(i * 10)),
                        ],
                    )
                    .unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    eng.with_db(|db| {
        assert!(db.verify_containment().is_empty());
        let person = db.schema().type_id("person").unwrap();
        assert_eq!(db.extension(person).len(), 200);
    });
}

#[test]
fn concurrent_readers_see_consistent_snapshots() {
    let eng = engine();
    let schema = eng.with_db(|db| db.schema().clone());
    let manager = schema.type_id("manager").unwrap();
    let employee = schema.type_id("employee").unwrap();

    let writer = {
        let eng = Arc::clone(&eng);
        std::thread::spawn(move || {
            for i in 0..100 {
                eng.insert(
                    manager,
                    &[
                        ("name", Value::str(&format!("m{i}"))),
                        ("age", Value::Int(i % 100)),
                        ("depname", Value::str("sales")),
                        ("budget", Value::Int(i)),
                    ],
                )
                .unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let eng = Arc::clone(&eng);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    // Snapshot invariant: every manager visible is also an
                    // employee (containment), at every instant.
                    eng.with_db(|db| {
                        let m = db.extension(manager);
                        let e = db.extension(employee);
                        let projected = m.project_to_type(db.schema(), manager, employee).unwrap();
                        assert!(projected.is_subset(&e));
                    });
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

#[test]
fn fd_enforcement_is_race_free() {
    // Many threads race to register the same (employee-projection) manager
    // with different budgets; the Extension-Axiom-style uniqueness is
    // enforced by a declared FD, so exactly one wins.
    let eng = engine();
    let schema = eng.with_db(|db| db.schema().clone());
    let gen = GeneralisationTopology::of_schema(&schema);
    let manager = schema.type_id("manager").unwrap();
    let employee = schema.type_id("employee").unwrap();
    let fd = Fd::new(&gen, employee, manager, manager).unwrap();
    eng.declare_fd(fd).unwrap();

    let mut handles = Vec::new();
    for t in 0..8 {
        let eng = Arc::clone(&eng);
        handles.push(std::thread::spawn(move || {
            eng.insert(
                manager,
                &[
                    ("name", Value::str("ann")),
                    ("age", Value::Int(40)),
                    ("depname", Value::str("sales")),
                    ("budget", Value::Int(t)),
                ],
            )
            .is_ok()
        }));
    }
    let successes = handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .filter(|ok| *ok)
        .count();
    assert_eq!(successes, 1, "exactly one budget registration wins");
    eng.with_db(|db| {
        assert_eq!(db.extension(manager).len(), 1);
        assert!(db.verify_containment().is_empty());
    });
}
