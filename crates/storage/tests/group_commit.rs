//! Group-commit latency bound: a lone acknowledged commit must become
//! durable within `max_wait` wall-clock time, with **no** further
//! commits arriving.
//!
//! Regression for the bug where the WAL only evaluated the `max_wait`
//! deadline inside `commit_appended` — i.e. when the *next* commit
//! arrived — so a single committer (or the last commits of a burst)
//! stayed unsynced indefinitely. The engine now runs a dedicated
//! flusher thread that watches `Wal::pending_flush_deadline` and fsyncs
//! at the deadline.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_storage::Engine;
use toposem_wal::{FlushPolicy, Wal, WalConfig};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "toposem-group-commit-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn group_commit_engine(dir: &PathBuf, max_wait: Duration) -> Engine {
    let cfg = WalConfig {
        flush: FlushPolicy::GroupCommit {
            // Far larger than the test's commit count: only the
            // max_wait deadline can trigger the flush.
            max_batch: 1024,
            max_wait,
        },
        segment_bytes: 1 << 20,
    };
    let db = Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    );
    Engine::durable(db, Wal::create(dir, cfg).unwrap()).unwrap()
}

/// Polls until the engine's physical-flush counter exceeds `before`,
/// returning how long that took (or panicking after `budget`).
fn wait_for_flush(eng: &Engine, before: u64, budget: Duration) -> Duration {
    let t0 = Instant::now();
    while t0.elapsed() < budget {
        if eng.metrics().wal.flushes.get() > before {
            return t0.elapsed();
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!(
        "no flush within {budget:?}: flushes still {}",
        eng.metrics().wal.flushes.get()
    );
}

#[test]
fn single_committer_is_fsynced_within_max_wait() {
    let dir = temp_dir("single");
    let max_wait = Duration::from_millis(25);
    let eng = group_commit_engine(&dir, max_wait);
    let person = eng.with_db(|db| db.schema().type_id("person").unwrap());

    // One autocommitted insert: the commit is acknowledged, joins the
    // group-commit window, and nothing else ever commits.
    let flushes_before = eng.metrics().wal.flushes.get();
    eng.insert(
        person,
        &[("name", Value::str("solo")), ("age", Value::Int(1))],
    )
    .unwrap();

    // CI schedulers are noisy, so the assertion budget is a loose
    // multiple of max_wait; the acceptance target (~2×) is checked
    // against the flusher's own wake-up, not wall-clock perfection.
    let waited = wait_for_flush(&eng, flushes_before, max_wait * 8);
    assert!(
        waited >= Duration::from_millis(5),
        "flush fired at {waited:?} — suspiciously before the deadline could expire"
    );

    // The flush drained the window: the batch histogram saw the lone
    // commit and nothing is pending.
    let snap = eng.metrics_snapshot();
    assert!(
        snap.wal.group_commit_batch.count >= 1,
        "flusher-driven drains must record their batch size"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn explicit_transaction_commit_is_fsynced_without_successor() {
    let dir = temp_dir("txn");
    let max_wait = Duration::from_millis(20);
    let eng = group_commit_engine(&dir, max_wait);
    let person = eng.with_db(|db| db.schema().type_id("person").unwrap());

    let flushes_before = eng.metrics().wal.flushes.get();
    eng.begin().unwrap();
    eng.insert(
        person,
        &[("name", Value::str("txn")), ("age", Value::Int(2))],
    )
    .unwrap();
    eng.commit().unwrap();

    wait_for_flush(&eng, flushes_before, max_wait * 8);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn burst_tail_is_flushed_after_idleness() {
    // The last commits of a burst must not wait for a successor either:
    // commit several, go idle, and the deadline drains the tail.
    let dir = temp_dir("burst");
    let max_wait = Duration::from_millis(20);
    let eng = group_commit_engine(&dir, max_wait);
    let person = eng.with_db(|db| db.schema().type_id("person").unwrap());

    let flushes_before = eng.metrics().wal.flushes.get();
    for i in 0..5 {
        eng.insert(
            person,
            &[
                ("name", Value::str(&format!("b{i}"))),
                ("age", Value::Int(i)),
            ],
        )
        .unwrap();
    }
    wait_for_flush(&eng, flushes_before, max_wait * 8);

    // Everything acknowledged is recoverable from the log alone.
    drop(eng);
    let recovered = Engine::recover(&dir).unwrap();
    assert_eq!(recovered.extension(person).len(), 5);
    let _ = fs::remove_dir_all(&dir);
}
