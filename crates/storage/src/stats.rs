//! Per-type statistics feeding the planner's cost model.
//!
//! EMBANKS-style access-path selection needs two numbers per relation:
//! its cardinality and, per attribute, how many distinct values occur
//! (equality selectivity ≈ 1/distinct under the uniformity assumption).
//! Collection is exact — extensions here are in-memory — and the engine
//! caches the result, invalidating on any mutation, so statistics cost is
//! amortised across a query workload.

use toposem_core::{AttrId, TypeId};
use toposem_extension::Database;

use crate::index::HashIndex;

/// Statistics of one entity type's extension.
#[derive(Clone, Debug, Default)]
pub struct TypeStats {
    /// Cardinality of the semantic extension.
    pub cardinality: usize,
    /// Distinct value counts, indexed by `AttrId::index()`; zero for
    /// attributes outside the type.
    pub distinct: Vec<usize>,
}

/// Statistics for every entity type of a database.
#[derive(Clone, Debug)]
pub struct Statistics {
    per_type: Vec<TypeStats>,
}

impl Statistics {
    /// Collects exact statistics. Indexes shortcut the distinct count of
    /// their attribute; other attributes are counted from the extension.
    pub fn collect(db: &Database, indexes: &[Option<HashIndex>]) -> Statistics {
        let schema = db.schema();
        let n_attrs = schema.attr_count();
        let per_type = schema
            .type_ids()
            .map(|e| {
                let rel = db.extension_cow(e);
                let mut distinct = vec![0usize; n_attrs];
                let indexed = indexes.get(e.index()).and_then(Option::as_ref);
                for a in schema.attrs_of(e).iter() {
                    let attr = AttrId(a as u32);
                    distinct[a] = match indexed {
                        // The index mirrors the stored relation, which is
                        // the extension under eager maintenance (the only
                        // policy under which indexes are consulted).
                        Some(idx) if idx.attr() == attr && idx.len() == rel.len() => {
                            idx.distinct_values()
                        }
                        _ => rel.distinct_count(attr),
                    };
                }
                TypeStats {
                    cardinality: rel.len(),
                    distinct,
                }
            })
            .collect();
        Statistics { per_type }
    }

    /// Cardinality of `e`'s extension.
    pub fn cardinality(&self, e: TypeId) -> usize {
        self.per_type[e.index()].cardinality
    }

    /// Distinct values of `a` within `e`'s extension.
    pub fn distinct_count(&self, e: TypeId, a: AttrId) -> usize {
        self.per_type[e.index()].distinct[a.index()]
    }

    /// Estimated fraction of `e`'s tuples matching an equality predicate
    /// on `a`, assuming uniformity.
    pub fn selectivity(&self, e: TypeId, a: AttrId) -> f64 {
        1.0 / self.distinct_count(e, a).max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog, Value};

    #[test]
    fn collect_counts_cardinality_and_distincts() {
        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        let employee = s.type_id("employee").unwrap();
        for (n, a, d) in [
            ("ann", 40, "sales"),
            ("bob", 30, "sales"),
            ("carol", 30, "research"),
        ] {
            db.insert_fields(
                employee,
                &[
                    ("name", Value::str(n)),
                    ("age", Value::Int(a)),
                    ("depname", Value::str(d)),
                ],
            )
            .unwrap();
        }
        let stats = Statistics::collect(&db, &[]);
        assert_eq!(stats.cardinality(employee), 3);
        assert_eq!(
            stats.distinct_count(employee, s.attr_id("name").unwrap()),
            3
        );
        assert_eq!(stats.distinct_count(employee, s.attr_id("age").unwrap()), 2);
        assert_eq!(
            stats.distinct_count(employee, s.attr_id("depname").unwrap()),
            2
        );
        let sel = stats.selectivity(employee, s.attr_id("depname").unwrap());
        assert!((sel - 0.5).abs() < 1e-9);
        // An attribute outside the type has no distincts.
        assert_eq!(
            stats.distinct_count(employee, s.attr_id("budget").unwrap()),
            0
        );
    }
}
