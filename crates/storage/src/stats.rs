//! Per-type statistics feeding the planner's cost model.
//!
//! EMBANKS-style access-path selection needs, per relation: its
//! cardinality; per attribute, how many distinct values occur (equality
//! selectivity ≈ 1/distinct under the uniformity assumption); and — for
//! range predicates — the attribute's min and max, so an interval's
//! selectivity can be interpolated instead of guessed. Collection is
//! exact — extensions here are in-memory — and the engine caches the
//! result, invalidating on any mutation, so statistics cost is amortised
//! across a query workload.

use std::sync::Arc;

use toposem_core::{AttrId, TypeId};
use toposem_extension::{Database, Value};
use toposem_obs::{FeedbackKey, PredClass, SelectivityFeedback};

use crate::index::Index;
use crate::query::Predicate;

/// Fallback selectivity for a half-open range when the attribute's
/// bounds are unknown or non-numeric (the classic System R guess).
const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Statistics of one entity type's extension.
#[derive(Clone, Debug, Default)]
pub struct TypeStats {
    /// Cardinality of the semantic extension.
    pub cardinality: usize,
    /// Distinct value counts, indexed by `AttrId::index()`; zero for
    /// attributes outside the type.
    pub distinct: Vec<usize>,
    /// Smallest observed value per attribute; `None` when the type lacks
    /// the attribute or the extension is empty.
    pub min: Vec<Option<Value>>,
    /// Largest observed value per attribute.
    pub max: Vec<Option<Value>>,
}

/// Statistics for every entity type of a database.
///
/// Optionally carries the engine's [`SelectivityFeedback`] cache (plus
/// the statistics epoch it was collected under): when attached, every
/// selectivity and join-cardinality estimate is multiplied by the
/// learned correction for its `(type, attribute, predicate class)` key,
/// so profiled executions steer future plans. Plain
/// [`collect`](Statistics::collect) leaves feedback detached — static
/// estimates only.
#[derive(Clone, Debug)]
pub struct Statistics {
    per_type: Vec<TypeStats>,
    feedback: Option<Arc<SelectivityFeedback>>,
    epoch: u64,
}

impl Statistics {
    /// Collects exact statistics. Single-attribute indexes shortcut the
    /// distinct count (and, for ordered indexes, the min/max) of their
    /// attribute; other attributes are counted from the extension.
    pub fn collect(db: &Database, indexes: &[Vec<Index>]) -> Statistics {
        let schema = db.schema();
        let n_attrs = schema.attr_count();
        let per_type = schema
            .type_ids()
            .map(|e| {
                let rel = db.extension_cow(e);
                let mut distinct = vec![0usize; n_attrs];
                let mut min: Vec<Option<Value>> = vec![None; n_attrs];
                let mut max: Vec<Option<Value>> = vec![None; n_attrs];
                // One fused pass fills min/max for every attribute of the
                // type (rather than one relation scan per attribute).
                for t in rel.iter() {
                    for (attr, v) in t.fields() {
                        let a = attr.index();
                        if min[a].as_ref().is_none_or(|m| v < m) {
                            min[a] = Some(v.clone());
                        }
                        if max[a].as_ref().is_none_or(|m| v > m) {
                            max[a] = Some(v.clone());
                        }
                    }
                }
                let type_indexes = indexes.get(e.index()).map(Vec::as_slice).unwrap_or(&[]);
                for a in schema.attrs_of(e).iter() {
                    let attr = AttrId(a as u32);
                    // A single-attribute index shortcuts the distinct
                    // count. The index mirrors the stored relation, which
                    // is the extension under eager maintenance (the only
                    // policy under which indexes are consulted); trust it
                    // only when the sizes agree.
                    let shortcut = type_indexes.iter().find_map(|i| match i {
                        Index::Hash(h) if h.attr() == attr && h.len() == rel.len() => {
                            Some(h.distinct_values())
                        }
                        Index::Ord(o) if o.attr() == attr && o.len() == rel.len() => {
                            Some(o.distinct_values())
                        }
                        _ => None,
                    });
                    distinct[a] = match shortcut {
                        Some(d) => d,
                        None => rel.distinct_count(attr),
                    };
                }
                TypeStats {
                    cardinality: rel.len(),
                    distinct,
                    min,
                    max,
                }
            })
            .collect();
        Statistics {
            per_type,
            feedback: None,
            epoch: 0,
        }
    }

    /// Attach the engine's feedback cache. `epoch` is the statistics
    /// epoch these statistics were collected under; corrections learned
    /// under any other epoch read as neutral.
    pub fn with_feedback(mut self, feedback: Arc<SelectivityFeedback>, epoch: u64) -> Self {
        self.feedback = Some(feedback);
        self.epoch = epoch;
        self
    }

    /// A copy with feedback detached: purely static estimates. Used to
    /// factor an estimate into `static × correction` for explain
    /// output.
    pub fn without_feedback(&self) -> Statistics {
        Statistics {
            per_type: self.per_type.clone(),
            feedback: None,
            epoch: self.epoch,
        }
    }

    /// The statistics epoch these statistics describe (0 when collected
    /// outside an engine).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The learned multiplicative correction for estimates keyed on
    /// `(e, a, class)` — neutral 1.0 when no feedback is attached or
    /// nothing has been learned. `None` for `a` means the estimate has
    /// no single governing attribute (e.g. a key-less cross join).
    pub fn correction(&self, e: TypeId, a: Option<AttrId>, class: PredClass) -> f64 {
        match &self.feedback {
            Some(fb) => fb.correction(
                self.epoch,
                FeedbackKey {
                    ty: e.index() as u32,
                    attr: a.map_or(FeedbackKey::NO_ATTR, |a| a.index() as u32),
                    class,
                },
            ),
            None => 1.0,
        }
    }

    /// Cardinality of `e`'s extension.
    pub fn cardinality(&self, e: TypeId) -> usize {
        self.per_type[e.index()].cardinality
    }

    /// Distinct values of `a` within `e`'s extension.
    pub fn distinct_count(&self, e: TypeId, a: AttrId) -> usize {
        self.per_type[e.index()].distinct[a.index()]
    }

    /// Smallest observed value of `a` within `e`'s extension.
    pub fn min(&self, e: TypeId, a: AttrId) -> Option<&Value> {
        self.per_type[e.index()].min[a.index()].as_ref()
    }

    /// Largest observed value of `a` within `e`'s extension.
    pub fn max(&self, e: TypeId, a: AttrId) -> Option<&Value> {
        self.per_type[e.index()].max[a.index()].as_ref()
    }

    /// Estimated fraction of `e`'s tuples matching an equality predicate
    /// on `a`: 1/distinct under the uniformity assumption, times any
    /// learned correction (an equality probe for absent values can
    /// legitimately estimate below one row's worth).
    pub fn selectivity(&self, e: TypeId, a: AttrId) -> f64 {
        let stat = 1.0 / self.distinct_count(e, a).max(1) as f64;
        (stat * self.correction(e, Some(a), PredClass::Eq)).min(1.0)
    }

    /// Estimated cardinality of the natural join of two inputs over the
    /// shared attributes `keys`, given each input's (estimated) row
    /// count and its output entity type. Classic System-R shape: every
    /// join key divides the cross product by the larger of the two
    /// sides' distinct counts; for a compound key the *most* selective
    /// attribute alone is charged (taking the product would assume key
    /// attributes independent, which compound keys in practice are not
    /// — distinct(name) already ≈ distinct(name, age)). No shared
    /// attributes means a genuine cross product. `out` is the join's
    /// output entity type: learned cardinality corrections are keyed on
    /// it (stable across build/probe swaps), paired with the dominant
    /// key attribute.
    pub fn join_cardinality(
        &self,
        out: TypeId,
        left: TypeId,
        left_rows: f64,
        right: TypeId,
        right_rows: f64,
        keys: &[AttrId],
    ) -> f64 {
        let cross = left_rows * right_rows;
        let denom = keys
            .iter()
            .map(|a| {
                self.distinct_count(left, *a)
                    .max(self.distinct_count(right, *a))
                    .max(1) as f64
            })
            .fold(1.0_f64, f64::max);
        let corr = self.correction(
            out,
            self.dominant_join_key(left, right, keys),
            PredClass::Join,
        );
        // A join cannot produce more than the cross product, however
        // badly an estimate once undershot.
        ((cross / denom) * corr).clamp(0.0, cross)
    }

    /// The join key attribute charged by [`join_cardinality`]'s
    /// System-R estimate: the one with the largest max-side distinct
    /// count (ties to the first). `None` for a key-less cross product.
    /// Shared with the feedback recorder so observations land on the
    /// same key the estimate reads.
    ///
    /// [`join_cardinality`]: Statistics::join_cardinality
    pub fn dominant_join_key(
        &self,
        left: TypeId,
        right: TypeId,
        keys: &[AttrId],
    ) -> Option<AttrId> {
        keys.iter()
            .copied()
            .fold(None, |best: Option<(AttrId, usize)>, a| {
                let d = self
                    .distinct_count(left, a)
                    .max(self.distinct_count(right, a));
                match best {
                    Some((_, bd)) if bd >= d => best,
                    _ => Some((a, d)),
                }
            })
            .map(|(a, _)| a)
    }

    /// Estimated fraction of `e`'s tuples matching `pred` on `a`.
    /// Equality uses 1/distinct; ranges over integer attributes
    /// interpolate against the observed [min, max] span; anything else
    /// falls back to the classic 1/3 guess.
    pub fn pred_selectivity(&self, e: TypeId, a: AttrId, pred: &Predicate) -> f64 {
        if pred.is_empty() {
            return 0.0;
        }
        if pred.as_eq().is_some() {
            return self.selectivity(e, a);
        }
        // Any non-equality predicate is priced as a range; the learned
        // correction is what rescues interpolation over skew (a handful
        // of outliers can stretch [min, max] until a selective range
        // looks like the whole table).
        let corr = self.correction(e, Some(a), PredClass::Range);
        let stat = 'stat: {
            let (Some(Value::Int(lo)), Some(Value::Int(hi))) = (self.min(e, a), self.max(e, a))
            else {
                break 'stat DEFAULT_RANGE_SELECTIVITY;
            };
            let (lo, hi) = (*lo as f64, *hi as f64);
            let span = hi - lo;
            if span <= 0.0 {
                // Single observed value: either the predicate admits it
                // or not; split the difference conservatively.
                break 'stat 0.5;
            }
            let bound = |b: Option<(&Value, bool)>, default: f64| match b {
                Some((Value::Int(v), _)) => (*v as f64).clamp(lo, hi),
                Some(_) => default,
                None => default,
            };
            let (plo, phi) = pred.bounds();
            let covered = (bound(phi, hi) - bound(plo, lo)).max(0.0);
            // Never estimate below one matching value's worth.
            (covered / span).clamp(1.0 / self.cardinality(e).max(1) as f64, 1.0)
        };
        (stat * corr).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog, Value};

    #[test]
    fn collect_counts_cardinality_and_distincts() {
        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        let employee = s.type_id("employee").unwrap();
        for (n, a, d) in [
            ("ann", 40, "sales"),
            ("bob", 30, "sales"),
            ("carol", 30, "research"),
        ] {
            db.insert_fields(
                employee,
                &[
                    ("name", Value::str(n)),
                    ("age", Value::Int(a)),
                    ("depname", Value::str(d)),
                ],
            )
            .unwrap();
        }
        let stats = Statistics::collect(&db, &[]);
        assert_eq!(stats.cardinality(employee), 3);
        assert_eq!(
            stats.distinct_count(employee, s.attr_id("name").unwrap()),
            3
        );
        assert_eq!(stats.distinct_count(employee, s.attr_id("age").unwrap()), 2);
        assert_eq!(
            stats.distinct_count(employee, s.attr_id("depname").unwrap()),
            2
        );
        let sel = stats.selectivity(employee, s.attr_id("depname").unwrap());
        assert!((sel - 0.5).abs() < 1e-9);
        // An attribute outside the type has no distincts.
        assert_eq!(
            stats.distinct_count(employee, s.attr_id("budget").unwrap()),
            0
        );
    }

    #[test]
    fn join_cardinality_divides_by_the_dominant_key() {
        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        let depname = s.attr_id("depname").unwrap();
        let name = s.attr_id("name").unwrap();
        let age = s.attr_id("age").unwrap();
        for i in 0..90i64 {
            db.insert_fields(
                employee,
                &[
                    ("name", Value::str(&format!("p{i}"))),
                    ("age", Value::Int(i % 30)),
                    (
                        "depname",
                        Value::str(["sales", "research", "admin"][(i % 3) as usize]),
                    ),
                ],
            )
            .unwrap();
        }
        for (d, l) in [("sales", "amsterdam"), ("research", "utrecht")] {
            db.insert_fields(
                department,
                &[("depname", Value::str(d)), ("location", Value::str(l))],
            )
            .unwrap();
        }
        let stats = Statistics::collect(&db, &[]);
        let out = s.type_id("worksfor").unwrap();
        // FK-style join: 90 × 2 / max(distinct depname) = 180 / 3 = 60.
        let fk = stats.join_cardinality(out, employee, 90.0, department, 2.0, &[depname]);
        assert!((fk - 60.0).abs() < 1e-9, "got {fk}");
        // No shared attributes: a genuine cross product.
        let cross = stats.join_cardinality(out, employee, 90.0, department, 2.0, &[]);
        assert!((cross - 180.0).abs() < 1e-9, "got {cross}");
        assert_eq!(stats.dominant_join_key(employee, department, &[]), None);
        // A compound key charges only its most selective attribute
        // (name: 90 distinct dominates age: 30 distinct).
        let compound = stats.join_cardinality(out, employee, 90.0, employee, 90.0, &[name, age]);
        assert!((compound - 90.0).abs() < 1e-9, "got {compound}");
        assert_eq!(
            stats.dominant_join_key(employee, employee, &[age, name]),
            Some(name)
        );
    }

    #[test]
    fn min_max_and_range_selectivity() {
        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        let employee = s.type_id("employee").unwrap();
        let age = s.attr_id("age").unwrap();
        for i in 0..100i64 {
            db.insert_fields(
                employee,
                &[
                    ("name", Value::str(&format!("p{i}"))),
                    ("age", Value::Int(i)),
                    ("depname", Value::str("sales")),
                ],
            )
            .unwrap();
        }
        let stats = Statistics::collect(&db, &[]);
        assert_eq!(stats.min(employee, age), Some(&Value::Int(0)));
        assert_eq!(stats.max(employee, age), Some(&Value::Int(99)));
        // A 10% slice of the span estimates near 0.1.
        let sel = stats.pred_selectivity(
            employee,
            age,
            &Predicate::Between(Value::Int(10), Value::Int(20)),
        );
        assert!((0.05..0.2).contains(&sel), "got {sel}");
        // An unbounded-below range covering ~half the span.
        let half = stats.pred_selectivity(employee, age, &Predicate::Lt(Value::Int(50)));
        assert!((0.4..0.6).contains(&half), "got {half}");
        // Equality defers to 1/distinct.
        let eq = stats.pred_selectivity(employee, age, &Predicate::Eq(Value::Int(7)));
        assert!((eq - 0.01).abs() < 1e-9, "got {eq}");
        // An inverted Between is provably empty.
        assert_eq!(
            stats.pred_selectivity(
                employee,
                age,
                &Predicate::Between(Value::Int(9), Value::Int(1))
            ),
            0.0
        );
        // Non-numeric attributes fall back to the default guess.
        let name = s.attr_id("name").unwrap();
        let guess = stats.pred_selectivity(employee, name, &Predicate::Ge(Value::str("p5")));
        assert!((guess - DEFAULT_RANGE_SELECTIVITY).abs() < 1e-9);
    }

    #[test]
    fn attached_feedback_corrects_estimates() {
        use toposem_obs::FeedbackObservation;

        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        let employee = s.type_id("employee").unwrap();
        let age = s.attr_id("age").unwrap();
        for i in 0..100i64 {
            db.insert_fields(
                employee,
                &[
                    ("name", Value::str(&format!("p{i}"))),
                    ("age", Value::Int(i)),
                    ("depname", Value::str("sales")),
                ],
            )
            .unwrap();
        }
        let fb = Arc::new(SelectivityFeedback::with_enabled(true));
        // Pretend a profiled run saw a 10× overestimate on age ranges.
        fb.observe(
            5,
            &[FeedbackObservation {
                keys: vec![FeedbackKey {
                    ty: employee.index() as u32,
                    attr: age.index() as u32,
                    class: PredClass::Range,
                }],
                est_rows: 1_000.0,
                act_rows: 100.0,
            }],
        );
        let plain = Statistics::collect(&db, &[]);
        let steered = plain.clone().with_feedback(Arc::clone(&fb), 5);
        let pred = Predicate::Lt(Value::Int(50));
        let stat = plain.pred_selectivity(employee, age, &pred);
        let corrected = steered.pred_selectivity(employee, age, &pred);
        assert!(
            (corrected - stat * 0.1).abs() < 1e-9,
            "{corrected} vs {stat}"
        );
        // The static view is recoverable for est×corr factoring.
        let refactored = steered
            .without_feedback()
            .pred_selectivity(employee, age, &pred);
        assert!((refactored - stat).abs() < 1e-9);
        // A different epoch reads as neutral: corrections never survive
        // a stats bump.
        let stale = plain.clone().with_feedback(fb, 6);
        assert!((stale.pred_selectivity(employee, age, &pred) - stat).abs() < 1e-9);
    }
}
