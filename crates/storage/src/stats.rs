//! Per-type statistics feeding the planner's cost model.
//!
//! EMBANKS-style access-path selection needs, per relation: its
//! cardinality; per attribute, how many distinct values occur (equality
//! selectivity ≈ 1/distinct under the uniformity assumption); and — for
//! range predicates — the attribute's min and max, so an interval's
//! selectivity can be interpolated instead of guessed. Collection is
//! exact — extensions here are in-memory — and the engine caches the
//! result, invalidating on any mutation, so statistics cost is amortised
//! across a query workload.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use toposem_core::{AttrId, TypeId};
use toposem_extension::{Database, Value};
use toposem_obs::{FeedbackKey, PredClass, SelectivityFeedback};

use crate::index::Index;
use crate::query::Predicate;

/// Fallback selectivity for a half-open range when the attribute's
/// bounds are unknown or non-numeric (the classic System R guess).
const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Bucket budget for equi-depth histograms (fewer when the attribute
/// has fewer rows or heavy duplication collapses fences).
const HISTOGRAM_BUCKETS: usize = 64;

fn histogram_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = std::env::var("TOPOSEM_HISTOGRAMS")
            .map(|v| !matches!(v.trim(), "0" | "false" | "off"))
            .unwrap_or(true);
        AtomicBool::new(on)
    })
}

/// Whether range estimates consult equi-depth histograms (process-wide;
/// seeded from `TOPOSEM_HISTOGRAMS`, default on). Histograms are still
/// *collected* while disabled — only pricing ignores them — so toggling
/// never requires a statistics rebuild.
pub fn histograms_enabled() -> bool {
    histogram_flag().load(Ordering::Relaxed)
}

/// Enable or disable histogram pricing process-wide. Exists so tests
/// and benchmarks exercising the pure min/max interpolation (or the
/// feedback loop it motivates) can pin their footing without touching
/// process environment.
pub fn set_histograms_enabled(on: bool) {
    histogram_flag().store(on, Ordering::Relaxed)
}

/// Equi-depth histogram over one integer attribute.
///
/// `fences` are strictly-ascending bucket upper bounds sampled at
/// equal-depth positions of the sorted value multiset (duplicates
/// collapse fences, so heavy hitters get narrow buckets); `cum[j]` is
/// the *exact* number of values `<= fences[j]`. Estimation is exact at
/// every fence and linear in value space inside a bucket — so ~1/64 of
/// the rows is the worst-case interpolation error, independent of how
/// skewed the distribution is. That is the whole point: min/max
/// interpolation prices a range by its share of the [min, max] span,
/// which a handful of outliers can stretch arbitrarily.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Smallest value in the multiset (implicit lower fence).
    lo: i64,
    /// Strictly ascending bucket upper bounds; last is the max value.
    fences: Vec<i64>,
    /// Exact count of values `<= fences[j]`; last is `n`.
    cum: Vec<u64>,
    /// Total values (rows with the attribute).
    n: u64,
}

impl Histogram {
    /// Build from the sorted multiset of an attribute's values.
    /// Returns `None` for an empty multiset.
    fn build(sorted: &[i64]) -> Option<Histogram> {
        if sorted.is_empty() {
            return None;
        }
        let b = HISTOGRAM_BUCKETS.min(sorted.len());
        let mut fences: Vec<i64> = Vec::with_capacity(b);
        for i in 0..b {
            let f = sorted[(i + 1) * sorted.len() / b - 1];
            if fences.last() != Some(&f) {
                fences.push(f);
            }
        }
        let cum = fences
            .iter()
            .map(|f| sorted.partition_point(|v| v <= f) as u64)
            .collect();
        Some(Histogram {
            lo: sorted[0],
            fences,
            cum,
            n: sorted.len() as u64,
        })
    }

    /// Estimated number of values `<= x`: exact at fences, linearly
    /// interpolated in value space inside a bucket.
    fn est_leq(&self, x: i64) -> f64 {
        if x < self.lo {
            return 0.0;
        }
        let last = *self.fences.last().expect("non-empty histogram");
        if x >= last {
            return self.n as f64;
        }
        // First bucket whose fence admits x; x < last so j is in range.
        let j = self.fences.partition_point(|f| *f < x);
        let (prev_fence, prev_cum) = if j == 0 {
            (self.lo - 1, 0)
        } else {
            (self.fences[j - 1], self.cum[j - 1])
        };
        let width = (self.fences[j] - prev_fence) as f64;
        let frac = (x - prev_fence) as f64 / width;
        prev_cum as f64 + frac * (self.cum[j] - prev_cum) as f64
    }

    /// Estimated fraction of values in the inclusive range `[rlo, rhi]`.
    pub fn range_fraction(&self, rlo: i64, rhi: i64) -> f64 {
        let below = if rlo == i64::MIN {
            0.0
        } else {
            self.est_leq(rlo - 1)
        };
        ((self.est_leq(rhi) - below) / self.n.max(1) as f64).clamp(0.0, 1.0)
    }
}

/// Statistics of one entity type's extension.
#[derive(Clone, Debug, Default)]
pub struct TypeStats {
    /// Cardinality of the semantic extension.
    pub cardinality: usize,
    /// Distinct value counts, indexed by `AttrId::index()`; zero for
    /// attributes outside the type.
    pub distinct: Vec<usize>,
    /// Smallest observed value per attribute; `None` when the type lacks
    /// the attribute or the extension is empty.
    pub min: Vec<Option<Value>>,
    /// Largest observed value per attribute.
    pub max: Vec<Option<Value>>,
    /// Equi-depth histograms, indexed by `AttrId::index()`; present only
    /// for attributes whose observed values are all integers.
    pub histograms: Vec<Option<Histogram>>,
}

/// Statistics for every entity type of a database.
///
/// Optionally carries the engine's [`SelectivityFeedback`] cache (plus
/// the statistics epoch it was collected under): when attached, every
/// selectivity and join-cardinality estimate is multiplied by the
/// learned correction for its `(type, attribute, predicate class)` key,
/// so profiled executions steer future plans. Plain
/// [`collect`](Statistics::collect) leaves feedback detached — static
/// estimates only.
#[derive(Clone, Debug)]
pub struct Statistics {
    per_type: Vec<TypeStats>,
    feedback: Option<Arc<SelectivityFeedback>>,
    epoch: u64,
}

impl Statistics {
    /// Collects exact statistics. Single-attribute indexes shortcut the
    /// distinct count (and, for ordered indexes, the min/max) of their
    /// attribute; other attributes are counted from the extension.
    pub fn collect(db: &Database, indexes: &[Vec<Index>]) -> Statistics {
        let schema = db.schema();
        let n_attrs = schema.attr_count();
        let per_type = schema
            .type_ids()
            .map(|e| {
                let rel = db.extension_cow(e);
                let mut distinct = vec![0usize; n_attrs];
                let mut min: Vec<Option<Value>> = vec![None; n_attrs];
                let mut max: Vec<Option<Value>> = vec![None; n_attrs];
                // Integer value multisets for histogram construction;
                // `None` marks an attribute with a non-integer value.
                let mut ints: Vec<Option<Vec<i64>>> = vec![Some(Vec::new()); n_attrs];
                // One fused pass fills min/max (and gathers histogram
                // inputs) for every attribute of the type (rather than
                // one relation scan per attribute).
                for t in rel.iter() {
                    for (attr, v) in t.fields() {
                        let a = attr.index();
                        if min[a].as_ref().is_none_or(|m| v < m) {
                            min[a] = Some(v.clone());
                        }
                        if max[a].as_ref().is_none_or(|m| v > m) {
                            max[a] = Some(v.clone());
                        }
                        match (v, &mut ints[a]) {
                            (Value::Int(i), Some(vals)) => vals.push(*i),
                            (Value::Int(_), None) => {}
                            _ => ints[a] = None,
                        }
                    }
                }
                let histograms = ints
                    .into_iter()
                    .map(|vals| {
                        let mut vals = vals?;
                        vals.sort_unstable();
                        Histogram::build(&vals)
                    })
                    .collect();
                let type_indexes = indexes.get(e.index()).map(Vec::as_slice).unwrap_or(&[]);
                for a in schema.attrs_of(e).iter() {
                    let attr = AttrId(a as u32);
                    // A single-attribute index shortcuts the distinct
                    // count. The index mirrors the stored relation, which
                    // is the extension under eager maintenance (the only
                    // policy under which indexes are consulted); trust it
                    // only when the sizes agree.
                    let shortcut = type_indexes.iter().find_map(|i| match i {
                        Index::Hash(h) if h.attr() == attr && h.len() == rel.len() => {
                            Some(h.distinct_values())
                        }
                        Index::Ord(o) if o.attr() == attr && o.len() == rel.len() => {
                            Some(o.distinct_values())
                        }
                        _ => None,
                    });
                    distinct[a] = match shortcut {
                        Some(d) => d,
                        None => rel.distinct_count(attr),
                    };
                }
                TypeStats {
                    cardinality: rel.len(),
                    distinct,
                    min,
                    max,
                    histograms,
                }
            })
            .collect();
        Statistics {
            per_type,
            feedback: None,
            epoch: 0,
        }
    }

    /// Attach the engine's feedback cache. `epoch` is the statistics
    /// epoch these statistics were collected under; corrections learned
    /// under any other epoch read as neutral.
    pub fn with_feedback(mut self, feedback: Arc<SelectivityFeedback>, epoch: u64) -> Self {
        self.feedback = Some(feedback);
        self.epoch = epoch;
        self
    }

    /// A copy with feedback detached: purely static estimates. Used to
    /// factor an estimate into `static × correction` for explain
    /// output.
    pub fn without_feedback(&self) -> Statistics {
        Statistics {
            per_type: self.per_type.clone(),
            feedback: None,
            epoch: self.epoch,
        }
    }

    /// The statistics epoch these statistics describe (0 when collected
    /// outside an engine).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The learned multiplicative correction for estimates keyed on
    /// `(e, a, class)` — neutral 1.0 when no feedback is attached or
    /// nothing has been learned. `None` for `a` means the estimate has
    /// no single governing attribute (e.g. a key-less cross join).
    pub fn correction(&self, e: TypeId, a: Option<AttrId>, class: PredClass) -> f64 {
        match &self.feedback {
            Some(fb) => fb.correction(
                self.epoch,
                FeedbackKey {
                    ty: e.index() as u32,
                    attr: a.map_or(FeedbackKey::NO_ATTR, |a| a.index() as u32),
                    class,
                },
            ),
            None => 1.0,
        }
    }

    /// Cardinality of `e`'s extension.
    pub fn cardinality(&self, e: TypeId) -> usize {
        self.per_type[e.index()].cardinality
    }

    /// Distinct values of `a` within `e`'s extension.
    pub fn distinct_count(&self, e: TypeId, a: AttrId) -> usize {
        self.per_type[e.index()].distinct[a.index()]
    }

    /// Smallest observed value of `a` within `e`'s extension.
    pub fn min(&self, e: TypeId, a: AttrId) -> Option<&Value> {
        self.per_type[e.index()].min[a.index()].as_ref()
    }

    /// Largest observed value of `a` within `e`'s extension.
    pub fn max(&self, e: TypeId, a: AttrId) -> Option<&Value> {
        self.per_type[e.index()].max[a.index()].as_ref()
    }

    /// Equi-depth histogram of `a` within `e`'s extension, when every
    /// observed value of `a` is an integer and the extension is
    /// non-empty.
    pub fn histogram(&self, e: TypeId, a: AttrId) -> Option<&Histogram> {
        self.per_type[e.index()]
            .histograms
            .get(a.index())
            .and_then(Option::as_ref)
    }

    /// Estimated fraction of `e`'s tuples matching an equality predicate
    /// on `a`: 1/distinct under the uniformity assumption, times any
    /// learned correction (an equality probe for absent values can
    /// legitimately estimate below one row's worth).
    pub fn selectivity(&self, e: TypeId, a: AttrId) -> f64 {
        let stat = 1.0 / self.distinct_count(e, a).max(1) as f64;
        (stat * self.correction(e, Some(a), PredClass::Eq)).min(1.0)
    }

    /// Estimated cardinality of the natural join of two inputs over the
    /// shared attributes `keys`, given each input's (estimated) row
    /// count and its output entity type. Classic System-R shape: every
    /// join key divides the cross product by the larger of the two
    /// sides' distinct counts; for a compound key the *most* selective
    /// attribute alone is charged (taking the product would assume key
    /// attributes independent, which compound keys in practice are not
    /// — distinct(name) already ≈ distinct(name, age)). No shared
    /// attributes means a genuine cross product. `out` is the join's
    /// output entity type: learned cardinality corrections are keyed on
    /// it (stable across build/probe swaps), paired with the dominant
    /// key attribute.
    pub fn join_cardinality(
        &self,
        out: TypeId,
        left: TypeId,
        left_rows: f64,
        right: TypeId,
        right_rows: f64,
        keys: &[AttrId],
    ) -> f64 {
        let cross = left_rows * right_rows;
        let denom = keys
            .iter()
            .map(|a| {
                self.distinct_count(left, *a)
                    .max(self.distinct_count(right, *a))
                    .max(1) as f64
            })
            .fold(1.0_f64, f64::max);
        let corr = self.correction(
            out,
            self.dominant_join_key(left, right, keys),
            PredClass::Join,
        );
        // A join cannot produce more than the cross product, however
        // badly an estimate once undershot.
        ((cross / denom) * corr).clamp(0.0, cross)
    }

    /// The join key attribute charged by [`join_cardinality`]'s
    /// System-R estimate: the one with the largest max-side distinct
    /// count (ties to the first). `None` for a key-less cross product.
    /// Shared with the feedback recorder so observations land on the
    /// same key the estimate reads.
    ///
    /// [`join_cardinality`]: Statistics::join_cardinality
    pub fn dominant_join_key(
        &self,
        left: TypeId,
        right: TypeId,
        keys: &[AttrId],
    ) -> Option<AttrId> {
        keys.iter()
            .copied()
            .fold(None, |best: Option<(AttrId, usize)>, a| {
                let d = self
                    .distinct_count(left, a)
                    .max(self.distinct_count(right, a));
                match best {
                    Some((_, bd)) if bd >= d => best,
                    _ => Some((a, d)),
                }
            })
            .map(|(a, _)| a)
    }

    /// Estimated fraction of `e`'s tuples matching `pred` on `a`.
    /// Equality uses 1/distinct; ranges over integer attributes consult
    /// the equi-depth histogram when one exists (and histogram pricing
    /// is enabled), otherwise interpolate against the observed
    /// [min, max] span; anything else falls back to the classic 1/3
    /// guess.
    pub fn pred_selectivity(&self, e: TypeId, a: AttrId, pred: &Predicate) -> f64 {
        if pred.is_empty() {
            return 0.0;
        }
        if pred.as_eq().is_some() {
            return self.selectivity(e, a);
        }
        // Any non-equality predicate is priced as a range; learned
        // corrections multiply on top of whichever static estimate
        // applies, so feedback still composes with histogram pricing.
        let corr = self.correction(e, Some(a), PredClass::Range);
        let stat = 'stat: {
            if histograms_enabled() {
                if let Some(h) = self.histogram(e, a) {
                    break 'stat match pred.int_range() {
                        // The attribute is all-integer; a predicate
                        // admitting no integer matches nothing.
                        None => 0.0,
                        Some((rlo, rhi)) => h
                            .range_fraction(rlo, rhi)
                            // Never estimate below one matching value's
                            // worth.
                            .clamp(1.0 / self.cardinality(e).max(1) as f64, 1.0),
                    };
                }
            }
            let (Some(Value::Int(lo)), Some(Value::Int(hi))) = (self.min(e, a), self.max(e, a))
            else {
                break 'stat DEFAULT_RANGE_SELECTIVITY;
            };
            let (lo, hi) = (*lo as f64, *hi as f64);
            let span = hi - lo;
            if span <= 0.0 {
                // Single observed value: either the predicate admits it
                // or not; split the difference conservatively.
                break 'stat 0.5;
            }
            let bound = |b: Option<(&Value, bool)>, default: f64| match b {
                Some((Value::Int(v), _)) => (*v as f64).clamp(lo, hi),
                Some(_) => default,
                None => default,
            };
            let (plo, phi) = pred.bounds();
            let covered = (bound(phi, hi) - bound(plo, lo)).max(0.0);
            // Never estimate below one matching value's worth.
            (covered / span).clamp(1.0 / self.cardinality(e).max(1) as f64, 1.0)
        };
        (stat * corr).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog, Value};

    /// Serialises tests that toggle (or are sensitive to mid-test
    /// flips of) the process-wide histogram switch.
    fn hist_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn skewed_db() -> (Database, TypeId, AttrId) {
        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        let employee = s.type_id("employee").unwrap();
        let age = s.attr_id("age").unwrap();
        // 999 rows clustered in ages [0, 4], one outlier at 150: the
        // [min, max] span is 30× wider than where the data lives.
        for i in 0..1000i64 {
            let a = if i == 999 { 150 } else { i % 5 };
            db.insert_fields(
                employee,
                &[
                    ("name", Value::str(&format!("p{i}"))),
                    ("age", Value::Int(a)),
                    ("depname", Value::str("sales")),
                ],
            )
            .unwrap();
        }
        (db, employee, age)
    }

    #[test]
    fn histogram_exact_at_fences_and_bounded_inside_buckets() {
        let mut vals: Vec<i64> = (0..999).map(|i| i % 10).collect();
        vals.push(1_000_000);
        vals.sort_unstable();
        let h = Histogram::build(&vals).unwrap();
        // The cluster holds 999/1000 of the mass; the outlier almost
        // nothing — regardless of the million-wide value span.
        let cluster = h.range_fraction(0, 9);
        assert!(cluster > 0.95, "got {cluster}");
        let hole = h.range_fraction(10, 999_999);
        assert!(hole < 0.05, "got {hole}");
        // Full-domain and out-of-domain ranges are exact.
        assert_eq!(h.range_fraction(i64::MIN, i64::MAX), 1.0);
        assert_eq!(h.range_fraction(2_000_000, 3_000_000), 0.0);
        assert_eq!(h.range_fraction(i64::MIN, -1), 0.0);
        // Every fence is an exact cut point.
        for (f, c) in h.fences.iter().zip(&h.cum) {
            let est = h.est_leq(*f);
            assert!((est - *c as f64).abs() < 1e-9, "fence {f}: {est} vs {c}");
        }
    }

    #[test]
    fn histogram_handles_tiny_and_constant_multisets() {
        assert_eq!(Histogram::build(&[]), None);
        let one = Histogram::build(&[7]).unwrap();
        assert_eq!(one.range_fraction(7, 7), 1.0);
        assert_eq!(one.range_fraction(8, 9), 0.0);
        // All-equal values collapse to a single fence.
        let flat = Histogram::build(&[5; 100]).unwrap();
        assert_eq!(flat.fences.len(), 1);
        assert_eq!(flat.range_fraction(5, 5), 1.0);
        assert_eq!(flat.range_fraction(0, 4), 0.0);
    }

    #[test]
    fn skewed_range_priced_by_histogram_not_span() {
        let _g = hist_lock();
        let (db, employee, age) = skewed_db();
        let stats = Statistics::collect(&db, &[]);
        let pred = Predicate::Between(Value::Int(0), Value::Int(4));
        // Histogram pricing sees ~99.9% of rows in the cluster.
        set_histograms_enabled(true);
        let hist = stats.pred_selectivity(employee, age, &pred);
        assert!(hist > 0.9, "histogram estimate too low: {hist}");
        // min/max interpolation prices the same range by its share of
        // the outlier-stretched span — under 4%.
        set_histograms_enabled(false);
        let span = stats.pred_selectivity(employee, age, &pred);
        set_histograms_enabled(true);
        assert!(span < 0.05, "span estimate unexpectedly high: {span}");
        // A range covering only the hole prices near zero with the
        // histogram (floored at one row's worth).
        let hole = stats.pred_selectivity(
            employee,
            age,
            &Predicate::Between(Value::Int(20), Value::Int(140)),
        );
        assert!(hole < 0.02, "got {hole}");
        // A predicate admitting no integers prices as empty on an
        // all-integer attribute.
        let none = stats.pred_selectivity(employee, age, &Predicate::Gt(Value::str("zzz")));
        assert_eq!(none, 0.0);
    }

    #[test]
    fn feedback_composes_with_histogram_pricing() {
        use toposem_obs::FeedbackObservation;
        let _g = hist_lock();
        let (db, employee, age) = skewed_db();
        let fb = Arc::new(SelectivityFeedback::with_enabled(true));
        fb.observe(
            3,
            &[FeedbackObservation {
                keys: vec![FeedbackKey {
                    ty: employee.index() as u32,
                    attr: age.index() as u32,
                    class: PredClass::Range,
                }],
                est_rows: 1_000.0,
                act_rows: 500.0,
            }],
        );
        let plain = Statistics::collect(&db, &[]);
        let steered = plain.clone().with_feedback(fb, 3);
        let pred = Predicate::Between(Value::Int(0), Value::Int(4));
        let stat = plain.pred_selectivity(employee, age, &pred);
        let corrected = steered.pred_selectivity(employee, age, &pred);
        // The learned correction multiplies on top of the histogram
        // estimate. A single moderate (2× band) observation is damped
        // to its square root until confirmed, so one execution of a
        // 0.5× miss steers by √0.5.
        let expect = stat * 0.5_f64.sqrt();
        assert!((corrected - expect).abs() < 1e-9, "{corrected} vs {expect}");
    }

    #[test]
    fn collect_counts_cardinality_and_distincts() {
        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        let employee = s.type_id("employee").unwrap();
        for (n, a, d) in [
            ("ann", 40, "sales"),
            ("bob", 30, "sales"),
            ("carol", 30, "research"),
        ] {
            db.insert_fields(
                employee,
                &[
                    ("name", Value::str(n)),
                    ("age", Value::Int(a)),
                    ("depname", Value::str(d)),
                ],
            )
            .unwrap();
        }
        let stats = Statistics::collect(&db, &[]);
        assert_eq!(stats.cardinality(employee), 3);
        assert_eq!(
            stats.distinct_count(employee, s.attr_id("name").unwrap()),
            3
        );
        assert_eq!(stats.distinct_count(employee, s.attr_id("age").unwrap()), 2);
        assert_eq!(
            stats.distinct_count(employee, s.attr_id("depname").unwrap()),
            2
        );
        let sel = stats.selectivity(employee, s.attr_id("depname").unwrap());
        assert!((sel - 0.5).abs() < 1e-9);
        // An attribute outside the type has no distincts.
        assert_eq!(
            stats.distinct_count(employee, s.attr_id("budget").unwrap()),
            0
        );
    }

    #[test]
    fn join_cardinality_divides_by_the_dominant_key() {
        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        let depname = s.attr_id("depname").unwrap();
        let name = s.attr_id("name").unwrap();
        let age = s.attr_id("age").unwrap();
        for i in 0..90i64 {
            db.insert_fields(
                employee,
                &[
                    ("name", Value::str(&format!("p{i}"))),
                    ("age", Value::Int(i % 30)),
                    (
                        "depname",
                        Value::str(["sales", "research", "admin"][(i % 3) as usize]),
                    ),
                ],
            )
            .unwrap();
        }
        for (d, l) in [("sales", "amsterdam"), ("research", "utrecht")] {
            db.insert_fields(
                department,
                &[("depname", Value::str(d)), ("location", Value::str(l))],
            )
            .unwrap();
        }
        let stats = Statistics::collect(&db, &[]);
        let out = s.type_id("worksfor").unwrap();
        // FK-style join: 90 × 2 / max(distinct depname) = 180 / 3 = 60.
        let fk = stats.join_cardinality(out, employee, 90.0, department, 2.0, &[depname]);
        assert!((fk - 60.0).abs() < 1e-9, "got {fk}");
        // No shared attributes: a genuine cross product.
        let cross = stats.join_cardinality(out, employee, 90.0, department, 2.0, &[]);
        assert!((cross - 180.0).abs() < 1e-9, "got {cross}");
        assert_eq!(stats.dominant_join_key(employee, department, &[]), None);
        // A compound key charges only its most selective attribute
        // (name: 90 distinct dominates age: 30 distinct).
        let compound = stats.join_cardinality(out, employee, 90.0, employee, 90.0, &[name, age]);
        assert!((compound - 90.0).abs() < 1e-9, "got {compound}");
        assert_eq!(
            stats.dominant_join_key(employee, employee, &[age, name]),
            Some(name)
        );
    }

    #[test]
    fn min_max_and_range_selectivity() {
        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        let employee = s.type_id("employee").unwrap();
        let age = s.attr_id("age").unwrap();
        for i in 0..100i64 {
            db.insert_fields(
                employee,
                &[
                    ("name", Value::str(&format!("p{i}"))),
                    ("age", Value::Int(i)),
                    ("depname", Value::str("sales")),
                ],
            )
            .unwrap();
        }
        let stats = Statistics::collect(&db, &[]);
        assert_eq!(stats.min(employee, age), Some(&Value::Int(0)));
        assert_eq!(stats.max(employee, age), Some(&Value::Int(99)));
        // A 10% slice of the span estimates near 0.1.
        let sel = stats.pred_selectivity(
            employee,
            age,
            &Predicate::Between(Value::Int(10), Value::Int(20)),
        );
        assert!((0.05..0.2).contains(&sel), "got {sel}");
        // An unbounded-below range covering ~half the span.
        let half = stats.pred_selectivity(employee, age, &Predicate::Lt(Value::Int(50)));
        assert!((0.4..0.6).contains(&half), "got {half}");
        // Equality defers to 1/distinct.
        let eq = stats.pred_selectivity(employee, age, &Predicate::Eq(Value::Int(7)));
        assert!((eq - 0.01).abs() < 1e-9, "got {eq}");
        // An inverted Between is provably empty.
        assert_eq!(
            stats.pred_selectivity(
                employee,
                age,
                &Predicate::Between(Value::Int(9), Value::Int(1))
            ),
            0.0
        );
        // Non-numeric attributes fall back to the default guess.
        let name = s.attr_id("name").unwrap();
        let guess = stats.pred_selectivity(employee, name, &Predicate::Ge(Value::str("p5")));
        assert!((guess - DEFAULT_RANGE_SELECTIVITY).abs() < 1e-9);
    }

    #[test]
    fn attached_feedback_corrects_estimates() {
        use toposem_obs::FeedbackObservation;

        let _g = hist_lock();
        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        let employee = s.type_id("employee").unwrap();
        let age = s.attr_id("age").unwrap();
        for i in 0..100i64 {
            db.insert_fields(
                employee,
                &[
                    ("name", Value::str(&format!("p{i}"))),
                    ("age", Value::Int(i)),
                    ("depname", Value::str("sales")),
                ],
            )
            .unwrap();
        }
        let fb = Arc::new(SelectivityFeedback::with_enabled(true));
        // Pretend a profiled run saw a 10× overestimate on age ranges.
        fb.observe(
            5,
            &[FeedbackObservation {
                keys: vec![FeedbackKey {
                    ty: employee.index() as u32,
                    attr: age.index() as u32,
                    class: PredClass::Range,
                }],
                est_rows: 1_000.0,
                act_rows: 100.0,
            }],
        );
        let plain = Statistics::collect(&db, &[]);
        let steered = plain.clone().with_feedback(Arc::clone(&fb), 5);
        let pred = Predicate::Lt(Value::Int(50));
        let stat = plain.pred_selectivity(employee, age, &pred);
        let corrected = steered.pred_selectivity(employee, age, &pred);
        assert!(
            (corrected - stat * 0.1).abs() < 1e-9,
            "{corrected} vs {stat}"
        );
        // The static view is recoverable for est×corr factoring.
        let refactored = steered
            .without_feedback()
            .pred_selectivity(employee, age, &pred);
        assert!((refactored - stat).abs() < 1e-9);
        // A different epoch reads as neutral: corrections never survive
        // a stats bump.
        let stale = plain.clone().with_feedback(fb, 6);
        assert!((stale.pred_selectivity(employee, age, &pred) - stat).abs() < 1e-9);
    }
}
