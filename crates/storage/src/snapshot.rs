//! Durable snapshots of a database, as JSON via serde.
//!
//! The paper is about semantics, not recovery; a snapshot format
//! nevertheless makes the engine usable and lets the experiments persist
//! generated workloads. Schemas carry skipped lookup indices, so loading
//! rebuilds them.

use std::io::{Read, Write};

use toposem_extension::Database;

/// Errors from snapshot I/O.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed snapshot.
    Decode(serde_json::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Decode(e) => write!(f, "snapshot decode error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Decode(e)
    }
}

/// Serialises the database to a writer.
pub fn save<W: Write>(db: &Database, mut w: W) -> Result<(), SnapshotError> {
    let json = serde_json::to_vec(db)?;
    w.write_all(&json)?;
    Ok(())
}

/// Deserialises a database from a reader, rebuilding lookup indices.
pub fn load<R: Read>(mut r: R) -> Result<Database, SnapshotError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    let mut db: Database = serde_json::from_slice(&buf)?;
    db.rebuild_indices();
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog, Value};

    #[test]
    fn roundtrip_preserves_data_and_schema() {
        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        db.insert_fields(
            s.type_id("manager").unwrap(),
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(100)),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let back = load(&buf[..]).unwrap();
        assert_eq!(back.schema().type_id("manager"), s.type_id("manager"));
        assert_eq!(back.total_stored(), db.total_stored());
        for e in db.schema().type_ids() {
            assert_eq!(back.extension(e), db.extension(e));
        }
        assert!(back.verify_containment().is_empty());
    }

    #[test]
    fn loading_garbage_errors() {
        assert!(matches!(
            load(&b"not json"[..]),
            Err(SnapshotError::Decode(_))
        ));
    }
}
