//! Snapshots of a database, in two senses:
//!
//! 1. **Durable snapshots** ([`save`] / [`load`]): JSON via serde behind
//!    a self-identifying header. The paper is about semantics, not
//!    recovery; a snapshot format nevertheless makes the engine usable,
//!    lets the experiments persist generated workloads, and serves as
//!    the WAL's checkpoint payload. Every snapshot starts with [`MAGIC`]
//!    (format name + version), so a checkpoint file is recognisable on
//!    its own and future format evolution is detectable instead of
//!    surfacing as a JSON parse error deep inside the payload. Schemas
//!    carry skipped lookup indices, so loading rebuilds them.
//! 2. **In-memory epoch snapshots** ([`EngineSnapshot`]): an immutable
//!    copy of the engine's last *committed* state — database, secondary
//!    indexes, and lazily collected statistics — shared behind an `Arc`
//!    so MVCC readers plan and execute whole queries without ever
//!    taking the engine's write lock while the single writer mutates
//!    the next epoch.

use std::io::{Read, Write};
use std::sync::{Arc, OnceLock};

use toposem_extension::Database;
use toposem_obs::SelectivityFeedback;

use crate::index::Index;
use crate::stats::Statistics;

/// Header line every snapshot begins with: magic plus format version.
pub const MAGIC: &[u8] = b"TOPOSEM-SNAPSHOT v1\n";

/// Errors from snapshot I/O.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the snapshot magic/version header —
    /// either not a snapshot at all, or a format this build cannot read.
    BadHeader,
    /// Malformed snapshot payload.
    Decode(serde_json::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadHeader => write!(
                f,
                "snapshot header missing or unsupported (expected {:?})",
                String::from_utf8_lossy(MAGIC)
            ),
            SnapshotError::Decode(e) => write!(f, "snapshot decode error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Decode(e)
    }
}

/// Serialises the database to a writer: header line, then canonical JSON.
pub fn save<W: Write>(db: &Database, mut w: W) -> Result<(), SnapshotError> {
    let json = serde_json::to_vec(db)?;
    w.write_all(MAGIC)?;
    w.write_all(&json)?;
    Ok(())
}

/// Serialises the database to owned bytes (the WAL checkpoint payload).
pub fn to_vec(db: &Database) -> Result<Vec<u8>, SnapshotError> {
    let mut buf = Vec::new();
    save(db, &mut buf)?;
    Ok(buf)
}

/// Deserialises a database from a reader, validating the header and
/// rebuilding lookup indices.
pub fn load<R: Read>(mut r: R) -> Result<Database, SnapshotError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    let payload = buf.strip_prefix(MAGIC).ok_or(SnapshotError::BadHeader)?;
    let mut db: Database = serde_json::from_slice(payload)?;
    db.rebuild_indices();
    Ok(db)
}

/// An immutable snapshot of the engine's last committed state: the
/// database, the secondary-index array, and the statistics epoch it was
/// captured under, plus lazily collected [`Statistics`].
///
/// Snapshots give the engine MVCC reads: [`crate::Engine::snapshot`]
/// caches one per committed epoch and hands out `Arc` clones, so any
/// number of readers plan and execute whole queries against a stable
/// epoch — no torn joins, no engine lock held during execution — while
/// the single writer mutates the next epoch. A snapshot taken at
/// transaction start and pinned for the transaction's lifetime yields
/// snapshot isolation: later commits are simply never visible through
/// it. Dropping an index mid-read is equally safe: the snapshot owns its
/// own index array, and plans cached against a newer epoch never reach
/// a reader still holding this one.
pub struct EngineSnapshot {
    db: Database,
    indexes: Vec<Vec<Index>>,
    stats_epoch: u64,
    feedback: Arc<SelectivityFeedback>,
    stats: OnceLock<Arc<Statistics>>,
}

impl EngineSnapshot {
    /// Captures a snapshot of committed state. The caller (the engine,
    /// under its write lock) guarantees `db` and `indexes` contain no
    /// uncommitted mutations.
    pub(crate) fn capture(
        db: Database,
        indexes: Vec<Vec<Index>>,
        stats_epoch: u64,
        feedback: Arc<SelectivityFeedback>,
    ) -> EngineSnapshot {
        EngineSnapshot {
            db,
            indexes,
            stats_epoch,
            feedback,
            stats: OnceLock::new(),
        }
    }

    /// The snapshotted database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The snapshotted secondary indexes, indexed by `TypeId::index()`.
    pub fn indexes(&self) -> &[Vec<Index>] {
        &self.indexes
    }

    /// The statistics epoch this snapshot was captured under. Plans
    /// computed against this snapshot are keyed on it, so they never mix
    /// with plans for another epoch.
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch
    }

    /// Statistics over the snapshotted state, collected on first use and
    /// cached for the snapshot's lifetime (it is immutable, so they
    /// never go stale). Carries the engine's selectivity-feedback cache
    /// scoped to the snapshot's epoch.
    pub fn statistics(&self) -> Arc<Statistics> {
        Arc::clone(self.stats.get_or_init(|| {
            Arc::new(
                Statistics::collect(&self.db, &self.indexes)
                    .with_feedback(Arc::clone(&self.feedback), self.stats_epoch),
            )
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog, Value};

    #[test]
    fn roundtrip_preserves_data_and_schema() {
        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        db.insert_fields(
            s.type_id("manager").unwrap(),
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(100)),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let back = load(&buf[..]).unwrap();
        assert_eq!(back.schema().type_id("manager"), s.type_id("manager"));
        assert_eq!(back.total_stored(), db.total_stored());
        for e in db.schema().type_ids() {
            assert_eq!(back.extension(e), db.extension(e));
        }
        assert!(back.verify_containment().is_empty());
    }

    #[test]
    fn loading_garbage_errors_with_bad_header() {
        // No header at all: the input is not self-identifying.
        assert!(matches!(
            load(&b"not json"[..]),
            Err(SnapshotError::BadHeader)
        ));
        // Raw JSON from the pre-header format is likewise rejected up
        // front rather than misparsed.
        assert!(matches!(
            load(&b"{\"intension\":{}}"[..]),
            Err(SnapshotError::BadHeader)
        ));
        // A future version is detected as a header problem…
        assert!(matches!(
            load(&b"TOPOSEM-SNAPSHOT v2\n{}"[..]),
            Err(SnapshotError::BadHeader)
        ));
        // …while garbage *behind* a valid header is a decode problem.
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(b"not json");
        assert!(matches!(load(&bytes[..]), Err(SnapshotError::Decode(_))));
    }

    #[test]
    fn snapshots_are_self_identifying() {
        let db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let bytes = to_vec(&db).unwrap();
        assert!(bytes.starts_with(MAGIC));
        assert_eq!(load(&bytes[..]).unwrap().total_stored(), 0);
    }

    #[test]
    fn roundtrip_deep_equality_and_rebuilt_indices() {
        // Exercise both policies and a mixed load so the snapshot carries
        // every Value variant and a non-trivial ISA spread.
        for policy in [ContainmentPolicy::Eager, ContainmentPolicy::OnDemand] {
            let mut db = Database::new(
                Intension::analyse(employee_schema()),
                DomainCatalog::employee_defaults(),
                policy,
            );
            let s = db.schema().clone();
            for (n, a, d, b) in [("ann", 40, "sales", 100), ("bob", 30, "research", 7)] {
                db.insert_fields(
                    s.type_id("manager").unwrap(),
                    &[
                        ("name", Value::str(n)),
                        ("age", Value::Int(a)),
                        ("depname", Value::str(d)),
                        ("budget", Value::Int(b)),
                    ],
                )
                .unwrap();
            }
            db.insert_fields(
                s.type_id("department").unwrap(),
                &[
                    ("depname", Value::str("sales")),
                    ("location", Value::str("amsterdam")),
                ],
            )
            .unwrap();

            let mut buf = Vec::new();
            save(&db, &mut buf).unwrap();
            let back = load(&buf[..]).unwrap();

            // Deep schema equality, not just name agreement.
            assert_eq!(back.schema(), db.schema());
            assert_eq!(back.policy(), db.policy());
            // Stored relations and semantic extensions agree everywhere.
            for e in s.type_ids() {
                assert_eq!(back.stored(e), db.stored(e));
                assert_eq!(back.extension(e), db.extension(e));
            }
            // The serde-skipped lookup indices were rebuilt by `load`:
            // name→id resolution works on the loaded schema.
            for e in s.type_ids() {
                let name = s.type_name(e);
                assert_eq!(back.schema().type_id(name), Some(e));
            }
            for a in s.attr_ids() {
                let name = s.attr_name(a);
                assert_eq!(back.schema().attr_id(name), Some(a));
            }
            // And a second save of the loaded database is byte-identical —
            // the round trip is a fixpoint.
            let mut buf2 = Vec::new();
            save(&back, &mut buf2).unwrap();
            assert_eq!(buf, buf2);
        }
    }
}
