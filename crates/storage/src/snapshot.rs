//! Durable snapshots of a database, as JSON via serde behind a
//! self-identifying header.
//!
//! The paper is about semantics, not recovery; a snapshot format
//! nevertheless makes the engine usable, lets the experiments persist
//! generated workloads, and serves as the WAL's checkpoint payload.
//! Every snapshot starts with [`MAGIC`] (format name + version), so a
//! checkpoint file is recognisable on its own and future format
//! evolution is detectable instead of surfacing as a JSON parse error
//! deep inside the payload. Schemas carry skipped lookup indices, so
//! loading rebuilds them.

use std::io::{Read, Write};

use toposem_extension::Database;

/// Header line every snapshot begins with: magic plus format version.
pub const MAGIC: &[u8] = b"TOPOSEM-SNAPSHOT v1\n";

/// Errors from snapshot I/O.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the snapshot magic/version header —
    /// either not a snapshot at all, or a format this build cannot read.
    BadHeader,
    /// Malformed snapshot payload.
    Decode(serde_json::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadHeader => write!(
                f,
                "snapshot header missing or unsupported (expected {:?})",
                String::from_utf8_lossy(MAGIC)
            ),
            SnapshotError::Decode(e) => write!(f, "snapshot decode error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Decode(e)
    }
}

/// Serialises the database to a writer: header line, then canonical JSON.
pub fn save<W: Write>(db: &Database, mut w: W) -> Result<(), SnapshotError> {
    let json = serde_json::to_vec(db)?;
    w.write_all(MAGIC)?;
    w.write_all(&json)?;
    Ok(())
}

/// Serialises the database to owned bytes (the WAL checkpoint payload).
pub fn to_vec(db: &Database) -> Result<Vec<u8>, SnapshotError> {
    let mut buf = Vec::new();
    save(db, &mut buf)?;
    Ok(buf)
}

/// Deserialises a database from a reader, validating the header and
/// rebuilding lookup indices.
pub fn load<R: Read>(mut r: R) -> Result<Database, SnapshotError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    let payload = buf.strip_prefix(MAGIC).ok_or(SnapshotError::BadHeader)?;
    let mut db: Database = serde_json::from_slice(payload)?;
    db.rebuild_indices();
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog, Value};

    #[test]
    fn roundtrip_preserves_data_and_schema() {
        let mut db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = db.schema().clone();
        db.insert_fields(
            s.type_id("manager").unwrap(),
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(100)),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let back = load(&buf[..]).unwrap();
        assert_eq!(back.schema().type_id("manager"), s.type_id("manager"));
        assert_eq!(back.total_stored(), db.total_stored());
        for e in db.schema().type_ids() {
            assert_eq!(back.extension(e), db.extension(e));
        }
        assert!(back.verify_containment().is_empty());
    }

    #[test]
    fn loading_garbage_errors_with_bad_header() {
        // No header at all: the input is not self-identifying.
        assert!(matches!(
            load(&b"not json"[..]),
            Err(SnapshotError::BadHeader)
        ));
        // Raw JSON from the pre-header format is likewise rejected up
        // front rather than misparsed.
        assert!(matches!(
            load(&b"{\"intension\":{}}"[..]),
            Err(SnapshotError::BadHeader)
        ));
        // A future version is detected as a header problem…
        assert!(matches!(
            load(&b"TOPOSEM-SNAPSHOT v2\n{}"[..]),
            Err(SnapshotError::BadHeader)
        ));
        // …while garbage *behind* a valid header is a decode problem.
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(b"not json");
        assert!(matches!(load(&bytes[..]), Err(SnapshotError::Decode(_))));
    }

    #[test]
    fn snapshots_are_self_identifying() {
        let db = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let bytes = to_vec(&db).unwrap();
        assert!(bytes.starts_with(MAGIC));
        assert_eq!(load(&bytes[..]).unwrap().total_stored(), 0);
    }

    #[test]
    fn roundtrip_deep_equality_and_rebuilt_indices() {
        // Exercise both policies and a mixed load so the snapshot carries
        // every Value variant and a non-trivial ISA spread.
        for policy in [ContainmentPolicy::Eager, ContainmentPolicy::OnDemand] {
            let mut db = Database::new(
                Intension::analyse(employee_schema()),
                DomainCatalog::employee_defaults(),
                policy,
            );
            let s = db.schema().clone();
            for (n, a, d, b) in [("ann", 40, "sales", 100), ("bob", 30, "research", 7)] {
                db.insert_fields(
                    s.type_id("manager").unwrap(),
                    &[
                        ("name", Value::str(n)),
                        ("age", Value::Int(a)),
                        ("depname", Value::str(d)),
                        ("budget", Value::Int(b)),
                    ],
                )
                .unwrap();
            }
            db.insert_fields(
                s.type_id("department").unwrap(),
                &[
                    ("depname", Value::str("sales")),
                    ("location", Value::str("amsterdam")),
                ],
            )
            .unwrap();

            let mut buf = Vec::new();
            save(&db, &mut buf).unwrap();
            let back = load(&buf[..]).unwrap();

            // Deep schema equality, not just name agreement.
            assert_eq!(back.schema(), db.schema());
            assert_eq!(back.policy(), db.policy());
            // Stored relations and semantic extensions agree everywhere.
            for e in s.type_ids() {
                assert_eq!(back.stored(e), db.stored(e));
                assert_eq!(back.extension(e), db.extension(e));
            }
            // The serde-skipped lookup indices were rebuilt by `load`:
            // name→id resolution works on the loaded schema.
            for e in s.type_ids() {
                let name = s.type_name(e);
                assert_eq!(back.schema().type_id(name), Some(e));
            }
            for a in s.attr_ids() {
                let name = s.attr_name(a);
                assert_eq!(back.schema().attr_id(name), Some(a));
            }
            // And a second save of the loaded database is byte-identical —
            // the round trip is a fixpoint.
            let mut buf2 = Vec::new();
            save(&back, &mut buf2).unwrap();
            assert_eq!(buf, buf2);
        }
    }
}
