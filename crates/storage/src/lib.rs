//! # toposem-storage
//!
//! The operational layer the paper never built: an axiom-enforcing
//! storage engine over the toposem model. Maintained containment,
//! declared-FD enforcement, hash/ordered/composite secondary indexes,
//! undo-log transactions, a query
//! algebra restricted to topology-sanctioned paths, views with unique
//! update translation, subbase-only physical storage with derivation of
//! constructed types, self-identifying JSON snapshots, and — through
//! `toposem-wal` — durable commits, checkpointing, and crash recovery
//! ([`Engine::durable`] / [`Engine::open`] / [`Engine::recover`]).

pub mod catalog;
pub mod engine;
pub mod index;
pub mod query;
pub mod snapshot;
pub mod stats;
pub mod view_exec;

pub use catalog::{Catalog, StoragePlan};
pub use engine::{Engine, EngineError};
pub use index::{CompositeIndex, HashIndex, Index, IndexKind, OrdIndex};
pub use query::{
    cmp_by_keys, Interval, PredBound, Predicate, Query, QueryError, SortDir, SortKeys,
};
pub use snapshot::{load, save, EngineSnapshot, SnapshotError};
pub use stats::{histograms_enabled, set_histograms_enabled, Histogram, Statistics, TypeStats};
pub use view_exec::{
    apply_update, materialise, translation_count, MaterialisedView, ViewError, ViewUpdate,
};
