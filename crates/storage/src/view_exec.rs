//! View execution and the **unique view-update translation** (§1, §6).
//!
//! "We only allow a user to combine entities such that there is always a
//! proper translation back to its constituents. This way it avoids the
//! view-update problems encountered in other approaches where the
//! projection operator can easily destroy the semantic bonds between
//! attributes composing an entity."
//!
//! A view is a *set of entity types* (View Axiom). Reading it
//! materialises each constituent; updating it names a constituent, so the
//! translation to base updates is the identity routing — there is exactly
//! **one** translation, always. `toposem-ur` exhibits the contrast.

use toposem_core::{TypeId, ViewType};
use toposem_extension::{Instance, Relation, Value};

use crate::engine::{Engine, EngineError};

/// A materialised view: the relations of each constituent, in member
/// order.
#[derive(Clone, Debug)]
pub struct MaterialisedView {
    /// `(entity type, relation)` pairs.
    pub parts: Vec<(TypeId, Relation)>,
}

impl MaterialisedView {
    /// Total tuples across constituents.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|(_, r)| r.len()).sum()
    }

    /// True when every constituent is empty.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|(_, r)| r.is_empty())
    }

    /// The relation of one constituent.
    pub fn part(&self, e: TypeId) -> Option<&Relation> {
        self.parts.iter().find(|(t, _)| *t == e).map(|(_, r)| r)
    }
}

/// An update issued against a view.
#[derive(Clone, Debug)]
pub enum ViewUpdate<'a> {
    /// Insert named fields into a constituent.
    Insert {
        /// The constituent entity type the user addresses.
        target: TypeId,
        /// Field values.
        fields: &'a [(&'a str, Value)],
    },
    /// Delete an instance from a constituent.
    Delete {
        /// The constituent entity type the user addresses.
        target: TypeId,
        /// The instance to remove.
        instance: &'a Instance,
    },
}

/// Errors from view operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewError {
    /// The addressed type is not a constituent of the view — such an
    /// update is inexpressible, *not* ambiguous.
    NotAConstituent(TypeId),
    /// The underlying engine rejected the translated update.
    Engine(EngineError),
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::NotAConstituent(t) => {
                write!(f, "entity type {t} is not a constituent of the view")
            }
            ViewError::Engine(e) => write!(f, "translated update rejected: {e}"),
        }
    }
}

impl std::error::Error for ViewError {}

/// Materialises a view against the engine.
pub fn materialise(engine: &Engine, view: &ViewType) -> MaterialisedView {
    MaterialisedView {
        parts: view
            .decompose()
            .into_iter()
            .map(|e| (e, engine.extension(e)))
            .collect(),
    }
}

/// Translates a view update into base-table updates. The translation is
/// unique by construction: the update names its constituent, and the
/// constituent is a base entity type. Returns the number of base tuples
/// affected.
pub fn apply_update(
    engine: &Engine,
    view: &ViewType,
    update: ViewUpdate<'_>,
) -> Result<usize, ViewError> {
    match update {
        ViewUpdate::Insert { target, fields } => {
            let routed = view
                .route_update(target)
                .ok_or(ViewError::NotAConstituent(target))?;
            let fresh = engine.insert(routed, fields).map_err(ViewError::Engine)?;
            Ok(usize::from(fresh))
        }
        ViewUpdate::Delete { target, instance } => {
            let routed = view
                .route_update(target)
                .ok_or(ViewError::NotAConstituent(target))?;
            engine.delete(routed, instance).map_err(ViewError::Engine)
        }
    }
}

/// The number of distinct base-update translations of a view update:
/// always exactly 1 for expressible updates, 0 for inexpressible ones.
/// Exists so the comparison bench against the Universal Relation baseline
/// reports the same metric for both systems.
pub fn translation_count(view: &ViewType, target: TypeId) -> usize {
    usize::from(view.route_update(target).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, Database, DomainCatalog};

    fn engine() -> Engine {
        Engine::new(Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        ))
    }

    fn staffing_view(engine: &Engine) -> ViewType {
        engine.with_db(|db| {
            let s = db.schema();
            ViewType::new(
                s,
                "staffing",
                &[
                    s.type_id("employee").unwrap(),
                    s.type_id("department").unwrap(),
                ],
            )
            .unwrap()
        })
    }

    #[test]
    fn insert_through_view_routes_uniquely() {
        let eng = engine();
        let view = staffing_view(&eng);
        let employee = eng.with_db(|db| db.schema().type_id("employee").unwrap());
        let affected = apply_update(
            &eng,
            &view,
            ViewUpdate::Insert {
                target: employee,
                fields: &[
                    ("name", Value::str("ann")),
                    ("age", Value::Int(40)),
                    ("depname", Value::str("sales")),
                ],
            },
        )
        .unwrap();
        assert_eq!(affected, 1);
        let m = materialise(&eng, &view);
        assert_eq!(m.part(employee).unwrap().len(), 1);
        assert_eq!(translation_count(&view, employee), 1);
    }

    #[test]
    fn update_outside_constituents_is_inexpressible() {
        let eng = engine();
        let view = staffing_view(&eng);
        let manager = eng.with_db(|db| db.schema().type_id("manager").unwrap());
        let err = apply_update(
            &eng,
            &view,
            ViewUpdate::Insert {
                target: manager,
                fields: &[],
            },
        )
        .unwrap_err();
        assert_eq!(err, ViewError::NotAConstituent(manager));
        assert_eq!(translation_count(&view, manager), 0);
    }

    #[test]
    fn delete_through_view_cascades_correctly() {
        let eng = engine();
        let view = staffing_view(&eng);
        let s = eng.with_db(|db| db.schema().clone());
        let employee = s.type_id("employee").unwrap();
        apply_update(
            &eng,
            &view,
            ViewUpdate::Insert {
                target: employee,
                fields: &[
                    ("name", Value::str("ann")),
                    ("age", Value::Int(40)),
                    ("depname", Value::str("sales")),
                ],
            },
        )
        .unwrap();
        let ann = eng.with_db(|db| {
            Instance::new(
                db.schema(),
                db.catalog(),
                employee,
                &[
                    ("name", Value::str("ann")),
                    ("age", Value::Int(40)),
                    ("depname", Value::str("sales")),
                ],
            )
            .unwrap()
        });
        let removed = apply_update(
            &eng,
            &view,
            ViewUpdate::Delete {
                target: employee,
                instance: &ann,
            },
        )
        .unwrap();
        assert_eq!(removed, 1);
        assert!(materialise(&eng, &view).is_empty());
    }

    #[test]
    fn materialised_view_reflects_all_parts() {
        let eng = engine();
        let view = staffing_view(&eng);
        let s = eng.with_db(|db| db.schema().clone());
        eng.insert(
            s.type_id("department").unwrap(),
            &[
                ("depname", Value::str("sales")),
                ("location", Value::str("amsterdam")),
            ],
        )
        .unwrap();
        let m = materialise(&eng, &view);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        assert!(m.part(s.type_id("person").unwrap()).is_none());
    }
}
