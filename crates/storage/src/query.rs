//! A query algebra restricted to topology-sanctioned paths.
//!
//! §1: the model "limits their use along well-defined paths" — free
//! recombination of attributes (the Universal Relation's failure mode) is
//! ruled out. Concretely:
//!
//! - **Project** is allowed only onto a *generalisation* of the input's
//!   entity type (moving up the ISA hierarchy);
//! - **Join** is allowed only when the combined attribute set is itself a
//!   declared entity type (the Relationship Axiom: combinations must be
//!   explicated as entities);
//! - **Select** never changes the entity type.
//!
//! Every well-typed query therefore *has* an entity type, so its result is
//! interpretable and updatable — queries cannot "destroy the semantic
//! bonds between attributes composing an entity".

use toposem_core::TypeId;
use toposem_extension::{natural_join, Database, Instance, Relation, Value};

/// A selection predicate on one attribute: equality or a range
/// comparison under the total [`Ord`] on [`Value`] (integers before
/// strings before booleans, then the natural order within a variant —
/// the same order `OrdIndex` sorts by, so indexed and naive evaluation
/// cannot disagree).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Predicate {
    /// `attr = v`.
    Eq(Value),
    /// `attr < v`.
    Lt(Value),
    /// `attr ≤ v`.
    Le(Value),
    /// `attr > v`.
    Gt(Value),
    /// `attr ≥ v`.
    Ge(Value),
    /// `lo ≤ attr ≤ hi` (inclusive on both ends).
    Between(Value, Value),
}

impl Predicate {
    /// Does `v` satisfy this predicate?
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Predicate::Eq(w) => v == w,
            Predicate::Lt(w) => v < w,
            Predicate::Le(w) => v <= w,
            Predicate::Gt(w) => v > w,
            Predicate::Ge(w) => v >= w,
            Predicate::Between(lo, hi) => lo <= v && v <= hi,
        }
    }

    /// The sought value when this is an equality predicate.
    pub fn as_eq(&self) -> Option<&Value> {
        match self {
            Predicate::Eq(v) => Some(v),
            _ => None,
        }
    }

    /// The predicate as inclusive/exclusive interval bounds:
    /// `(lower, upper)`, each `Some((value, inclusive))` when bounded.
    /// Equality is the degenerate interval `[v, v]`.
    pub fn bounds(&self) -> (PredBound<'_>, PredBound<'_>) {
        match self {
            Predicate::Eq(v) => (Some((v, true)), Some((v, true))),
            Predicate::Lt(v) => (None, Some((v, false))),
            Predicate::Le(v) => (None, Some((v, true))),
            Predicate::Gt(v) => (Some((v, false)), None),
            Predicate::Ge(v) => (Some((v, true)), None),
            Predicate::Between(lo, hi) => (Some((lo, true)), Some((hi, true))),
        }
    }

    /// True when no value can satisfy the predicate (an inverted
    /// `Between`).
    pub fn is_empty(&self) -> bool {
        match self {
            Predicate::Between(lo, hi) => lo > hi,
            _ => false,
        }
    }

    /// The set of *integers* this predicate admits, as an inclusive
    /// range `Some((lo, hi))`, or `None` when no integer satisfies it.
    /// Bounds of other variants resolve through the total [`Ord`] on
    /// [`Value`] (`Int < Str < Bool`): a `Str`/`Bool` upper bound
    /// admits every integer, a `Str`/`Bool` lower bound admits none.
    /// The columnar integer kernels and histogram pricing both build on
    /// this, so they cannot disagree with [`Predicate::matches`].
    pub fn int_range(&self) -> Option<(i64, i64)> {
        let (plo, phi) = self.bounds();
        let lo = match plo {
            None => i64::MIN,
            Some((Value::Int(v), true)) => *v,
            Some((Value::Int(v), false)) => v.checked_add(1)?,
            // No integer is ≥ any Str/Bool bound.
            Some(_) => return None,
        };
        let hi = match phi {
            None => i64::MAX,
            Some((Value::Int(v), true)) => *v,
            Some((Value::Int(v), false)) => v.checked_sub(1)?,
            // Every integer is < any Str/Bool bound.
            Some(_) => i64::MAX,
        };
        (lo <= hi).then_some((lo, hi))
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::Eq(v) => write!(f, "= {v}"),
            Predicate::Lt(v) => write!(f, "< {v}"),
            Predicate::Le(v) => write!(f, "≤ {v}"),
            Predicate::Gt(v) => write!(f, "> {v}"),
            Predicate::Ge(v) => write!(f, "≥ {v}"),
            Predicate::Between(lo, hi) => write!(f, "∈ [{lo}, {hi}]"),
        }
    }
}

/// One interval bound of a [`Predicate`]: the bounding value and whether
/// it is inclusive; `None` means unbounded on that side.
pub type PredBound<'a> = Option<(&'a Value, bool)>;

/// Direction of one sort key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SortDir {
    /// Smallest value first (the order every index walk produces).
    Asc,
    /// Largest value first (always needs an explicit sort).
    Desc,
}

impl std::fmt::Display for SortDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SortDir::Asc => write!(f, "asc"),
            SortDir::Desc => write!(f, "desc"),
        }
    }
}

/// A requested output ordering: sort keys applied left to right.
pub type SortKeys = Vec<(toposem_core::AttrId, SortDir)>;

/// Compares two instances under `keys` (attributes outside either tuple
/// order last, which cannot happen for validated same-type tuples).
pub fn cmp_by_keys(
    a: &Instance,
    b: &Instance,
    keys: &[(toposem_core::AttrId, SortDir)],
) -> std::cmp::Ordering {
    for (attr, dir) in keys {
        let ord = a.get(*attr).cmp(&b.get(*attr));
        let ord = match dir {
            SortDir::Asc => ord,
            SortDir::Desc => ord.reverse(),
        };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// The intersection of predicate intervals on one attribute: an owned
/// `(value, inclusive)` bound on each side, tightened one predicate at a
/// time. This is the single home of the inclusive/exclusive bound-merge
/// rules — the planner's emptiness proof (dead-branch elimination) and
/// its ordered-index range seeks both build on it, so they cannot
/// disagree about which values a conjunction admits.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound; `None` = unbounded below.
    pub lo: Option<(Value, bool)>,
    /// Upper bound; `None` = unbounded above.
    pub hi: Option<(Value, bool)>,
}

impl Interval {
    /// The full interval (no bounds).
    pub fn full() -> Self {
        Interval::default()
    }

    /// Narrows this interval by `p`'s interval: a higher lower bound is
    /// tighter (at equal values, exclusive beats inclusive), and
    /// symmetrically for upper bounds.
    pub fn tighten(&mut self, p: &Predicate) {
        let (plo, phi) = p.bounds();
        if let Some((v, inc)) = plo {
            let tighter = match &self.lo {
                None => true,
                Some((cur, cur_inc)) => v > cur || (v == cur && *cur_inc && !inc),
            };
            if tighter {
                self.lo = Some((v.clone(), inc));
            }
        }
        if let Some((v, inc)) = phi {
            let tighter = match &self.hi {
                None => true,
                Some((cur, cur_inc)) => v < cur || (v == cur && *cur_inc && !inc),
            };
            if tighter {
                self.hi = Some((v.clone(), inc));
            }
        }
    }

    /// True when no value lies in the interval: the lower bound exceeds
    /// the upper, or they meet with either side exclusive.
    pub fn is_empty(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Some((l, li)), Some((h, hi))) => l > h || (l == h && !(*li && *hi)),
            _ => false,
        }
    }
}

/// A query over the database, with its statically-known entity type.
#[derive(Clone, Debug)]
pub enum Query {
    /// The extension of an entity type.
    Scan(TypeId),
    /// Filter by a single-attribute predicate (equality or range);
    /// type-preserving. Conjunctive multi-attribute selections are
    /// chains of `Select` nodes — the planner merges them.
    Select {
        /// Input query.
        input: Box<Query>,
        /// Attribute to compare.
        attr: toposem_core::AttrId,
        /// The predicate its value must satisfy.
        pred: Predicate,
    },
    /// Project onto a generalisation.
    Project {
        /// Input query.
        input: Box<Query>,
        /// Target entity type (must generalise the input's type).
        to: TypeId,
    },
    /// Natural join; the result must be a declared entity type.
    Join(Box<Query>, Box<Query>),
    /// Set union of two queries of the *same* entity type (opens of the
    /// entity-type topology are closed under union, so same-type unions
    /// are always sanctioned).
    Union(Box<Query>, Box<Query>),
    /// Set intersection of two queries of the same entity type.
    Intersect(Box<Query>, Box<Query>),
    /// Requested output ordering; type-preserving. Ordering is
    /// observable only at the query root (results are sets, so an
    /// interior ordering carries no meaning); nested `OrderBy` nodes
    /// collapse to the outermost one.
    OrderBy {
        /// Input query.
        input: Box<Query>,
        /// Sort keys, applied left to right.
        keys: SortKeys,
    },
}

/// Typing/validation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Projection target is not a generalisation of the input type.
    NotAGeneralisation {
        /// Input entity type.
        from: TypeId,
        /// Attempted target.
        to: TypeId,
    },
    /// The joined attribute set matches no declared entity type.
    JoinNotAnEntityType,
    /// Union/intersection operands have different entity types.
    TypeMismatch(TypeId, TypeId),
    /// A selection attribute does not belong to the input type.
    ForeignAttribute(toposem_core::AttrId),
    /// A read-consistency bound could not be met: the target (a
    /// replica) has not applied up to the requested LSN.
    Stale {
        /// The LSN the caller required the target to have applied.
        want_lsn: u64,
        /// The LSN the target had actually applied.
        applied_lsn: u64,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NotAGeneralisation { from, to } => {
                write!(f, "cannot project {from} onto non-generalisation {to}")
            }
            QueryError::JoinNotAnEntityType => write!(
                f,
                "join result is not a declared entity type; explicate the relationship first"
            ),
            QueryError::ForeignAttribute(a) => write!(f, "attribute {a} not in input type"),
            QueryError::TypeMismatch(a, b) => {
                write!(
                    f,
                    "set operation requires equal entity types, got {a} and {b}"
                )
            }
            QueryError::Stale {
                want_lsn,
                applied_lsn,
            } => {
                write!(
                    f,
                    "read target is stale: applied lsn {applied_lsn} is behind required {want_lsn}"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl Query {
    /// Convenience: a scan.
    pub fn scan(e: TypeId) -> Query {
        Query::Scan(e)
    }

    /// Convenience: selection by an arbitrary predicate.
    pub fn select_pred(self, attr: toposem_core::AttrId, pred: Predicate) -> Query {
        Query::Select {
            input: Box::new(self),
            attr,
            pred,
        }
    }

    /// Convenience: equality selection.
    pub fn select(self, attr: toposem_core::AttrId, value: Value) -> Query {
        self.select_pred(attr, Predicate::Eq(value))
    }

    /// Convenience: `attr < v`.
    pub fn select_lt(self, attr: toposem_core::AttrId, value: Value) -> Query {
        self.select_pred(attr, Predicate::Lt(value))
    }

    /// Convenience: `attr ≤ v`.
    pub fn select_le(self, attr: toposem_core::AttrId, value: Value) -> Query {
        self.select_pred(attr, Predicate::Le(value))
    }

    /// Convenience: `attr > v`.
    pub fn select_gt(self, attr: toposem_core::AttrId, value: Value) -> Query {
        self.select_pred(attr, Predicate::Gt(value))
    }

    /// Convenience: `attr ≥ v`.
    pub fn select_ge(self, attr: toposem_core::AttrId, value: Value) -> Query {
        self.select_pred(attr, Predicate::Ge(value))
    }

    /// Convenience: `lo ≤ attr ≤ hi`.
    pub fn select_between(self, attr: toposem_core::AttrId, lo: Value, hi: Value) -> Query {
        self.select_pred(attr, Predicate::Between(lo, hi))
    }

    /// Convenience: conjunctive multi-attribute equality selection —
    /// one `Select` node per `(attr, value)` pair; the planner merges
    /// the chain into a single conjunction and matches it against
    /// composite index prefixes.
    pub fn select_all(self, preds: &[(toposem_core::AttrId, Value)]) -> Query {
        preds.iter().fold(self, |q, (a, v)| q.select(*a, v.clone()))
    }

    /// Convenience: projection.
    pub fn project(self, to: TypeId) -> Query {
        Query::Project {
            input: Box::new(self),
            to,
        }
    }

    /// Convenience: join.
    pub fn join(self, other: Query) -> Query {
        Query::Join(Box::new(self), Box::new(other))
    }

    /// Convenience: same-type union.
    pub fn union(self, other: Query) -> Query {
        Query::Union(Box::new(self), Box::new(other))
    }

    /// Convenience: same-type intersection.
    pub fn intersect(self, other: Query) -> Query {
        Query::Intersect(Box::new(self), Box::new(other))
    }

    /// Convenience: request an output ordering (keys applied left to
    /// right). The outermost `OrderBy` of a query wins; ordering an
    /// intermediate subquery has no effect on the (set-valued) result.
    pub fn order_by(self, keys: SortKeys) -> Query {
        Query::OrderBy {
            input: Box::new(self),
            keys,
        }
    }

    /// Convenience: ascending single-key ordering.
    pub fn order_by_asc(self, attr: toposem_core::AttrId) -> Query {
        self.order_by(vec![(attr, SortDir::Asc)])
    }

    /// The effective root ordering: the outermost `OrderBy`'s keys, or
    /// empty when the query requests none.
    pub fn root_order(&self) -> &[(toposem_core::AttrId, SortDir)] {
        match self {
            Query::OrderBy { keys, .. } => keys,
            _ => &[],
        }
    }

    /// A stable in-process fingerprint of the query's structure (FNV-1a
    /// over the canonical debug rendering). Two structurally identical
    /// queries collide on purpose — the planner's cache keys on this
    /// together with the engine's statistics epoch.
    pub fn fingerprint(&self) -> u64 {
        Self::fingerprint_str(&format!("{self:?}"))
    }

    /// [`Query::fingerprint`] over an already-rendered `format!("{q:?}")`
    /// string — callers that also need the rendering (e.g. to verify
    /// cache hits against collisions) avoid formatting the tree twice.
    pub fn fingerprint_str(repr: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Statically types the query: its result entity type, or the first
    /// sanction violation.
    pub fn entity_type(&self, db: &Database) -> Result<TypeId, QueryError> {
        let schema = db.schema();
        match self {
            Query::Scan(e) => Ok(*e),
            Query::Select { input, attr, .. } => {
                let e = input.entity_type(db)?;
                if !schema.attrs_of(e).contains(attr.index()) {
                    return Err(QueryError::ForeignAttribute(*attr));
                }
                Ok(e)
            }
            Query::Project { input, to } => {
                let from = input.entity_type(db)?;
                if !schema.attrs_of(*to).is_subset(schema.attrs_of(from)) {
                    return Err(QueryError::NotAGeneralisation { from, to: *to });
                }
                Ok(*to)
            }
            Query::Join(a, b) => {
                let ta = a.entity_type(db)?;
                let tb = b.entity_type(db)?;
                let combined = schema.attrs_of(ta).union(schema.attrs_of(tb));
                schema
                    .type_ids()
                    .find(|&t| schema.attrs_of(t) == &combined)
                    .ok_or(QueryError::JoinNotAnEntityType)
            }
            Query::Union(a, b) | Query::Intersect(a, b) => {
                let ta = a.entity_type(db)?;
                let tb = b.entity_type(db)?;
                if ta != tb {
                    return Err(QueryError::TypeMismatch(ta, tb));
                }
                Ok(ta)
            }
            Query::OrderBy { input, keys } => {
                let e = input.entity_type(db)?;
                for (attr, _) in keys {
                    if !schema.attrs_of(e).contains(attr.index()) {
                        return Err(QueryError::ForeignAttribute(*attr));
                    }
                }
                Ok(e)
            }
        }
    }

    /// Executes the query. Typing runs first; execution then cannot fail.
    /// The result is a set; any requested ordering is observable through
    /// [`Query::execute_ordered`] instead.
    pub fn execute(&self, db: &Database) -> Result<(TypeId, Relation), QueryError> {
        let out_type = self.entity_type(db)?;
        Ok((out_type, self.eval(db)))
    }

    /// Executes the query and returns its tuples as a sequence honouring
    /// the root [`Query::OrderBy`] (ties, and the whole result when no
    /// ordering was requested, fall back to the canonical instance
    /// order, so the output is fully deterministic).
    pub fn execute_ordered(&self, db: &Database) -> Result<(TypeId, Vec<Instance>), QueryError> {
        let (ty, rel) = self.execute(db)?;
        // Relation iterates canonically; a stable sort by the requested
        // keys therefore leaves ties canonically ordered.
        let mut out: Vec<Instance> = rel.iter().cloned().collect();
        let keys = self.root_order();
        if !keys.is_empty() {
            out.sort_by(|a, b| cmp_by_keys(a, b, keys));
        }
        Ok((ty, out))
    }

    fn eval(&self, db: &Database) -> Relation {
        let schema = db.schema();
        match self {
            Query::Scan(e) => db.extension(*e),
            Query::Select { input, attr, pred } => input
                .eval(db)
                .select(|t: &Instance| t.get(*attr).is_some_and(|v| pred.matches(v))),
            Query::Project { input, to } => input.eval(db).project(schema.attrs_of(*to)),
            Query::Join(a, b) => natural_join(schema.attr_count(), &a.eval(db), &b.eval(db)),
            Query::Union(a, b) => {
                let mut r = a.eval(db);
                r.union_with(&b.eval(db));
                r
            }
            Query::Intersect(a, b) => {
                let rb = b.eval(db);
                a.eval(db).select(|t| rb.contains(t))
            }
            // Ordering does not change the result *set*.
            Query::OrderBy { input, .. } => input.eval(db),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog};

    fn loaded_db() -> Database {
        let mut d = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = d.schema().clone();
        for (n, a, dep) in [("ann", 40, "sales"), ("bob", 30, "research")] {
            d.insert_fields(
                s.type_id("employee").unwrap(),
                &[
                    ("name", Value::str(n)),
                    ("age", Value::Int(a)),
                    ("depname", Value::str(dep)),
                ],
            )
            .unwrap();
        }
        for (dep, loc) in [("sales", "amsterdam"), ("research", "utrecht")] {
            d.insert_fields(
                s.type_id("department").unwrap(),
                &[("depname", Value::str(dep)), ("location", Value::str(loc))],
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn scan_select_project() {
        let db = loaded_db();
        let s = db.schema();
        let employee = s.type_id("employee").unwrap();
        let person = s.type_id("person").unwrap();
        let q = Query::scan(employee)
            .select(s.attr_id("depname").unwrap(), Value::str("sales"))
            .project(person);
        let (t, rel) = q.execute(&db).unwrap();
        assert_eq!(t, person);
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn range_selects_are_type_preserving_and_filter_correctly() {
        let db = loaded_db();
        let s = db.schema();
        let employee = s.type_id("employee").unwrap();
        let age = s.attr_id("age").unwrap();
        // ann is 40, bob is 30.
        let cases = [
            (Query::scan(employee).select_lt(age, Value::Int(40)), 1),
            (Query::scan(employee).select_le(age, Value::Int(40)), 2),
            (Query::scan(employee).select_gt(age, Value::Int(30)), 1),
            (Query::scan(employee).select_ge(age, Value::Int(30)), 2),
            (
                Query::scan(employee).select_between(age, Value::Int(30), Value::Int(39)),
                1,
            ),
            // Inverted bounds: empty, not an error.
            (
                Query::scan(employee).select_between(age, Value::Int(40), Value::Int(30)),
                0,
            ),
            // Conjunctive multi-attribute equality.
            (
                Query::scan(employee).select_all(&[
                    (s.attr_id("depname").unwrap(), Value::str("sales")),
                    (s.attr_id("name").unwrap(), Value::str("ann")),
                ]),
                1,
            ),
        ];
        for (q, want) in cases {
            let (t, rel) = q.execute(&db).unwrap();
            assert_eq!(t, employee, "range select changed the type of {q:?}");
            assert_eq!(rel.len(), want, "wrong cardinality for {q:?}");
        }
        // A range select on a foreign attribute is rejected like any
        // other selection.
        let q = Query::scan(s.type_id("person").unwrap())
            .select_lt(s.attr_id("budget").unwrap(), Value::Int(10));
        assert!(matches!(
            q.entity_type(&db),
            Err(QueryError::ForeignAttribute(_))
        ));
    }

    #[test]
    fn predicate_matches_and_bounds_agree() {
        let preds = [
            Predicate::Eq(Value::Int(5)),
            Predicate::Lt(Value::Int(5)),
            Predicate::Le(Value::Int(5)),
            Predicate::Gt(Value::Int(5)),
            Predicate::Ge(Value::Int(5)),
            Predicate::Between(Value::Int(3), Value::Int(7)),
            Predicate::Between(Value::Int(7), Value::Int(3)),
        ];
        for p in &preds {
            for v in (0..10).map(Value::Int) {
                // bounds() must describe exactly the set matches() accepts.
                let (lo, hi) = p.bounds();
                let in_lo = lo.is_none_or(|(b, inc)| if inc { &v >= b } else { &v > b });
                let in_hi = hi.is_none_or(|(b, inc)| if inc { &v <= b } else { &v < b });
                assert_eq!(
                    p.matches(&v),
                    in_lo && in_hi,
                    "bounds/matches disagree for {p:?} at {v:?}"
                );
            }
        }
        assert!(Predicate::Between(Value::Int(7), Value::Int(3)).is_empty());
        assert!(!Predicate::Between(Value::Int(3), Value::Int(3)).is_empty());
        assert_eq!(Predicate::Eq(Value::Int(1)).as_eq(), Some(&Value::Int(1)));
        assert_eq!(Predicate::Lt(Value::Int(1)).as_eq(), None);
    }

    #[test]
    fn int_range_agrees_with_matches() {
        let preds = [
            Predicate::Eq(Value::Int(5)),
            Predicate::Lt(Value::Int(5)),
            Predicate::Le(Value::Int(5)),
            Predicate::Gt(Value::Int(5)),
            Predicate::Ge(Value::Int(5)),
            Predicate::Between(Value::Int(3), Value::Int(7)),
            Predicate::Between(Value::Int(7), Value::Int(3)),
            // Cross-variant constants resolve through Int < Str < Bool.
            Predicate::Eq(Value::str("x")),
            Predicate::Lt(Value::str("x")),
            Predicate::Gt(Value::str("x")),
            Predicate::Le(Value::Bool(false)),
            Predicate::Ge(Value::Bool(true)),
            Predicate::Between(Value::Int(2), Value::str("z")),
        ];
        for p in &preds {
            let range = p.int_range();
            for i in -10..=10 {
                let in_range = range.is_some_and(|(lo, hi)| lo <= i && i <= hi);
                assert_eq!(
                    p.matches(&Value::Int(i)),
                    in_range,
                    "int_range/matches disagree for {p:?} at {i}"
                );
            }
        }
        // Exclusive bounds at the i64 edges collapse to the empty set
        // instead of wrapping.
        assert_eq!(Predicate::Lt(Value::Int(i64::MIN)).int_range(), None);
        assert_eq!(Predicate::Gt(Value::Int(i64::MAX)).int_range(), None);
        assert_eq!(
            Predicate::Lt(Value::str("x")).int_range(),
            Some((i64::MIN, i64::MAX))
        );
    }

    #[test]
    fn order_by_is_type_preserving_and_orders_output() {
        let db = loaded_db();
        let s = db.schema();
        let employee = s.type_id("employee").unwrap();
        let age = s.attr_id("age").unwrap();
        let budget = s.attr_id("budget").unwrap();
        // The set result ignores the ordering…
        let q = Query::scan(employee).order_by_asc(age);
        let (t, rel) = q.execute(&db).unwrap();
        assert_eq!(t, employee);
        assert_eq!(rel.len(), 2);
        // …the ordered result honours it, both directions.
        let (_, asc) = q.execute_ordered(&db).unwrap();
        let ages: Vec<_> = asc.iter().map(|t| t.get(age).cloned().unwrap()).collect();
        assert_eq!(ages, vec![Value::Int(30), Value::Int(40)]);
        let q = Query::scan(employee).order_by(vec![(age, SortDir::Desc)]);
        let (_, desc) = q.execute_ordered(&db).unwrap();
        let ages: Vec<_> = desc.iter().map(|t| t.get(age).cloned().unwrap()).collect();
        assert_eq!(ages, vec![Value::Int(40), Value::Int(30)]);
        // Without an OrderBy the ordered result is the canonical order.
        let (_, plain) = Query::scan(employee).execute_ordered(&db).unwrap();
        assert_eq!(plain.len(), 2);
        // Nested orderings: the outermost wins.
        let q = Query::scan(employee)
            .order_by_asc(age)
            .order_by(vec![(age, SortDir::Desc)]);
        assert_eq!(q.root_order(), &[(age, SortDir::Desc)]);
        let (_, v) = q.execute_ordered(&db).unwrap();
        assert_eq!(v.first().unwrap().get(age), Some(&Value::Int(40)));
        // A sort key outside the input type is rejected like any other
        // foreign attribute.
        let q = Query::scan(employee).order_by_asc(budget);
        assert!(matches!(
            q.entity_type(&db),
            Err(QueryError::ForeignAttribute(_))
        ));
    }

    #[test]
    fn sanctioned_join_types_as_worksfor() {
        let db = loaded_db();
        let s = db.schema();
        let q = Query::scan(s.type_id("employee").unwrap())
            .join(Query::scan(s.type_id("department").unwrap()));
        let (t, rel) = q.execute(&db).unwrap();
        assert_eq!(t, s.type_id("worksfor").unwrap());
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn unsanctioned_join_is_rejected() {
        let db = loaded_db();
        let s = db.schema();
        // person ⋈ department = {name, age, depname, location}… that IS
        // worksfor! Use manager ⋈ department = all five attributes — no
        // entity type covers that.
        let q = Query::scan(s.type_id("manager").unwrap())
            .join(Query::scan(s.type_id("department").unwrap()));
        assert_eq!(
            q.entity_type(&db).unwrap_err(),
            QueryError::JoinNotAnEntityType
        );
    }

    #[test]
    fn downward_projection_is_rejected() {
        let db = loaded_db();
        let s = db.schema();
        let q = Query::scan(s.type_id("person").unwrap()).project(s.type_id("employee").unwrap());
        assert!(matches!(
            q.entity_type(&db),
            Err(QueryError::NotAGeneralisation { .. })
        ));
    }

    #[test]
    fn foreign_selection_attribute_is_rejected() {
        let db = loaded_db();
        let s = db.schema();
        let q = Query::scan(s.type_id("person").unwrap())
            .select(s.attr_id("budget").unwrap(), Value::Int(1));
        assert!(matches!(
            q.entity_type(&db),
            Err(QueryError::ForeignAttribute(_))
        ));
    }

    #[test]
    fn union_and_intersection_are_type_preserving() {
        let db = loaded_db();
        let s = db.schema();
        let employee = s.type_id("employee").unwrap();
        let dep = s.attr_id("depname").unwrap();
        let sales = Query::scan(employee).select(dep, Value::str("sales"));
        let research = Query::scan(employee).select(dep, Value::str("research"));
        let (t, both) = sales.clone().union(research.clone()).execute(&db).unwrap();
        assert_eq!(t, employee);
        assert_eq!(both.len(), 2);
        let (t2, none) = sales.intersect(research).execute(&db).unwrap();
        assert_eq!(t2, employee);
        assert!(none.is_empty());
    }

    #[test]
    fn cross_type_set_operations_are_rejected() {
        let db = loaded_db();
        let s = db.schema();
        let q = Query::scan(s.type_id("employee").unwrap())
            .union(Query::scan(s.type_id("department").unwrap()));
        assert!(matches!(
            q.entity_type(&db),
            Err(QueryError::TypeMismatch(_, _))
        ));
    }

    #[test]
    fn every_result_is_updatable_in_principle() {
        // The invariant the algebra exists for: every well-typed query has
        // an entity type, so its tuples are instances of a declared type.
        let db = loaded_db();
        let s = db.schema();
        let queries = [
            Query::scan(s.type_id("employee").unwrap()),
            Query::scan(s.type_id("employee").unwrap()).project(s.type_id("person").unwrap()),
            Query::scan(s.type_id("employee").unwrap())
                .join(Query::scan(s.type_id("department").unwrap())),
        ];
        for q in queries {
            let (t, rel) = q.execute(&db).unwrap();
            let want = s.attrs_of(t);
            for tuple in rel.iter() {
                assert_eq!(&tuple.attr_set(s.attr_count()), want);
            }
        }
    }
}
