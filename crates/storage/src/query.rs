//! A query algebra restricted to topology-sanctioned paths.
//!
//! §1: the model "limits their use along well-defined paths" — free
//! recombination of attributes (the Universal Relation's failure mode) is
//! ruled out. Concretely:
//!
//! - **Project** is allowed only onto a *generalisation* of the input's
//!   entity type (moving up the ISA hierarchy);
//! - **Join** is allowed only when the combined attribute set is itself a
//!   declared entity type (the Relationship Axiom: combinations must be
//!   explicated as entities);
//! - **Select** never changes the entity type.
//!
//! Every well-typed query therefore *has* an entity type, so its result is
//! interpretable and updatable — queries cannot "destroy the semantic
//! bonds between attributes composing an entity".

use toposem_core::TypeId;
use toposem_extension::{natural_join, Database, Instance, Relation, Value};

/// A query over the database, with its statically-known entity type.
#[derive(Clone, Debug)]
pub enum Query {
    /// The extension of an entity type.
    Scan(TypeId),
    /// Filter by attribute equality; type-preserving.
    Select {
        /// Input query.
        input: Box<Query>,
        /// Attribute to compare.
        attr: toposem_core::AttrId,
        /// Value it must equal.
        value: Value,
    },
    /// Project onto a generalisation.
    Project {
        /// Input query.
        input: Box<Query>,
        /// Target entity type (must generalise the input's type).
        to: TypeId,
    },
    /// Natural join; the result must be a declared entity type.
    Join(Box<Query>, Box<Query>),
    /// Set union of two queries of the *same* entity type (opens of the
    /// entity-type topology are closed under union, so same-type unions
    /// are always sanctioned).
    Union(Box<Query>, Box<Query>),
    /// Set intersection of two queries of the same entity type.
    Intersect(Box<Query>, Box<Query>),
}

/// Typing/validation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Projection target is not a generalisation of the input type.
    NotAGeneralisation {
        /// Input entity type.
        from: TypeId,
        /// Attempted target.
        to: TypeId,
    },
    /// The joined attribute set matches no declared entity type.
    JoinNotAnEntityType,
    /// Union/intersection operands have different entity types.
    TypeMismatch(TypeId, TypeId),
    /// A selection attribute does not belong to the input type.
    ForeignAttribute(toposem_core::AttrId),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NotAGeneralisation { from, to } => {
                write!(f, "cannot project {from} onto non-generalisation {to}")
            }
            QueryError::JoinNotAnEntityType => write!(
                f,
                "join result is not a declared entity type; explicate the relationship first"
            ),
            QueryError::ForeignAttribute(a) => write!(f, "attribute {a} not in input type"),
            QueryError::TypeMismatch(a, b) => {
                write!(
                    f,
                    "set operation requires equal entity types, got {a} and {b}"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl Query {
    /// Convenience: a scan.
    pub fn scan(e: TypeId) -> Query {
        Query::Scan(e)
    }

    /// Convenience: equality selection.
    pub fn select(self, attr: toposem_core::AttrId, value: Value) -> Query {
        Query::Select {
            input: Box::new(self),
            attr,
            value,
        }
    }

    /// Convenience: projection.
    pub fn project(self, to: TypeId) -> Query {
        Query::Project {
            input: Box::new(self),
            to,
        }
    }

    /// Convenience: join.
    pub fn join(self, other: Query) -> Query {
        Query::Join(Box::new(self), Box::new(other))
    }

    /// Convenience: same-type union.
    pub fn union(self, other: Query) -> Query {
        Query::Union(Box::new(self), Box::new(other))
    }

    /// Convenience: same-type intersection.
    pub fn intersect(self, other: Query) -> Query {
        Query::Intersect(Box::new(self), Box::new(other))
    }

    /// A stable in-process fingerprint of the query's structure (FNV-1a
    /// over the canonical debug rendering). Two structurally identical
    /// queries collide on purpose — the planner's cache keys on this
    /// together with the engine's statistics epoch.
    pub fn fingerprint(&self) -> u64 {
        Self::fingerprint_str(&format!("{self:?}"))
    }

    /// [`Query::fingerprint`] over an already-rendered `format!("{q:?}")`
    /// string — callers that also need the rendering (e.g. to verify
    /// cache hits against collisions) avoid formatting the tree twice.
    pub fn fingerprint_str(repr: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Statically types the query: its result entity type, or the first
    /// sanction violation.
    pub fn entity_type(&self, db: &Database) -> Result<TypeId, QueryError> {
        let schema = db.schema();
        match self {
            Query::Scan(e) => Ok(*e),
            Query::Select { input, attr, .. } => {
                let e = input.entity_type(db)?;
                if !schema.attrs_of(e).contains(attr.index()) {
                    return Err(QueryError::ForeignAttribute(*attr));
                }
                Ok(e)
            }
            Query::Project { input, to } => {
                let from = input.entity_type(db)?;
                if !schema.attrs_of(*to).is_subset(schema.attrs_of(from)) {
                    return Err(QueryError::NotAGeneralisation { from, to: *to });
                }
                Ok(*to)
            }
            Query::Join(a, b) => {
                let ta = a.entity_type(db)?;
                let tb = b.entity_type(db)?;
                let combined = schema.attrs_of(ta).union(schema.attrs_of(tb));
                schema
                    .type_ids()
                    .find(|&t| schema.attrs_of(t) == &combined)
                    .ok_or(QueryError::JoinNotAnEntityType)
            }
            Query::Union(a, b) | Query::Intersect(a, b) => {
                let ta = a.entity_type(db)?;
                let tb = b.entity_type(db)?;
                if ta != tb {
                    return Err(QueryError::TypeMismatch(ta, tb));
                }
                Ok(ta)
            }
        }
    }

    /// Executes the query. Typing runs first; execution then cannot fail.
    pub fn execute(&self, db: &Database) -> Result<(TypeId, Relation), QueryError> {
        let out_type = self.entity_type(db)?;
        Ok((out_type, self.eval(db)))
    }

    fn eval(&self, db: &Database) -> Relation {
        let schema = db.schema();
        match self {
            Query::Scan(e) => db.extension(*e),
            Query::Select { input, attr, value } => input
                .eval(db)
                .select(|t: &Instance| t.get(*attr) == Some(value)),
            Query::Project { input, to } => input.eval(db).project(schema.attrs_of(*to)),
            Query::Join(a, b) => natural_join(schema.attr_count(), &a.eval(db), &b.eval(db)),
            Query::Union(a, b) => {
                let mut r = a.eval(db);
                r.union_with(&b.eval(db));
                r
            }
            Query::Intersect(a, b) => {
                let rb = b.eval(db);
                a.eval(db).select(|t| rb.contains(t))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog};

    fn loaded_db() -> Database {
        let mut d = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = d.schema().clone();
        for (n, a, dep) in [("ann", 40, "sales"), ("bob", 30, "research")] {
            d.insert_fields(
                s.type_id("employee").unwrap(),
                &[
                    ("name", Value::str(n)),
                    ("age", Value::Int(a)),
                    ("depname", Value::str(dep)),
                ],
            )
            .unwrap();
        }
        for (dep, loc) in [("sales", "amsterdam"), ("research", "utrecht")] {
            d.insert_fields(
                s.type_id("department").unwrap(),
                &[("depname", Value::str(dep)), ("location", Value::str(loc))],
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn scan_select_project() {
        let db = loaded_db();
        let s = db.schema();
        let employee = s.type_id("employee").unwrap();
        let person = s.type_id("person").unwrap();
        let q = Query::scan(employee)
            .select(s.attr_id("depname").unwrap(), Value::str("sales"))
            .project(person);
        let (t, rel) = q.execute(&db).unwrap();
        assert_eq!(t, person);
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn sanctioned_join_types_as_worksfor() {
        let db = loaded_db();
        let s = db.schema();
        let q = Query::scan(s.type_id("employee").unwrap())
            .join(Query::scan(s.type_id("department").unwrap()));
        let (t, rel) = q.execute(&db).unwrap();
        assert_eq!(t, s.type_id("worksfor").unwrap());
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn unsanctioned_join_is_rejected() {
        let db = loaded_db();
        let s = db.schema();
        // person ⋈ department = {name, age, depname, location}… that IS
        // worksfor! Use manager ⋈ department = all five attributes — no
        // entity type covers that.
        let q = Query::scan(s.type_id("manager").unwrap())
            .join(Query::scan(s.type_id("department").unwrap()));
        assert_eq!(
            q.entity_type(&db).unwrap_err(),
            QueryError::JoinNotAnEntityType
        );
    }

    #[test]
    fn downward_projection_is_rejected() {
        let db = loaded_db();
        let s = db.schema();
        let q = Query::scan(s.type_id("person").unwrap()).project(s.type_id("employee").unwrap());
        assert!(matches!(
            q.entity_type(&db),
            Err(QueryError::NotAGeneralisation { .. })
        ));
    }

    #[test]
    fn foreign_selection_attribute_is_rejected() {
        let db = loaded_db();
        let s = db.schema();
        let q = Query::scan(s.type_id("person").unwrap())
            .select(s.attr_id("budget").unwrap(), Value::Int(1));
        assert!(matches!(
            q.entity_type(&db),
            Err(QueryError::ForeignAttribute(_))
        ));
    }

    #[test]
    fn union_and_intersection_are_type_preserving() {
        let db = loaded_db();
        let s = db.schema();
        let employee = s.type_id("employee").unwrap();
        let dep = s.attr_id("depname").unwrap();
        let sales = Query::scan(employee).select(dep, Value::str("sales"));
        let research = Query::scan(employee).select(dep, Value::str("research"));
        let (t, both) = sales.clone().union(research.clone()).execute(&db).unwrap();
        assert_eq!(t, employee);
        assert_eq!(both.len(), 2);
        let (t2, none) = sales.intersect(research).execute(&db).unwrap();
        assert_eq!(t2, employee);
        assert!(none.is_empty());
    }

    #[test]
    fn cross_type_set_operations_are_rejected() {
        let db = loaded_db();
        let s = db.schema();
        let q = Query::scan(s.type_id("employee").unwrap())
            .union(Query::scan(s.type_id("department").unwrap()));
        assert!(matches!(
            q.entity_type(&db),
            Err(QueryError::TypeMismatch(_, _))
        ));
    }

    #[test]
    fn every_result_is_updatable_in_principle() {
        // The invariant the algebra exists for: every well-typed query has
        // an entity type, so its tuples are instances of a declared type.
        let db = loaded_db();
        let s = db.schema();
        let queries = [
            Query::scan(s.type_id("employee").unwrap()),
            Query::scan(s.type_id("employee").unwrap()).project(s.type_id("person").unwrap()),
            Query::scan(s.type_id("employee").unwrap())
                .join(Query::scan(s.type_id("department").unwrap())),
        ];
        for q in queries {
            let (t, rel) = q.execute(&db).unwrap();
            let want = s.attrs_of(t);
            for tuple in rel.iter() {
                assert_eq!(&tuple.attr_set(s.attr_count()), want);
            }
        }
    }
}
