//! Hash indexes on single attributes of stored relations.

use std::collections::HashMap;

use toposem_core::AttrId;
use toposem_extension::{Instance, Value};

/// A secondary index: attribute value → matching instances of one entity
/// type's relation.
///
/// There is deliberately no `Default` impl: an index always knows its
/// attribute, so an unconfigured index is unrepresentable and `attr()`
/// cannot fail.
#[derive(Clone, Debug)]
pub struct HashIndex {
    attr: AttrId,
    buckets: HashMap<Value, Vec<Instance>>,
}

impl HashIndex {
    /// An index on `attr`.
    pub fn new(attr: AttrId) -> Self {
        HashIndex {
            attr,
            buckets: HashMap::new(),
        }
    }

    /// The indexed attribute.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Registers an instance.
    pub fn insert(&mut self, t: &Instance) {
        if let Some(v) = t.get(self.attr) {
            self.buckets.entry(v.clone()).or_default().push(t.clone());
        }
    }

    /// Unregisters an instance, dropping the bucket when it empties so
    /// long-lived engines under churn don't accumulate dead entries.
    pub fn remove(&mut self, t: &Instance) {
        if let Some(v) = t.get(self.attr) {
            if let Some(bucket) = self.buckets.get_mut(v) {
                bucket.retain(|u| u != t);
                if bucket.is_empty() {
                    self.buckets.remove(v);
                }
            }
        }
    }

    /// Point lookup.
    pub fn lookup(&self, v: &Value) -> &[Instance] {
        self.buckets.get(v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.buckets.len()
    }

    /// Total indexed entries.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::employee_schema;
    use toposem_extension::DomainCatalog;

    fn emp(name: &str, age: i64, dep: &str) -> Instance {
        let s = employee_schema();
        let c = DomainCatalog::employee_defaults();
        Instance::new(
            &s,
            &c,
            s.type_id("employee").unwrap(),
            &[
                ("name", Value::str(name)),
                ("age", Value::Int(age)),
                ("depname", Value::str(dep)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_lookup_remove() {
        let s = employee_schema();
        let dep = s.attr_id("depname").unwrap();
        let mut idx = HashIndex::new(dep);
        let t1 = emp("ann", 40, "sales");
        let t2 = emp("bob", 30, "sales");
        idx.insert(&t1);
        idx.insert(&t2);
        assert_eq!(idx.attr(), dep);
        assert_eq!(idx.lookup(&Value::str("sales")).len(), 2);
        assert_eq!(idx.lookup(&Value::str("research")).len(), 0);
        assert_eq!(idx.distinct_values(), 1);
        assert_eq!(idx.len(), 2);
        idx.remove(&t1);
        assert_eq!(idx.lookup(&Value::str("sales")).len(), 1);
        idx.remove(&t2);
        assert!(idx.is_empty());
    }

    #[test]
    fn remove_compacts_empty_buckets() {
        // Churn: many distinct values inserted then removed must not leave
        // tombstone buckets behind (the leak this regression test pins).
        let s = employee_schema();
        let name = s.attr_id("name").unwrap();
        let mut idx = HashIndex::new(name);
        let tuples: Vec<Instance> = (0..100)
            .map(|i| emp(&format!("p{i}"), 30, "sales"))
            .collect();
        for t in &tuples {
            idx.insert(t);
        }
        assert_eq!(idx.distinct_values(), 100);
        for t in &tuples {
            idx.remove(t);
        }
        assert_eq!(idx.distinct_values(), 0, "empty buckets must be dropped");
        assert!(idx.is_empty());
        // Removing an absent tuple on an empty index is a no-op.
        idx.remove(&tuples[0]);
        assert_eq!(idx.distinct_values(), 0);
    }
}
