//! Hash indexes on single attributes of stored relations.

use std::collections::HashMap;

use toposem_core::AttrId;
use toposem_extension::{Instance, Value};

/// A secondary index: attribute value → matching instances of one entity
/// type's relation.
#[derive(Clone, Debug, Default)]
pub struct HashIndex {
    attr: Option<AttrId>,
    buckets: HashMap<Value, Vec<Instance>>,
}

impl HashIndex {
    /// An index on `attr`.
    pub fn new(attr: AttrId) -> Self {
        HashIndex {
            attr: Some(attr),
            buckets: HashMap::new(),
        }
    }

    /// The indexed attribute.
    pub fn attr(&self) -> AttrId {
        self.attr.expect("index built with an attribute")
    }

    /// Registers an instance.
    pub fn insert(&mut self, t: &Instance) {
        if let Some(v) = t.get(self.attr()) {
            self.buckets.entry(v.clone()).or_default().push(t.clone());
        }
    }

    /// Unregisters an instance.
    pub fn remove(&mut self, t: &Instance) {
        if let Some(v) = t.get(self.attr()) {
            if let Some(bucket) = self.buckets.get_mut(v) {
                bucket.retain(|u| u != t);
                if bucket.is_empty() {
                    self.buckets.remove(v);
                }
            }
        }
    }

    /// Point lookup.
    pub fn lookup(&self, v: &Value) -> &[Instance] {
        self.buckets.get(v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.buckets.len()
    }

    /// Total indexed entries.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::employee_schema;
    use toposem_extension::DomainCatalog;

    #[test]
    fn insert_lookup_remove() {
        let s = employee_schema();
        let c = DomainCatalog::employee_defaults();
        let employee = s.type_id("employee").unwrap();
        let dep = s.attr_id("depname").unwrap();
        let mut idx = HashIndex::new(dep);
        let t1 = Instance::new(
            &s,
            &c,
            employee,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
            ],
        )
        .unwrap();
        let t2 = Instance::new(
            &s,
            &c,
            employee,
            &[
                ("name", Value::str("bob")),
                ("age", Value::Int(30)),
                ("depname", Value::str("sales")),
            ],
        )
        .unwrap();
        idx.insert(&t1);
        idx.insert(&t2);
        assert_eq!(idx.lookup(&Value::str("sales")).len(), 2);
        assert_eq!(idx.lookup(&Value::str("research")).len(), 0);
        assert_eq!(idx.distinct_values(), 1);
        assert_eq!(idx.len(), 2);
        idx.remove(&t1);
        assert_eq!(idx.lookup(&Value::str("sales")).len(), 1);
        idx.remove(&t2);
        assert!(idx.is_empty());
    }
}
