//! Secondary indexes on stored relations: single-attribute hash indexes
//! (point lookups), single-attribute ordered BTree indexes (point and
//! range lookups), and multi-attribute composite ordered indexes
//! (prefix lookups). [`Index`] unifies the three for the engine, which
//! keeps any number of them per entity type.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use toposem_core::AttrId;
use toposem_extension::{Instance, Value};

use crate::query::Predicate;

/// A secondary index: attribute value → matching instances of one entity
/// type's relation.
///
/// There is deliberately no `Default` impl: an index always knows its
/// attribute, so an unconfigured index is unrepresentable and `attr()`
/// cannot fail.
#[derive(Clone, Debug)]
pub struct HashIndex {
    attr: AttrId,
    buckets: HashMap<Value, Vec<Instance>>,
}

impl HashIndex {
    /// An index on `attr`.
    pub fn new(attr: AttrId) -> Self {
        HashIndex {
            attr,
            buckets: HashMap::new(),
        }
    }

    /// The indexed attribute.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Registers an instance.
    pub fn insert(&mut self, t: &Instance) {
        if let Some(v) = t.get(self.attr) {
            self.buckets.entry(v.clone()).or_default().push(t.clone());
        }
    }

    /// Unregisters an instance, dropping the bucket when it empties so
    /// long-lived engines under churn don't accumulate dead entries.
    pub fn remove(&mut self, t: &Instance) {
        if let Some(v) = t.get(self.attr) {
            if let Some(bucket) = self.buckets.get_mut(v) {
                bucket.retain(|u| u != t);
                if bucket.is_empty() {
                    self.buckets.remove(v);
                }
            }
        }
    }

    /// Point lookup.
    pub fn lookup(&self, v: &Value) -> &[Instance] {
        self.buckets.get(v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.buckets.len()
    }

    /// Total indexed entries.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The distinct indexed values, in no particular order.
    pub fn keys(&self) -> impl Iterator<Item = &Value> {
        self.buckets.keys()
    }

    /// The instances holding `key`, for key iteration callers.
    pub fn group(&self, key: &Value) -> &[Instance] {
        self.lookup(key)
    }
}

/// An ordered secondary index: a BTree from attribute value to matching
/// instances, supporting point *and* range lookups under the total
/// order on [`Value`].
#[derive(Clone, Debug)]
pub struct OrdIndex {
    attr: AttrId,
    tree: BTreeMap<Value, Vec<Instance>>,
}

impl OrdIndex {
    /// An ordered index on `attr`.
    pub fn new(attr: AttrId) -> Self {
        OrdIndex {
            attr,
            tree: BTreeMap::new(),
        }
    }

    /// The indexed attribute.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Registers an instance.
    pub fn insert(&mut self, t: &Instance) {
        if let Some(v) = t.get(self.attr) {
            self.tree.entry(v.clone()).or_default().push(t.clone());
        }
    }

    /// Unregisters an instance, dropping the node when it empties (the
    /// same churn guarantee as [`HashIndex::remove`]).
    pub fn remove(&mut self, t: &Instance) {
        if let Some(v) = t.get(self.attr) {
            if let Some(node) = self.tree.get_mut(v) {
                node.retain(|u| u != t);
                if node.is_empty() {
                    self.tree.remove(v);
                }
            }
        }
    }

    /// Point lookup.
    pub fn lookup(&self, v: &Value) -> &[Instance] {
        self.tree.get(v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Range lookup: every instance whose indexed value lies between the
    /// bounds (`(value, inclusive)`; `None` = unbounded). An inverted
    /// range yields nothing rather than panicking.
    pub fn range<'a>(
        &'a self,
        lo: Option<(&'a Value, bool)>,
        hi: Option<(&'a Value, bool)>,
    ) -> impl Iterator<Item = &'a Instance> {
        let start = match lo {
            Some((v, true)) => Bound::Included(v),
            Some((v, false)) => Bound::Excluded(v),
            None => Bound::Unbounded,
        };
        let end = match hi {
            Some((v, true)) => Bound::Included(v),
            Some((v, false)) => Bound::Excluded(v),
            None => Bound::Unbounded,
        };
        // BTreeMap::range panics on start > end; an inverted predicate
        // simply matches nothing.
        let inverted = match (lo, hi) {
            (Some((l, li)), Some((h, hi_inc))) => l > h || (l == h && !(li && hi_inc)),
            _ => false,
        };
        let iter = if inverted {
            None
        } else {
            Some(self.tree.range::<Value, _>((start, end)))
        };
        iter.into_iter().flatten().flat_map(|(_, ts)| ts.iter())
    }

    /// Every instance whose indexed value satisfies `pred`, walking only
    /// the qualifying BTree range.
    pub fn seek<'a>(&'a self, pred: &'a Predicate) -> impl Iterator<Item = &'a Instance> {
        let (lo, hi) = pred.bounds();
        self.range(lo, hi)
    }

    /// Smallest indexed value.
    pub fn min(&self) -> Option<&Value> {
        self.tree.keys().next()
    }

    /// Largest indexed value.
    pub fn max(&self) -> Option<&Value> {
        self.tree.keys().next_back()
    }

    /// The distinct indexed values, in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &Value> {
        self.tree.keys()
    }

    /// The instances holding `key`.
    pub fn group(&self, key: &Value) -> &[Instance] {
        self.lookup(key)
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.tree.len()
    }

    /// Total indexed entries.
    pub fn len(&self) -> usize {
        self.tree.values().map(Vec::len).sum()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

/// A composite secondary index: a BTree from the tuple of values of an
/// ordered attribute list to matching instances. Lexicographic key
/// order makes any *prefix* of the attribute list seekable.
#[derive(Clone, Debug)]
pub struct CompositeIndex {
    attrs: Vec<AttrId>,
    tree: BTreeMap<Vec<Value>, Vec<Instance>>,
}

impl CompositeIndex {
    /// A composite index over `attrs` (order is significant: lookups
    /// match key *prefixes*). At least one attribute is required.
    pub fn new(attrs: Vec<AttrId>) -> Self {
        assert!(!attrs.is_empty(), "composite index needs attributes");
        CompositeIndex {
            attrs,
            tree: BTreeMap::new(),
        }
    }

    /// The indexed attributes, in key order.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    fn key_of(&self, t: &Instance) -> Option<Vec<Value>> {
        self.attrs.iter().map(|a| t.get(*a).cloned()).collect()
    }

    /// Registers an instance (ignored when it lacks any key attribute).
    pub fn insert(&mut self, t: &Instance) {
        if let Some(key) = self.key_of(t) {
            self.tree.entry(key).or_default().push(t.clone());
        }
    }

    /// Unregisters an instance, dropping the node when it empties.
    pub fn remove(&mut self, t: &Instance) {
        if let Some(key) = self.key_of(t) {
            if let Some(node) = self.tree.get_mut(&key) {
                node.retain(|u| u != t);
                if node.is_empty() {
                    self.tree.remove(&key);
                }
            }
        }
    }

    /// Prefix lookup: every instance whose first `prefix.len()` key
    /// attributes equal `prefix` (which may be shorter than the full
    /// attribute list, but not longer).
    pub fn lookup_prefix<'a>(&'a self, prefix: &'a [Value]) -> impl Iterator<Item = &'a Instance> {
        assert!(prefix.len() <= self.attrs.len(), "prefix too long");
        self.tree
            .range::<[Value], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(move |(k, _)| k[..prefix.len()] == *prefix)
            .flat_map(|(_, ts)| ts.iter())
    }

    /// Prefix-plus-range lookup: every instance whose first
    /// `prefix.len()` key attributes equal `prefix` *and* whose next key
    /// attribute lies between the bounds (`(value, inclusive)`; `None` =
    /// unbounded). The qualifying keys form one contiguous BTree range,
    /// so only that slice is walked (plus, for an exclusive lower bound,
    /// the run of keys equal to the bound, which are skipped). Requires
    /// `prefix.len() < attrs.len()`; an inverted range yields nothing.
    pub fn lookup_prefix_range<'a>(
        &'a self,
        prefix: &'a [Value],
        lo: Option<(&'a Value, bool)>,
        hi: Option<(&'a Value, bool)>,
    ) -> impl Iterator<Item = &'a Instance> {
        assert!(
            prefix.len() < self.attrs.len(),
            "range suffix needs a key attribute past the prefix"
        );
        let p = prefix.len();
        // Start at the first key carrying the prefix and (when bounded
        // below) the lower-bound value; an exclusive bound starts at the
        // same key and skips the equal run.
        let start: Vec<Value> = match lo {
            Some((v, _)) => prefix.iter().chain(std::iter::once(v)).cloned().collect(),
            None => prefix.to_vec(),
        };
        self.tree
            .range::<[Value], _>((Bound::Included(start.as_slice()), Bound::Unbounded))
            .skip_while(move |(k, _)| matches!(lo, Some((v, false)) if &k[p] == v))
            .take_while(move |(k, _)| {
                k[..p] == *prefix
                    && match hi {
                        Some((v, true)) => &k[p] <= v,
                        Some((v, false)) => &k[p] < v,
                        None => true,
                    }
            })
            .flat_map(|(_, ts)| ts.iter())
    }

    /// The distinct keys, in ascending lexicographic order.
    pub fn keys(&self) -> impl Iterator<Item = &[Value]> {
        self.tree.keys().map(Vec::as_slice)
    }

    /// The instances holding `key` (a full-length key).
    pub fn group(&self, key: &[Value]) -> &[Instance] {
        self.tree.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_values(&self) -> usize {
        self.tree.len()
    }

    /// Total indexed entries.
    pub fn len(&self) -> usize {
        self.tree.values().map(Vec::len).sum()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

/// The kind of a secondary index, for DDL and logging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// Single-attribute hash index.
    Hash,
    /// Single-attribute ordered index.
    Ordered,
    /// Multi-attribute composite ordered index.
    Composite,
}

impl IndexKind {
    /// Lowercase name, as rendered in `explain` and logged definitions.
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::Hash => "hash",
            IndexKind::Ordered => "ordered",
            IndexKind::Composite => "composite",
        }
    }
}

/// Any secondary index the engine can hold on an entity type.
#[derive(Clone, Debug)]
pub enum Index {
    /// Hash index (point lookups only).
    Hash(HashIndex),
    /// Ordered index (point and range lookups).
    Ord(OrdIndex),
    /// Composite ordered index (prefix lookups).
    Composite(CompositeIndex),
}

impl Index {
    /// This index's kind.
    pub fn kind(&self) -> IndexKind {
        match self {
            Index::Hash(_) => IndexKind::Hash,
            Index::Ord(_) => IndexKind::Ordered,
            Index::Composite(_) => IndexKind::Composite,
        }
    }

    /// The indexed attributes, in key order.
    pub fn attrs(&self) -> Vec<AttrId> {
        match self {
            Index::Hash(i) => vec![i.attr()],
            Index::Ord(i) => vec![i.attr()],
            Index::Composite(i) => i.attrs().to_vec(),
        }
    }

    /// Registers an instance.
    pub fn insert(&mut self, t: &Instance) {
        match self {
            Index::Hash(i) => i.insert(t),
            Index::Ord(i) => i.insert(t),
            Index::Composite(i) => i.insert(t),
        }
    }

    /// Unregisters an instance.
    pub fn remove(&mut self, t: &Instance) {
        match self {
            Index::Hash(i) => i.remove(t),
            Index::Ord(i) => i.remove(t),
            Index::Composite(i) => i.remove(t),
        }
    }

    /// Total indexed entries.
    pub fn len(&self) -> usize {
        match self {
            Index::Hash(i) => i.len(),
            Index::Ord(i) => i.len(),
            Index::Composite(i) => i.len(),
        }
    }

    /// True when the index holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point lookup on a single-attribute index (`None` for composites
    /// — use [`CompositeIndex::lookup_prefix`] through
    /// [`Index::as_composite`]).
    pub fn lookup(&self, attr: AttrId, v: &Value) -> Option<&[Instance]> {
        match self {
            Index::Hash(i) if i.attr() == attr => Some(i.lookup(v)),
            Index::Ord(i) if i.attr() == attr => Some(i.lookup(v)),
            _ => None,
        }
    }

    /// The ordered index inside, if that's what this is.
    pub fn as_ord(&self) -> Option<&OrdIndex> {
        match self {
            Index::Ord(i) => Some(i),
            _ => None,
        }
    }

    /// The composite index inside, if that's what this is.
    pub fn as_composite(&self) -> Option<&CompositeIndex> {
        match self {
            Index::Composite(i) => Some(i),
            _ => None,
        }
    }

    /// The hash index inside, if that's what this is.
    pub fn as_hash(&self) -> Option<&HashIndex> {
        match self {
            Index::Hash(i) => Some(i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::employee_schema;
    use toposem_extension::DomainCatalog;

    fn emp(name: &str, age: i64, dep: &str) -> Instance {
        let s = employee_schema();
        let c = DomainCatalog::employee_defaults();
        Instance::new(
            &s,
            &c,
            s.type_id("employee").unwrap(),
            &[
                ("name", Value::str(name)),
                ("age", Value::Int(age)),
                ("depname", Value::str(dep)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_lookup_remove() {
        let s = employee_schema();
        let dep = s.attr_id("depname").unwrap();
        let mut idx = HashIndex::new(dep);
        let t1 = emp("ann", 40, "sales");
        let t2 = emp("bob", 30, "sales");
        idx.insert(&t1);
        idx.insert(&t2);
        assert_eq!(idx.attr(), dep);
        assert_eq!(idx.lookup(&Value::str("sales")).len(), 2);
        assert_eq!(idx.lookup(&Value::str("research")).len(), 0);
        assert_eq!(idx.distinct_values(), 1);
        assert_eq!(idx.len(), 2);
        idx.remove(&t1);
        assert_eq!(idx.lookup(&Value::str("sales")).len(), 1);
        idx.remove(&t2);
        assert!(idx.is_empty());
    }

    #[test]
    fn remove_compacts_empty_buckets() {
        // Churn: many distinct values inserted then removed must not leave
        // tombstone buckets behind (the leak this regression test pins).
        let s = employee_schema();
        let name = s.attr_id("name").unwrap();
        let mut idx = HashIndex::new(name);
        let tuples: Vec<Instance> = (0..100)
            .map(|i| emp(&format!("p{i}"), 30, "sales"))
            .collect();
        for t in &tuples {
            idx.insert(t);
        }
        assert_eq!(idx.distinct_values(), 100);
        for t in &tuples {
            idx.remove(t);
        }
        assert_eq!(idx.distinct_values(), 0, "empty buckets must be dropped");
        assert!(idx.is_empty());
        // Removing an absent tuple on an empty index is a no-op.
        idx.remove(&tuples[0]);
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn ord_index_point_range_and_min_max() {
        let s = employee_schema();
        let age = s.attr_id("age").unwrap();
        let mut idx = OrdIndex::new(age);
        let tuples: Vec<Instance> = [25, 30, 30, 40, 55]
            .iter()
            .enumerate()
            .map(|(i, a)| emp(&format!("p{i}"), *a, "sales"))
            .collect();
        for t in &tuples {
            idx.insert(t);
        }
        assert_eq!(idx.attr(), age);
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.distinct_values(), 4);
        assert_eq!(idx.min(), Some(&Value::Int(25)));
        assert_eq!(idx.max(), Some(&Value::Int(55)));
        assert_eq!(idx.lookup(&Value::Int(30)).len(), 2);
        // [30, 40]: both 30s and the 40.
        let v30 = Value::Int(30);
        let v40 = Value::Int(40);
        assert_eq!(idx.range(Some((&v30, true)), Some((&v40, true))).count(), 3);
        // (30, 40): nothing strictly between.
        assert_eq!(
            idx.range(Some((&v30, false)), Some((&v40, false))).count(),
            0
        );
        // Unbounded below, exclusive above.
        assert_eq!(idx.range(None, Some((&v40, false))).count(), 3);
        // Inverted range matches nothing (and must not panic).
        assert_eq!(idx.range(Some((&v40, true)), Some((&v30, true))).count(), 0);
        assert_eq!(
            idx.range(Some((&v30, false)), Some((&v30, true))).count(),
            0
        );
        // Predicate-driven seeks agree with matches().
        for pred in [
            Predicate::Eq(Value::Int(30)),
            Predicate::Lt(Value::Int(40)),
            Predicate::Ge(Value::Int(30)),
            Predicate::Between(Value::Int(26), Value::Int(41)),
        ] {
            let via_seek = idx.seek(&pred).count();
            let via_scan = tuples
                .iter()
                .filter(|t| pred.matches(t.get(age).unwrap()))
                .count();
            assert_eq!(via_seek, via_scan, "seek != scan for {pred:?}");
        }
        // Node compaction on removal.
        for t in &tuples {
            idx.remove(t);
        }
        assert!(idx.is_empty());
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn composite_index_prefix_lookup() {
        let s = employee_schema();
        let name = s.attr_id("name").unwrap();
        let dep = s.attr_id("depname").unwrap();
        let mut idx = CompositeIndex::new(vec![dep, name]);
        let rows = [
            ("ann", "sales"),
            ("bob", "sales"),
            ("ann", "research"),
            ("carol", "research"),
        ];
        let tuples: Vec<Instance> = rows.iter().map(|(n, d)| emp(n, 30, d)).collect();
        for t in &tuples {
            idx.insert(t);
        }
        assert_eq!(idx.attrs(), &[dep, name]);
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.distinct_values(), 4);
        // Full-key lookup.
        assert_eq!(
            idx.lookup_prefix(&[Value::str("sales"), Value::str("ann")])
                .count(),
            1
        );
        // One-attribute prefix.
        assert_eq!(idx.lookup_prefix(&[Value::str("sales")]).count(), 2);
        assert_eq!(idx.lookup_prefix(&[Value::str("research")]).count(), 2);
        // Empty prefix = everything.
        assert_eq!(idx.lookup_prefix(&[]).count(), 4);
        // Missing prefix.
        assert_eq!(idx.lookup_prefix(&[Value::str("admin")]).count(), 0);
        // Keys iterate in lexicographic order.
        let keys: Vec<&[Value]> = idx.keys().collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        // Removal compacts.
        for t in &tuples {
            idx.remove(t);
        }
        assert!(idx.is_empty());
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn composite_prefix_range_lookup() {
        let s = employee_schema();
        let age = s.attr_id("age").unwrap();
        let dep = s.attr_id("depname").unwrap();
        let mut idx = CompositeIndex::new(vec![dep, age]);
        let rows = [
            ("sales", 20),
            ("sales", 30),
            ("sales", 30),
            ("sales", 40),
            ("research", 25),
            ("research", 35),
        ];
        let tuples: Vec<Instance> = rows
            .iter()
            .enumerate()
            .map(|(i, (d, a))| emp(&format!("p{i}"), *a, d))
            .collect();
        for t in &tuples {
            idx.insert(t);
        }
        let sales = [Value::str("sales")];
        let v25 = Value::Int(25);
        let v30 = Value::Int(30);
        let v40 = Value::Int(40);
        // Inclusive both ends: 30, 30, 40.
        assert_eq!(
            idx.lookup_prefix_range(&sales, Some((&v25, true)), Some((&v40, true)))
                .count(),
            3
        );
        // Exclusive lower bound skips the whole equal run.
        assert_eq!(
            idx.lookup_prefix_range(&sales, Some((&v30, false)), Some((&v40, true)))
                .count(),
            1
        );
        // Exclusive upper bound.
        assert_eq!(
            idx.lookup_prefix_range(&sales, Some((&v25, true)), Some((&v40, false)))
                .count(),
            2
        );
        // Unbounded sides.
        assert_eq!(idx.lookup_prefix_range(&sales, None, None).count(), 4);
        assert_eq!(
            idx.lookup_prefix_range(&sales, Some((&v30, true)), None)
                .count(),
            3
        );
        assert_eq!(
            idx.lookup_prefix_range(&sales, None, Some((&v30, false)))
                .count(),
            1
        );
        // Empty prefix: a range over the *leading* key attribute.
        let research = Value::str("research");
        assert_eq!(
            idx.lookup_prefix_range(&[], None, Some((&research, true)))
                .count(),
            2
        );
        // Inverted range matches nothing.
        assert_eq!(
            idx.lookup_prefix_range(&sales, Some((&v40, true)), Some((&v25, true)))
                .count(),
            0
        );
        // Absent prefix matches nothing.
        assert_eq!(
            idx.lookup_prefix_range(&[Value::str("admin")], None, None)
                .count(),
            0
        );
        // Agreement with a scan-and-filter over the same rows.
        for (lo, hi) in [
            (None, None),
            (Some((&v25, true)), Some((&v40, false))),
            (Some((&v30, false)), None),
        ] {
            let via_seek: Vec<_> = idx.lookup_prefix_range(&sales, lo, hi).collect();
            let via_scan: Vec<_> = tuples
                .iter()
                .filter(|t| {
                    t.get(dep) == Some(&Value::str("sales"))
                        && lo.is_none_or(|(v, inc)| {
                            let x = t.get(age).unwrap();
                            if inc {
                                x >= v
                            } else {
                                x > v
                            }
                        })
                        && hi.is_none_or(|(v, inc)| {
                            let x = t.get(age).unwrap();
                            if inc {
                                x <= v
                            } else {
                                x < v
                            }
                        })
                })
                .collect();
            assert_eq!(via_seek.len(), via_scan.len(), "({lo:?}, {hi:?})");
        }
    }

    #[test]
    fn index_enum_dispatch() {
        let s = employee_schema();
        let dep = s.attr_id("depname").unwrap();
        let name = s.attr_id("name").unwrap();
        let t = emp("ann", 40, "sales");
        for mut idx in [
            Index::Hash(HashIndex::new(dep)),
            Index::Ord(OrdIndex::new(dep)),
            Index::Composite(CompositeIndex::new(vec![dep, name])),
        ] {
            assert!(idx.is_empty());
            idx.insert(&t);
            assert_eq!(idx.len(), 1);
            assert_eq!(idx.attrs()[0], dep);
            match idx.kind() {
                IndexKind::Hash | IndexKind::Ordered => {
                    assert_eq!(idx.lookup(dep, &Value::str("sales")).unwrap().len(), 1);
                    assert!(idx.lookup(name, &Value::str("ann")).is_none());
                }
                IndexKind::Composite => {
                    assert!(idx.lookup(dep, &Value::str("sales")).is_none());
                    assert_eq!(
                        idx.as_composite()
                            .unwrap()
                            .lookup_prefix(&[Value::str("sales")])
                            .count(),
                        1
                    );
                }
            }
            idx.remove(&t);
            assert!(idx.is_empty());
        }
        assert_eq!(IndexKind::Hash.name(), "hash");
        assert_eq!(IndexKind::Ordered.name(), "ordered");
        assert_eq!(IndexKind::Composite.name(), "composite");
    }
}
