//! The storage engine: a concurrent, transaction-capable wrapper around
//! [`toposem_extension::Database`] that *enforces* the model — containment
//! by maintained inserts/deletes, declared FDs rejected on violation, and
//! domain checks at the boundary.
//!
//! The engine is the piece the paper never built; it exists to prove the
//! model is operational, not just descriptive. Since PR 2 it is also
//! *durable*: attach a [`toposem_wal::Wal`] (via [`Engine::durable`] or
//! [`Engine::open`]) and every mutation is redo-logged logically,
//! [`Engine::commit`] becomes the durability point under the configured
//! flush policy, [`Engine::checkpoint`] installs a snapshot and truncates
//! the log, and [`Engine::recover`] rebuilds the committed state — with
//! indexes and statistics — after a crash.

use std::any::Any;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use parking_lot::RwLock;
use toposem_core::TypeId;
use toposem_extension::{Database, Instance, InstanceError, LogicalOp, Value};
use toposem_fd::{check_fd, Fd};
use toposem_obs::{EngineMetrics, MetricsSnapshot, PlanCacheStats, QueryTrace, TraceRing};
use toposem_wal::{
    CheckpointMeta, FlushPolicy, IndexDef, IndexKindDef, LogScan, Wal, WalConfig, WalEntry,
    WalError, WalRecord,
};

use crate::index::{CompositeIndex, HashIndex, Index, IndexKind, OrdIndex};
use crate::snapshot;
use crate::snapshot::EngineSnapshot;
use crate::stats::Statistics;

/// Errors surfaced by engine operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The instance failed schema/domain validation.
    Invalid(InstanceError),
    /// The insert would violate a declared FD; the offending dependency is
    /// returned.
    FdViolation(Fd),
    /// No active transaction to commit/rollback.
    NoTransaction,
    /// `begin` was called while a transaction is already active. The
    /// engine is single-writer with flat transactions; silently
    /// flattening nested begins would let one transaction emit two WAL
    /// `Begin` records.
    TransactionActive,
    /// A durable-only operation (checkpoint, sync) was called on an
    /// engine with no write-ahead log attached.
    NotDurable,
    /// An index DDL statement was malformed: no attributes, a repeated
    /// attribute, or an attribute outside the indexed entity type.
    BadIndexDefinition(String),
    /// The write-ahead log failed (message carries the
    /// [`toposem_wal::WalError`] rendering).
    Wal(String),
    /// Checkpoint encoding or recovery replay failed.
    Recovery(String),
    /// The engine is a read-only replica: its state advances only
    /// through [`Engine::apply_replicated`], never through direct
    /// writes or DDL.
    ReadOnly,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Invalid(e) => write!(f, "invalid instance: {e}"),
            EngineError::FdViolation(fd) => write!(f, "functional dependency violated: {fd:?}"),
            EngineError::NoTransaction => write!(f, "no active transaction"),
            EngineError::TransactionActive => {
                write!(f, "a transaction is already active; commit or roll it back")
            }
            EngineError::NotDurable => write!(f, "engine has no write-ahead log attached"),
            EngineError::BadIndexDefinition(why) => write!(f, "bad index definition: {why}"),
            EngineError::Wal(e) => write!(f, "write-ahead log failure: {e}"),
            EngineError::Recovery(e) => write!(f, "recovery failure: {e}"),
            EngineError::ReadOnly => {
                write!(
                    f,
                    "engine is a read-only replica; route writes to the primary"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<InstanceError> for EngineError {
    fn from(e: InstanceError) -> Self {
        EngineError::Invalid(e)
    }
}

impl From<WalError> for EngineError {
    fn from(e: WalError) -> Self {
        EngineError::Wal(e.to_string())
    }
}

/// One undo-log entry.
#[derive(Clone, Debug)]
enum Undo {
    /// Reverse of an insert: remove exactly these freshly-stored pairs
    /// (the instance plus its eager containment propagations).
    UnInsert(Vec<(TypeId, Instance)>),
    /// Reverse of a delete: restore these (type, tuple) pairs.
    Restore(Vec<(TypeId, Instance)>),
}

/// Which way a logged logical operation mutates.
#[derive(Clone, Copy, Debug)]
enum LogKind {
    Insert,
    Delete,
}

/// Entries retained at most; a full cache evicts an arbitrary entry
/// (plans are cheap to rebuild, so dumb eviction beats LRU bookkeeping).
const PLAN_CACHE_CAP: usize = 512;

/// Cached physical plans, keyed by query fingerprint and validated
/// against the statistics epoch: any mutation bumps the epoch, making
/// every cached plan unreachable; the map is cleared lazily when a plan
/// from a *newer* epoch is stored (never rolled backwards by a lagging
/// reader). Values are type-erased so the planner crate — which depends
/// on this one — can cache its own plan type here. Hit/miss/store
/// counters live in the engine's [`EngineMetrics`] registry (atomic, so
/// cache hits need only the engine's read lock).
struct PlanCache {
    epoch: u64,
    plans: HashMap<u64, Arc<dyn Any + Send + Sync>>,
}

impl PlanCache {
    fn new() -> Self {
        PlanCache {
            epoch: 0,
            plans: HashMap::new(),
        }
    }
}

struct Inner {
    db: Database,
    declared_fds: Vec<Fd>,
    /// Secondary indexes, indexed by `TypeId::index()`; each entity type
    /// may carry any number of hash, ordered, and composite indexes.
    indexes: Vec<Vec<Index>>,
    txn_log: Option<Vec<Undo>>,
    /// WAL transaction id of the active explicit transaction.
    current_txn: Option<u64>,
    /// Trace token of the active explicit transaction. Engine-level
    /// (independent of WAL ids, so volatile engines have one too):
    /// queries executed inside the transaction stamp it into their
    /// trace entries, and the commit attributes its `commit_ns` back to
    /// them.
    txn_token: Option<u64>,
    /// Monotonic source of `txn_token`s.
    txn_seq: u64,
    /// The redo log, when the engine is durable.
    wal: Option<Wal>,
    /// Cached planner statistics; dropped on any mutation.
    stats: Option<Arc<Statistics>>,
    /// Generation counter for `stats`: bumped on every mutation, so
    /// plans and other statistics-derived artefacts can be validated.
    stats_epoch: u64,
    plan_cache: PlanCache,
    /// Cached MVCC snapshot of the last *committed* state, handed to
    /// readers by [`Engine::snapshot`]. Primed at construction, so a
    /// reader arriving while the very first transaction is active still
    /// finds a committed state to read lock-free. Invariant: while a
    /// transaction is active, this (when present) is the committed
    /// pre-transaction state — [`Engine::begin`] refreshes it before
    /// any uncommitted write lands, and in-transaction mutations never
    /// mark it stale.
    snapshot: Option<Arc<EngineSnapshot>>,
    /// Whether `snapshot` lags the committed state and must be rebuilt
    /// before the next use.
    snapshot_stale: bool,
    /// Whether any reader has ever asked for a snapshot. Gates the
    /// refresh in [`Engine::begin`]: a write-only workload (no snapshot
    /// readers) must not clone the whole database on every begin just
    /// to keep a snapshot nobody reads current — it drops the stale
    /// snapshot in O(1) instead. Atomic so the lock-free read path of
    /// [`Engine::snapshot`] can set it under the shared lock.
    snapshot_requested: AtomicBool,
    /// Whether this engine is a read-only replica: every public mutator
    /// is rejected, and state advances only through
    /// [`Engine::apply_replicated`].
    read_only: bool,
    /// One past the LSN of the last record applied through
    /// [`Engine::apply_replicated`] (seeded with the bootstrap
    /// checkpoint's `next_lsn` on a replica; 0 elsewhere). Records below
    /// this watermark are idempotently skipped, so a follower can
    /// re-decode a segment from the start after a disconnect.
    applied_lsn: u64,
    /// Replicated transactions whose `Commit` has not arrived yet:
    /// their operations buffer here and apply atomically on commit
    /// (mirroring recovery's commit-order replay) or vanish on abort.
    repl_active: HashMap<u64, Vec<(LogKind, LogicalOp)>>,
}

impl Inner {
    /// Every mutation invalidates cached statistics and advances the
    /// epoch that keys the plan cache. The committed-state snapshot goes
    /// stale only for mutations *outside* a transaction: uncommitted
    /// writes must never become visible through it, and commit/rollback
    /// handle their own invalidation.
    fn note_mutation(&mut self, metrics: &EngineMetrics) {
        self.stats = None;
        self.stats_epoch += 1;
        if self.txn_log.is_none() {
            self.snapshot_stale = true;
        }
        metrics.stats_epoch_bumps.inc();
        metrics.stats_epoch.set(self.stats_epoch);
    }

    /// Rebuilds the committed-state snapshot from the current database
    /// and indexes. Only call when no transaction is active (or, from
    /// `begin`, before the transaction has mutated anything).
    fn refresh_snapshot(&mut self, metrics: &EngineMetrics) {
        self.snapshot = Some(Arc::new(EngineSnapshot::capture(
            self.db.clone(),
            self.indexes.clone(),
            self.stats_epoch,
            Arc::clone(&metrics.feedback),
        )));
        self.snapshot_stale = false;
        metrics.snapshot_rebuilds.inc();
    }
}

/// Wake/shutdown flags shared between the engine and its group-commit
/// flusher thread.
#[derive(Default)]
struct FlusherState {
    /// A commit left the WAL with a pending flush deadline.
    wake: bool,
    /// The engine is dropping; the thread must exit.
    shutdown: bool,
}

struct FlusherShared {
    state: Mutex<FlusherState>,
    cond: Condvar,
}

/// Handle to the dedicated group-commit flusher: a background thread
/// that watches [`Wal::pending_flush_deadline`] and fsyncs when the
/// oldest pending commit's `max_wait` expires. Without it the deadline
/// is only evaluated when the *next* commit arrives, so a lone committer
/// under `FlushPolicy::GroupCommit` could stay unsynced indefinitely;
/// with it, every acknowledged commit is durable within `max_wait`
/// wall-clock time. Signals shutdown and joins the thread on drop.
struct GroupCommitFlusher {
    shared: Arc<FlusherShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl GroupCommitFlusher {
    fn spawn(inner: Arc<RwLock<Inner>>) -> GroupCommitFlusher {
        let shared = Arc::new(FlusherShared {
            state: Mutex::new(FlusherState::default()),
            cond: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("toposem-wal-flusher".into())
            .spawn(move || Self::run(inner, thread_shared))
            .expect("spawn wal flusher thread");
        GroupCommitFlusher {
            shared,
            thread: Some(thread),
        }
    }

    /// Signals that a commit left the WAL with a pending flush deadline.
    fn kick(&self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.wake = true;
        self.shared.cond.notify_one();
    }

    fn run(inner: Arc<RwLock<Inner>>, shared: Arc<FlusherShared>) {
        let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.shutdown {
                return;
            }
            if !st.wake {
                st = shared.cond.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            st.wake = false;
            drop(st);
            // Drain pending deadlines: sleep until the oldest pending
            // commit's deadline, then flush. New commits while sleeping
            // re-kick (shortening nothing — the oldest deadline still
            // governs), and a batch-triggered flush clears the deadline,
            // ending the loop.
            loop {
                let deadline = inner
                    .read()
                    .wal
                    .as_ref()
                    .and_then(Wal::pending_flush_deadline);
                let Some(deadline) = deadline else { break };
                let now = Instant::now();
                if deadline <= now {
                    let mut guard = inner.write();
                    if let Some(wal) = guard.wal.as_mut() {
                        if wal
                            .pending_flush_deadline()
                            .is_some_and(|d| d <= Instant::now())
                        {
                            // An fsync failure resurfaces on the next
                            // commit's own flush; a background thread has
                            // nobody to report it to.
                            let _ = wal.flush();
                        }
                    }
                    continue;
                }
                let wait = deadline - now;
                let mut guard = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                if guard.shutdown {
                    return;
                }
                if !guard.wake {
                    let (g, _timed_out) = shared
                        .cond
                        .wait_timeout(guard, wait)
                        .unwrap_or_else(|e| e.into_inner());
                    guard = g;
                    if guard.shutdown {
                        return;
                    }
                }
                guard.wake = false;
                drop(guard);
            }
            st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Drop for GroupCommitFlusher {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
            self.shared.cond.notify_one();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The engine. Interior-mutable and `Sync`; all operations take `&self`.
pub struct Engine {
    inner: Arc<RwLock<Inner>>,
    /// Engine-wide metrics registry; lock-free, shared with the attached
    /// WAL (its [`toposem_obs::WalMetrics`] half).
    metrics: Arc<EngineMetrics>,
    /// Ring of recent query/commit traces.
    trace: Arc<TraceRing>,
    /// Background group-commit flusher, present when a WAL with
    /// `FlushPolicy::GroupCommit` is attached.
    flusher: Option<GroupCommitFlusher>,
}

impl Engine {
    /// Wraps a database (volatile: no write-ahead log).
    pub fn new(db: Database) -> Self {
        let n = db.schema().type_count();
        let metrics = Arc::new(EngineMetrics::new());
        let mut inner = Inner {
            db,
            declared_fds: Vec::new(),
            indexes: vec![Vec::new(); n],
            txn_log: None,
            current_txn: None,
            txn_token: None,
            txn_seq: 0,
            wal: None,
            stats: None,
            stats_epoch: 0,
            plan_cache: PlanCache::new(),
            snapshot: None,
            snapshot_stale: false,
            snapshot_requested: AtomicBool::new(false),
            read_only: false,
            applied_lsn: 0,
            repl_active: HashMap::new(),
        };
        // Prime the committed-state snapshot: a reader that arrives
        // while the very first write transaction is active must find a
        // committed state to read lock-free rather than falling back to
        // the locked path.
        inner.refresh_snapshot(&metrics);
        Engine {
            inner: Arc::new(RwLock::new(inner)),
            metrics,
            trace: Arc::new(TraceRing::new(toposem_obs::trace::DEFAULT_TRACE_CAP)),
            flusher: None,
        }
    }

    /// Attaches a prepared log and, under the group-commit policy, the
    /// dedicated flusher thread that bounds commit-to-durable latency.
    fn attach_wal(&mut self, mut wal: Wal) {
        wal.set_metrics(Arc::clone(&self.metrics.wal));
        let group_commit = matches!(wal.flush_policy(), FlushPolicy::GroupCommit { .. });
        self.inner.write().wal = Some(wal);
        if group_commit {
            self.flusher = Some(GroupCommitFlusher::spawn(Arc::clone(&self.inner)));
        }
    }

    /// Wraps a database durably: writes an initial checkpoint of `db`
    /// through `wal` (so recovery always has a base snapshot) and
    /// attaches the log. Subsequent mutations are redo-logged.
    pub fn durable(db: Database, mut wal: Wal) -> Result<Engine, EngineError> {
        let payload = snapshot::to_vec(&db).map_err(|e| EngineError::Recovery(e.to_string()))?;
        wal.checkpoint(&payload, &[], &[])?;
        let mut eng = Engine::new(db);
        eng.attach_wal(wal);
        Ok(eng)
    }

    /// Opens a durable engine from an existing log directory: recovers
    /// the committed state (checkpoint + committed log suffix), truncates
    /// any torn tail, and continues appending to the same log.
    pub fn open(path: impl AsRef<Path>, cfg: WalConfig) -> Result<Engine, EngineError> {
        let (wal, scan) = Wal::open(path, cfg)?;
        let mut eng = Self::from_scan(scan)?;
        eng.attach_wal(wal);
        Ok(eng)
    }

    /// Recovers the committed state from a log directory **read-only**:
    /// loads the latest valid checkpoint, replays committed transactions
    /// in commit order, discards uncommitted suffixes, tolerates a torn
    /// final record, and rebuilds indexes and statistics. The returned
    /// engine has no log attached and never modifies the directory —
    /// safe to call repeatedly over the same crash artefact.
    pub fn recover(path: impl AsRef<Path>) -> Result<Engine, EngineError> {
        let eng = Self::from_scan(toposem_wal::scan(path)?)?;
        // Rebuild statistics eagerly so the recovered engine is
        // immediately plannable.
        let _ = eng.statistics();
        Ok(eng)
    }

    /// Replays a scanned log into a fresh engine: committed transactions
    /// only, applied in commit order, with indexes and declared FDs
    /// restored from the checkpoint's and log's definitions.
    fn from_scan(scan: LogScan) -> Result<Engine, EngineError> {
        let mut db =
            snapshot::load(&scan.snapshot[..]).map_err(|e| EngineError::Recovery(e.to_string()))?;
        let mut index_defs = scan.meta.indexes.clone();
        let mut fd_defs = scan.meta.fds.clone();
        let mut active: HashMap<u64, Vec<(LogKind, LogicalOp)>> = HashMap::new();
        let mut replayed_txns = 0u64;
        let mut replayed_ops = 0u64;
        for rec in scan.records {
            match rec.entry {
                WalEntry::Begin { txn } => {
                    active.insert(txn, Vec::new());
                }
                WalEntry::Insert { txn, op } => {
                    active.entry(txn).or_default().push((LogKind::Insert, op));
                }
                WalEntry::Delete { txn, op } => {
                    active.entry(txn).or_default().push((LogKind::Delete, op));
                }
                WalEntry::Commit { txn } => {
                    replayed_txns += 1;
                    for (kind, op) in active.remove(&txn).unwrap_or_default() {
                        replayed_ops += 1;
                        let res = match kind {
                            LogKind::Insert => op.apply_insert(&mut db).map(|_| ()),
                            LogKind::Delete => op.apply_delete(&mut db).map(|_| ()),
                        };
                        res.map_err(|e| EngineError::Recovery(e.to_string()))?;
                    }
                }
                WalEntry::Abort { txn } => {
                    active.remove(&txn);
                }
                WalEntry::Checkpoint { .. } => {}
                WalEntry::CreateIndex { def } => index_defs.push(def),
                // Drops are applied to the accumulated definition list in
                // log order, so create/drop/create replays to one index.
                WalEntry::DropIndex { def } => index_defs.retain(|d| *d != def),
                WalEntry::DeclareFd { lhs, rhs, context } => fd_defs.push((lhs, rhs, context)),
            }
        }
        // Transactions still in `active` never committed: discarded.
        let eng = Engine::new(db);
        eng.metrics.recovery_runs.inc();
        eng.metrics.recovery_replayed_txns.add(replayed_txns);
        eng.metrics.recovery_replayed_ops.add(replayed_ops);
        for def in index_defs {
            let e = eng.with_db(|db| db.schema().type_id(&def.entity));
            let attrs: Option<Vec<toposem_core::AttrId>> =
                eng.with_db(|db| def.attrs.iter().map(|a| db.schema().attr_id(a)).collect());
            let (Some(e), Some(attrs)) = (e, attrs) else {
                return Err(EngineError::Recovery(format!(
                    "logged index ({}, {:?}) names no schema element",
                    def.entity, def.attrs
                )));
            };
            let kind = match def.kind {
                IndexKindDef::Hash => IndexKind::Hash,
                IndexKindDef::Ordered => IndexKind::Ordered,
                IndexKindDef::Composite => IndexKind::Composite,
            };
            eng.create_index_of(e, kind, &attrs)?;
        }
        // Every replayed mutation passed its FD checks on the live
        // engine, so the recovered state satisfies every declared FD;
        // re-declaring at the end re-verifies that and restores
        // enforcement for post-recovery writes.
        for (lhs, rhs, context) in fd_defs {
            let resolved = eng.with_db(|db| {
                let s = db.schema();
                Some(Fd::unchecked(
                    s.type_id(&lhs)?,
                    s.type_id(&rhs)?,
                    s.type_id(&context)?,
                ))
            });
            match resolved {
                Some(fd) => eng.declare_fd(fd)?,
                None => {
                    return Err(EngineError::Recovery(format!(
                        "logged fd ({lhs}, {rhs}, {context}) names no schema element"
                    )))
                }
            }
        }
        Ok(eng)
    }

    /// Builds a **read-only replica** engine from a shipped checkpoint:
    /// the snapshot payload plus the meta's index and FD definitions,
    /// exactly as recovery would install them, with the applied-LSN
    /// watermark seeded at the checkpoint's `next_lsn`. The replica's
    /// state then advances only through [`Engine::apply_replicated`];
    /// every public mutator returns [`EngineError::ReadOnly`].
    pub fn replica_from_checkpoint(
        meta: CheckpointMeta,
        snapshot: Vec<u8>,
    ) -> Result<Engine, EngineError> {
        let applied = meta.next_lsn;
        let eng = Self::from_scan(LogScan {
            meta,
            snapshot,
            records: Vec::new(),
            torn_tail: false,
        })?;
        {
            let mut inner = eng.inner.write();
            inner.read_only = true;
            inner.applied_lsn = applied;
            // Index/FD replay marked the primed snapshot stale; rebuild
            // so the first replica reader is lock-free immediately.
            inner.refresh_snapshot(&eng.metrics);
        }
        eng.metrics.repl.applied_lsn.set(applied);
        Ok(eng)
    }

    /// Applies one shipped WAL record to a replica, mirroring recovery's
    /// commit-order replay against the *live* engine: operations buffer
    /// per transaction and take effect (with index maintenance) only
    /// when the `Commit` record arrives; aborted transactions vanish.
    /// Records below the applied-LSN watermark are skipped idempotently,
    /// so a follower may re-decode a segment from the start after a
    /// disconnect without double-applying.
    ///
    /// FD checks are *not* re-run per operation — the primary validated
    /// them before logging, and a replica rejecting a committed record
    /// could only diverge. DDL records (index create/drop, FD
    /// declarations) apply immediately, as they do in the log.
    pub fn apply_replicated(&self, rec: &WalRecord) -> Result<(), EngineError> {
        let mut inner = self.inner.write();
        if rec.lsn < inner.applied_lsn {
            return Ok(());
        }
        match &rec.entry {
            WalEntry::Begin { txn } => {
                inner.repl_active.insert(*txn, Vec::new());
            }
            WalEntry::Insert { txn, op } => {
                inner
                    .repl_active
                    .entry(*txn)
                    .or_default()
                    .push((LogKind::Insert, op.clone()));
            }
            WalEntry::Delete { txn, op } => {
                inner
                    .repl_active
                    .entry(*txn)
                    .or_default()
                    .push((LogKind::Delete, op.clone()));
            }
            WalEntry::Commit { txn } => {
                let ops = inner.repl_active.remove(txn).unwrap_or_default();
                let n = ops.len() as u64;
                for (kind, op) in ops {
                    Self::apply_replicated_op(&mut inner, kind, &op)?;
                }
                if n > 0 {
                    // Outside any local transaction, so this also marks
                    // the cached snapshot stale: the next replica reader
                    // materialises the freshly applied commit.
                    inner.note_mutation(&self.metrics);
                }
                self.metrics.repl.records_applied.add(n);
            }
            WalEntry::Abort { txn } => {
                inner.repl_active.remove(txn);
            }
            WalEntry::Checkpoint { .. } => {}
            WalEntry::CreateIndex { def } => {
                let (e, kind, attrs) = Self::resolve_index_def(&inner.db, def)?;
                Self::create_index_locked(&mut inner, &self.metrics, e, kind, &attrs)?;
            }
            WalEntry::DropIndex { def } => {
                let (e, kind, attrs) = Self::resolve_index_def(&inner.db, def)?;
                Self::drop_index_locked(&mut inner, &self.metrics, e, kind, &attrs)?;
            }
            WalEntry::DeclareFd { lhs, rhs, context } => {
                let resolved = {
                    let s = inner.db.schema();
                    match (s.type_id(lhs), s.type_id(rhs), s.type_id(context)) {
                        (Some(l), Some(r), Some(c)) => Some(Fd::unchecked(l, r, c)),
                        _ => None,
                    }
                };
                let fd = resolved.ok_or_else(|| {
                    EngineError::Recovery(format!(
                        "replicated fd ({lhs}, {rhs}, {context}) names no schema element"
                    ))
                })?;
                if !check_fd(&inner.db, &fd).holds() {
                    return Err(EngineError::FdViolation(fd));
                }
                inner.declared_fds.push(fd);
            }
        }
        inner.applied_lsn = rec.lsn + 1;
        self.metrics.repl.applied_lsn.set(inner.applied_lsn);
        Ok(())
    }

    /// Applies one committed replicated operation against the live
    /// database, maintaining every affected index — the live-apply
    /// mirror of recovery's `apply_insert`/`apply_delete` (which can
    /// ignore indexes because recovery builds them afterwards).
    fn apply_replicated_op(
        inner: &mut Inner,
        kind: LogKind,
        op: &LogicalOp,
    ) -> Result<(), EngineError> {
        let (e, t) = op
            .resolve(&inner.db)
            .map_err(|e| EngineError::Recovery(e.to_string()))?;
        match kind {
            LogKind::Insert => {
                let added = inner.db.insert_tracked(e, t);
                for (s, u) in &added {
                    for idx in &mut inner.indexes[s.index()] {
                        idx.insert(u);
                    }
                }
            }
            LogKind::Delete => {
                // Same cascade capture as Engine::delete: the logged op
                // addresses one instance; specialisations that project
                // onto it go too, and their index entries with them.
                let schema = inner.db.schema().clone();
                let victims: Vec<(TypeId, Instance)> = schema
                    .type_ids()
                    .flat_map(|s| {
                        let spec = inner.db.intension().specialisation();
                        if s != e && !spec.is_specialisation(s, e) {
                            return Vec::new();
                        }
                        let ae = schema.attrs_of(e);
                        inner
                            .db
                            .stored(s)
                            .iter()
                            .filter(|u| u.project(ae) == t)
                            .map(|u| (s, u.clone()))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                inner.db.delete(e, &t);
                for (s, u) in &victims {
                    for idx in &mut inner.indexes[s.index()] {
                        idx.remove(u);
                    }
                }
            }
        }
        Ok(())
    }

    /// Resolves a logged index definition's names against the live
    /// schema (shared by replicated create and drop application).
    fn resolve_index_def(
        db: &Database,
        def: &IndexDef,
    ) -> Result<(TypeId, IndexKind, Vec<toposem_core::AttrId>), EngineError> {
        let schema = db.schema();
        let e = schema.type_id(&def.entity);
        let attrs: Option<Vec<toposem_core::AttrId>> =
            def.attrs.iter().map(|a| schema.attr_id(a)).collect();
        let (Some(e), Some(attrs)) = (e, attrs) else {
            return Err(EngineError::Recovery(format!(
                "replicated index ({}, {:?}) names no schema element",
                def.entity, def.attrs
            )));
        };
        let kind = match def.kind {
            IndexKindDef::Hash => IndexKind::Hash,
            IndexKindDef::Ordered => IndexKind::Ordered,
            IndexKindDef::Composite => IndexKind::Composite,
        };
        Ok((e, kind, attrs))
    }

    /// One past the LSN of the last record applied through
    /// [`Engine::apply_replicated`] — the replica's consistency
    /// watermark (a checkpoint-bootstrapped replica starts at the
    /// checkpoint's `next_lsn`; 0 on a non-replica engine).
    pub fn applied_lsn(&self) -> u64 {
        self.inner.read().applied_lsn
    }

    /// Whether this engine is a read-only replica.
    pub fn is_read_only(&self) -> bool {
        self.inner.read().read_only
    }

    /// The LSN the next appended WAL record will get, when a log is
    /// attached — the primary-side watermark replication lag is
    /// measured against.
    pub fn wal_next_lsn(&self) -> Option<u64> {
        self.inner.read().wal.as_ref().map(Wal::next_lsn)
    }

    /// The directory of the attached write-ahead log, when one exists —
    /// where a replication shipper finds checkpoints and segments.
    pub fn wal_dir(&self) -> Option<std::path::PathBuf> {
        self.inner
            .read()
            .wal
            .as_ref()
            .map(|w| w.dir().to_path_buf())
    }

    /// Whether a write-ahead log is attached.
    pub fn is_durable(&self) -> bool {
        self.inner.read().wal.is_some()
    }

    /// Forces every appended log record to disk — drains any pending
    /// group-commit window. Errors on a volatile engine.
    pub fn sync(&self) -> Result<(), EngineError> {
        match self.inner.write().wal.as_mut() {
            Some(wal) => Ok(wal.flush()?),
            None => Err(EngineError::NotDurable),
        }
    }

    /// Installs a checkpoint: serialises the database in the canonical
    /// snapshot format (with the self-identifying header), atomically
    /// replaces the checkpoint file, and truncates old log segments.
    /// Refuses while a transaction is active — the snapshot must capture
    /// a transaction-consistent state.
    pub fn checkpoint(&self) -> Result<(), EngineError> {
        let mut inner = self.inner.write();
        if inner.read_only {
            return Err(EngineError::ReadOnly);
        }
        if inner.txn_log.is_some() {
            return Err(EngineError::TransactionActive);
        }
        if inner.wal.is_none() {
            return Err(EngineError::NotDurable);
        }
        let payload =
            snapshot::to_vec(&inner.db).map_err(|e| EngineError::Recovery(e.to_string()))?;
        let schema = inner.db.schema();
        let defs: Vec<IndexDef> = schema
            .type_ids()
            .flat_map(|e| {
                inner.indexes[e.index()]
                    .iter()
                    .map(move |idx| Self::describe_index(schema, e, idx))
            })
            .collect();
        let fds: Vec<(String, String, String)> = inner
            .declared_fds
            .iter()
            .map(|fd| {
                (
                    schema.type_name(fd.lhs).to_owned(),
                    schema.type_name(fd.rhs).to_owned(),
                    schema.type_name(fd.context).to_owned(),
                )
            })
            .collect();
        inner
            .wal
            .as_mut()
            .expect("checked above")
            .checkpoint(&payload, &defs, &fds)?;
        Ok(())
    }

    /// Declares an FD the engine must keep satisfied. Returns `Err` with
    /// the FD when the *current* data already violates it. On a durable
    /// engine the declaration is logged (and immediately synced) so
    /// recovery restores enforcement.
    pub fn declare_fd(&self, fd: Fd) -> Result<(), EngineError> {
        let mut inner = self.inner.write();
        if inner.read_only {
            return Err(EngineError::ReadOnly);
        }
        if !check_fd(&inner.db, &fd).holds() {
            return Err(EngineError::FdViolation(fd));
        }
        inner.declared_fds.push(fd);
        let (lhs, rhs, context) = {
            let schema = inner.db.schema();
            (
                schema.type_name(fd.lhs).to_owned(),
                schema.type_name(fd.rhs).to_owned(),
                schema.type_name(fd.context).to_owned(),
            )
        };
        if let Some(wal) = inner.wal.as_mut() {
            wal.append(WalEntry::DeclareFd { lhs, rhs, context })?;
            wal.flush()?;
        }
        Ok(())
    }

    /// The logged/checkpointed definition of one live index.
    fn describe_index(schema: &toposem_core::Schema, e: TypeId, idx: &Index) -> IndexDef {
        IndexDef {
            entity: schema.type_name(e).to_owned(),
            kind: match idx.kind() {
                IndexKind::Hash => IndexKindDef::Hash,
                IndexKind::Ordered => IndexKindDef::Ordered,
                IndexKind::Composite => IndexKindDef::Composite,
            },
            attrs: idx
                .attrs()
                .iter()
                .map(|a| schema.attr_name(*a).to_owned())
                .collect(),
        }
    }

    /// Builds a hash index on one attribute of `e`'s stored relation.
    /// On a durable engine the definition is logged (and immediately
    /// synced) so recovery rebuilds the index.
    pub fn create_index(&self, e: TypeId, attr: toposem_core::AttrId) -> Result<(), EngineError> {
        self.create_index_of(e, IndexKind::Hash, &[attr])
    }

    /// Builds an ordered (BTree) index on one attribute of `e`'s stored
    /// relation, enabling index range seeks.
    pub fn create_ord_index(
        &self,
        e: TypeId,
        attr: toposem_core::AttrId,
    ) -> Result<(), EngineError> {
        self.create_index_of(e, IndexKind::Ordered, &[attr])
    }

    /// Builds a composite ordered index over `attrs` (order significant:
    /// conjunctive equality selections matching a key *prefix* can seek).
    pub fn create_composite_index(
        &self,
        e: TypeId,
        attrs: &[toposem_core::AttrId],
    ) -> Result<(), EngineError> {
        self.create_index_of(e, IndexKind::Composite, attrs)
    }

    /// The shared index-DDL path: validates the definition, builds the
    /// structure from the stored relation, installs it (replacing any
    /// index of the same kind and attribute list), bumps the statistics
    /// epoch so cached plans are invalidated, and logs the definition on
    /// a durable engine.
    pub fn create_index_of(
        &self,
        e: TypeId,
        kind: IndexKind,
        attrs: &[toposem_core::AttrId],
    ) -> Result<(), EngineError> {
        let mut inner = self.inner.write();
        if inner.read_only {
            return Err(EngineError::ReadOnly);
        }
        Self::create_index_locked(&mut inner, &self.metrics, e, kind, attrs)
    }

    /// The lock-held body of [`Engine::create_index_of`], shared with
    /// replicated-DDL application (which holds the lock already and must
    /// bypass the read-only guard).
    fn create_index_locked(
        inner: &mut Inner,
        metrics: &EngineMetrics,
        e: TypeId,
        kind: IndexKind,
        attrs: &[toposem_core::AttrId],
    ) -> Result<(), EngineError> {
        {
            let schema = inner.db.schema();
            if attrs.is_empty() {
                return Err(EngineError::BadIndexDefinition(
                    "no attributes named".into(),
                ));
            }
            if matches!(kind, IndexKind::Hash | IndexKind::Ordered) && attrs.len() != 1 {
                return Err(EngineError::BadIndexDefinition(format!(
                    "{} indexes take exactly one attribute",
                    kind.name()
                )));
            }
            for (i, a) in attrs.iter().enumerate() {
                if !schema.attrs_of(e).contains(a.index()) {
                    return Err(EngineError::BadIndexDefinition(format!(
                        "attribute {} is not in type {}",
                        schema.attr_name(*a),
                        schema.type_name(e)
                    )));
                }
                if attrs[..i].contains(a) {
                    return Err(EngineError::BadIndexDefinition(format!(
                        "attribute {} repeated",
                        schema.attr_name(*a)
                    )));
                }
            }
        }
        let mut idx = match kind {
            IndexKind::Hash => Index::Hash(HashIndex::new(attrs[0])),
            IndexKind::Ordered => Index::Ord(OrdIndex::new(attrs[0])),
            IndexKind::Composite => Index::Composite(CompositeIndex::new(attrs.to_vec())),
        };
        for t in inner.db.stored(e).iter() {
            idx.insert(t);
        }
        let slot = &mut inner.indexes[e.index()];
        // Re-creating the same definition rebuilds in place; otherwise
        // the new index joins the type's set.
        slot.retain(|existing| !(existing.kind() == kind && existing.attrs() == attrs));
        slot.push(idx);
        // Index presence changes access paths: invalidate cached plans.
        inner.note_mutation(metrics);
        let def = {
            let schema = inner.db.schema();
            let idx = inner.indexes[e.index()].last().expect("just pushed");
            Self::describe_index(schema, e, idx)
        };
        if let Some(wal) = inner.wal.as_mut() {
            wal.append(WalEntry::CreateIndex { def })?;
            wal.flush()?;
        }
        Ok(())
    }

    /// Drops the index of `kind` over `attrs` on `e`, returning whether
    /// one existed. Dropping bumps the statistics epoch (cached plans
    /// may reference the index and must be invalidated) and, on a
    /// durable engine, logs a `DropIndex` record (immediately synced)
    /// so recovery stops rebuilding the index.
    pub fn drop_index(
        &self,
        e: TypeId,
        kind: IndexKind,
        attrs: &[toposem_core::AttrId],
    ) -> Result<bool, EngineError> {
        let mut inner = self.inner.write();
        if inner.read_only {
            return Err(EngineError::ReadOnly);
        }
        Self::drop_index_locked(&mut inner, &self.metrics, e, kind, attrs)
    }

    /// The lock-held body of [`Engine::drop_index`], shared with
    /// replicated-DDL application.
    fn drop_index_locked(
        inner: &mut Inner,
        metrics: &EngineMetrics,
        e: TypeId,
        kind: IndexKind,
        attrs: &[toposem_core::AttrId],
    ) -> Result<bool, EngineError> {
        let slot = &mut inner.indexes[e.index()];
        let before = slot.len();
        slot.retain(|idx| !(idx.kind() == kind && idx.attrs() == attrs));
        if slot.len() == before {
            return Ok(false);
        }
        inner.note_mutation(metrics);
        let def = {
            let schema = inner.db.schema();
            IndexDef {
                entity: schema.type_name(e).to_owned(),
                kind: match kind {
                    IndexKind::Hash => IndexKindDef::Hash,
                    IndexKind::Ordered => IndexKindDef::Ordered,
                    IndexKind::Composite => IndexKindDef::Composite,
                },
                attrs: attrs
                    .iter()
                    .map(|a| schema.attr_name(*a).to_owned())
                    .collect(),
            }
        };
        if let Some(wal) = inner.wal.as_mut() {
            wal.append(WalEntry::DropIndex { def })?;
            wal.flush()?;
        }
        Ok(true)
    }

    /// Point lookup through any single-attribute index of `e` on `attr`
    /// (falls back to a scan when none exists).
    pub fn lookup(&self, e: TypeId, attr: toposem_core::AttrId, v: &Value) -> Vec<Instance> {
        let inner = self.inner.read();
        for idx in &inner.indexes[e.index()] {
            if let Some(hit) = idx.lookup(attr, v) {
                return hit.to_vec();
            }
        }
        inner
            .db
            .stored(e)
            .iter()
            .filter(|t| t.get(attr) == Some(v))
            .cloned()
            .collect()
    }

    /// Appends a redo record for one logical operation. Outside an
    /// explicit transaction the op is its own transaction
    /// (`Begin`/op/`Commit`) and the flush policy runs; inside one, the
    /// record joins the open transaction and durability waits for
    /// [`Engine::commit`].
    fn log_op(
        inner: &mut Inner,
        metrics: &EngineMetrics,
        kind: LogKind,
        op: LogicalOp,
    ) -> Result<(), EngineError> {
        let autocommit = inner.txn_log.is_none();
        let current = inner.current_txn;
        let Some(wal) = inner.wal.as_mut() else {
            return Ok(());
        };
        let entry = |txn: u64, op: LogicalOp| match kind {
            LogKind::Insert => WalEntry::Insert { txn, op },
            LogKind::Delete => WalEntry::Delete { txn, op },
        };
        if autocommit {
            let txn = wal.alloc_txn();
            wal.append(WalEntry::Begin { txn })?;
            wal.append(entry(txn, op))?;
            wal.append(WalEntry::Commit { txn })?;
            wal.commit_appended()?;
            // An autocommitted op is its own transaction in the log, so
            // it counts as one begin + one commit.
            metrics.txn_begins.inc();
            metrics.txn_commits.inc();
        } else if let Some(txn) = current {
            wal.append(entry(txn, op))?;
        }
        Ok(())
    }

    /// Inserts named fields as an instance of `e`, enforcing domains,
    /// containment (via the database policy), and declared FDs. The FD
    /// check is transactional: a violating insert leaves no trace.
    ///
    /// On a durable engine the *declared* instance is redo-logged after
    /// validation succeeds (propagations are re-derived on replay); a log
    /// failure is reported even though the in-memory insert stands.
    pub fn insert(&self, e: TypeId, fields: &[(&str, Value)]) -> Result<bool, EngineError> {
        let mut inner = self.inner.write();
        if inner.read_only {
            return Err(EngineError::ReadOnly);
        }
        let t = Instance::new(inner.db.schema(), inner.db.catalog(), e, fields)?;
        let added = inner.db.insert_tracked(e, t.clone());
        if added.is_empty() {
            return Ok(false);
        }
        // Validate FDs; remove exactly what was added if any breaks.
        let fds = inner.declared_fds.clone();
        for fd in &fds {
            if !check_fd(&inner.db, fd).holds() {
                for (s, u) in &added {
                    inner.db.stored_remove(*s, u);
                }
                return Err(EngineError::FdViolation(*fd));
            }
        }
        // Maintain every affected index: eager containment stores projected
        // tuples in generalisation relations too, and their indexes must
        // see them (delete/rollback already walk the full pair list).
        for (s, u) in &added {
            for idx in &mut inner.indexes[s.index()] {
                idx.insert(u);
            }
        }
        if let Some(log) = &mut inner.txn_log {
            log.push(Undo::UnInsert(added));
        }
        if inner.wal.is_some() {
            let op = LogicalOp::describe(&inner.db, e, &t);
            Self::log_op(&mut inner, &self.metrics, LogKind::Insert, op)?;
        }
        inner.note_mutation(&self.metrics);
        let kick = inner
            .wal
            .as_ref()
            .and_then(Wal::pending_flush_deadline)
            .is_some();
        drop(inner);
        if kick {
            self.kick_flusher();
        }
        Ok(true)
    }

    /// Deletes an instance (cascading down the ISA hierarchy); returns the
    /// number of tuples removed. On a durable engine the addressed
    /// instance is redo-logged (the cascade is recomputed on replay).
    pub fn delete(&self, e: TypeId, t: &Instance) -> Result<usize, EngineError> {
        let mut inner = self.inner.write();
        if inner.read_only {
            return Err(EngineError::ReadOnly);
        }
        // Capture what a cascade will remove, for undo and index upkeep.
        let schema = inner.db.schema().clone();
        let victims: Vec<(TypeId, Instance)> = schema
            .type_ids()
            .flat_map(|s| {
                let spec = inner.db.intension().specialisation();
                if s != e && !spec.is_specialisation(s, e) {
                    return Vec::new();
                }
                let ae = schema.attrs_of(e);
                inner
                    .db
                    .stored(s)
                    .iter()
                    .filter(|u| &u.project(ae) == t)
                    .map(|u| (s, u.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let removed = inner.db.delete(e, t);
        for (s, u) in &victims {
            for idx in &mut inner.indexes[s.index()] {
                idx.remove(u);
            }
        }
        if removed > 0 {
            if let Some(log) = &mut inner.txn_log {
                log.push(Undo::Restore(victims));
            }
            if inner.wal.is_some() {
                let op = LogicalOp::describe(&inner.db, e, t);
                Self::log_op(&mut inner, &self.metrics, LogKind::Delete, op)?;
            }
            inner.note_mutation(&self.metrics);
        }
        let kick = removed > 0
            && inner
                .wal
                .as_ref()
                .and_then(Wal::pending_flush_deadline)
                .is_some();
        drop(inner);
        if kick {
            self.kick_flusher();
        }
        Ok(removed)
    }

    /// Wakes the group-commit flusher (no-op without one) so a pending
    /// flush deadline is honoured even if no further commit arrives.
    fn kick_flusher(&self) {
        if let Some(f) = &self.flusher {
            f.kick();
        }
    }

    /// Begins a transaction. The engine is single-writer with flat
    /// transactions: beginning while one is active is an error (it would
    /// otherwise silently flatten, emitting two WAL `Begin` records for
    /// what the caller believes are distinct transactions).
    pub fn begin(&self) -> Result<(), EngineError> {
        let mut inner = self.inner.write();
        if inner.read_only {
            return Err(EngineError::ReadOnly);
        }
        if inner.txn_log.is_some() {
            return Err(EngineError::TransactionActive);
        }
        // Append the Begin record *before* marking the transaction
        // active: if the log rejects it, no transaction starts — the
        // caller sees the error and the engine is not left with a
        // phantom open transaction that blocks every later begin while
        // silently skipping the log.
        let txn = match inner.wal.as_mut() {
            Some(wal) => {
                let txn = wal.alloc_txn();
                wal.append(WalEntry::Begin { txn })?;
                Some(txn)
            }
            None => None,
        };
        // Bring the committed-state snapshot up to date *before* the
        // transaction can mutate anything: MVCC readers keep reading the
        // pre-transaction state through it for the transaction's whole
        // lifetime. Only refresh when someone has actually asked for
        // snapshots — a write-only workload would otherwise clone the
        // whole database on every begin; for it the stale snapshot is
        // dropped in O(1) instead (the next snapshot reader rebuilds).
        if inner.snapshot_stale {
            if inner.snapshot_requested.load(Ordering::Relaxed) {
                inner.refresh_snapshot(&self.metrics);
            } else {
                inner.snapshot = None;
            }
        }
        inner.txn_log = Some(Vec::new());
        inner.current_txn = txn;
        inner.txn_seq += 1;
        inner.txn_token = Some(inner.txn_seq);
        self.metrics.txn_begins.inc();
        Ok(())
    }

    /// Commits the active transaction. On a durable engine this is the
    /// durability point: the `Commit` record is appended and the flush
    /// policy decides when it reaches disk (`PerCommit` = before this
    /// returns).
    pub fn commit(&self) -> Result<(), EngineError> {
        let mut inner = self.inner.write();
        if inner.txn_log.take().is_none() {
            return Err(EngineError::NoTransaction);
        }
        let txn = inner.current_txn.take();
        let token = inner.txn_token.take();
        let mut commit_ns = 0;
        if let (Some(txn), Some(wal)) = (txn, inner.wal.as_mut()) {
            let t0 = std::time::Instant::now();
            wal.append(WalEntry::Commit { txn })?;
            wal.commit_appended()?;
            commit_ns = t0.elapsed().as_nanos() as u64;
        }
        // The transaction's writes are committed now: the next snapshot
        // request materialises them.
        inner.snapshot_stale = true;
        let kick = inner
            .wal
            .as_ref()
            .and_then(Wal::pending_flush_deadline)
            .is_some();
        drop(inner);
        if kick {
            self.kick_flusher();
        }
        self.metrics.txn_commits.inc();
        if commit_ns > 0 {
            // Attribute the commit phase back to the transaction's
            // queries, so their end-to-end latency accounting includes
            // the durability cost their writes caused.
            let attributed = token.map_or(0, |t| self.trace.attribute_commit(t, commit_ns));
            if attributed == 0 {
                // No traced queries to charge (the transaction ran none,
                // or the ring evicted them): trace the commit as its own
                // entry. It has no plan/exec association, so the
                // fingerprint and plan hash stay 0.
                self.trace.push(QueryTrace {
                    fingerprint: 0,
                    plan_hash: 0,
                    plan_ns: 0,
                    exec_ns: 0,
                    commit_ns,
                    rows: 0,
                    cache_hit: false,
                    slow: commit_ns >= self.trace.slow_query_ns(),
                    max_q: 0.0,
                    txn: None,
                    session: toposem_obs::trace::current_session(),
                    profile: None,
                });
            }
        }
        Ok(())
    }

    /// Rolls the active transaction back, undoing its operations in
    /// reverse order. On a durable engine an `Abort` record marks the
    /// transaction so recovery discards it without waiting for the
    /// no-commit heuristic.
    pub fn rollback(&self) -> Result<(), EngineError> {
        let mut inner = self.inner.write();
        let log = inner.txn_log.take().ok_or(EngineError::NoTransaction)?;
        inner.note_mutation(&self.metrics);
        for entry in log.into_iter().rev() {
            match entry {
                Undo::UnInsert(added) => {
                    for (s, u) in added {
                        inner.db.stored_remove(s, &u);
                        for idx in &mut inner.indexes[s.index()] {
                            idx.remove(&u);
                        }
                    }
                }
                Undo::Restore(victims) => {
                    for (s, u) in victims {
                        inner.db.insert(s, u.clone());
                        for idx in &mut inner.indexes[s.index()] {
                            idx.insert(&u);
                        }
                    }
                }
            }
        }
        let txn = inner.current_txn.take();
        inner.txn_token = None;
        if let (Some(txn), Some(wal)) = (txn, inner.wal.as_mut()) {
            wal.append(WalEntry::Abort { txn })?;
        }
        self.metrics.txn_aborts.inc();
        Ok(())
    }

    /// Trace token of the active explicit transaction, if any. Planned
    /// queries stamp it into their trace entries so the eventual commit
    /// can attribute its `commit_ns` back to them.
    pub fn active_txn_token(&self) -> Option<u64> {
        self.inner.read().txn_token
    }

    /// Reads the semantic extension of `e`.
    pub fn extension(&self, e: TypeId) -> toposem_extension::Relation {
        self.inner.read().db.extension(e)
    }

    /// Runs `f` with read access to the underlying database.
    pub fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.inner.read().db)
    }

    /// Runs `f` with read access to the database *and* the index array
    /// under one lock acquisition — the planner's executor uses this so a
    /// whole query sees a consistent snapshot.
    pub fn with_parts<R>(&self, f: impl FnOnce(&Database, &[Vec<Index>]) -> R) -> R {
        let inner = self.inner.read();
        f(&inner.db, &inner.indexes)
    }

    /// The attribute of the first single-attribute index on `e`, when one
    /// exists (composites don't answer single-attribute point lookups).
    pub fn indexed_attr(&self, e: TypeId) -> Option<toposem_core::AttrId> {
        self.inner.read().indexes[e.index()]
            .iter()
            .find_map(|idx| match idx {
                Index::Hash(h) => Some(h.attr()),
                Index::Ord(o) => Some(o.attr()),
                Index::Composite(_) => None,
            })
    }

    /// The definitions of every live index of `e`: kind plus attribute
    /// list, in creation order.
    pub fn index_defs(&self, e: TypeId) -> Vec<(IndexKind, Vec<toposem_core::AttrId>)> {
        self.inner.read().indexes[e.index()]
            .iter()
            .map(|idx| (idx.kind(), idx.attrs()))
            .collect()
    }

    /// Current statistics, collected lazily and cached until the next
    /// mutation (insert, delete, or rollback). Carries the engine's
    /// selectivity-feedback cache, so estimates read through them are
    /// steered by learned corrections (neutral until something has been
    /// observed, or always when `TOPOSEM_FEEDBACK=0`).
    pub fn statistics(&self) -> Arc<Statistics> {
        if let Some(s) = &self.inner.read().stats {
            return Arc::clone(s);
        }
        let mut inner = self.inner.write();
        if inner.stats.is_none() {
            let s = Arc::new(
                Statistics::collect(&inner.db, &inner.indexes)
                    .with_feedback(Arc::clone(&self.metrics.feedback), inner.stats_epoch),
            );
            inner.stats = Some(s);
        }
        Arc::clone(inner.stats.as_ref().expect("just filled"))
    }

    /// The statistics generation: bumped by every mutation. Two calls
    /// returning the same epoch bracket a mutation-free window, so
    /// anything derived from statistics (plans, estimates) in between is
    /// still valid.
    pub fn statistics_epoch(&self) -> u64 {
        self.inner.read().stats_epoch
    }

    /// The epoch that keys the plan cache: the statistics epoch plus
    /// the feedback generation. Both terms only ever grow, so the sum
    /// is monotone and uniquely brackets a window in which neither the
    /// data distribution nor the learned corrections moved enough to
    /// change a plan — a cached plan is valid exactly while this value
    /// holds still.
    pub fn plan_epoch(&self) -> u64 {
        self.inner.read().stats_epoch + self.metrics.feedback.generation()
    }

    /// The engine's selectivity-feedback cache (shared with
    /// [`Engine::statistics`] snapshots and the planner's recorder).
    pub fn feedback(&self) -> &Arc<toposem_obs::SelectivityFeedback> {
        &self.metrics.feedback
    }

    /// Looks up a cached plan for `fingerprint`, valid only at `epoch`
    /// (obtain it from [`Engine::statistics_epoch`] *before* planning).
    /// Counts a hit or miss. Hits take only the engine's read lock;
    /// an epoch mismatch in either direction is a miss (a lagging
    /// reader never disturbs the current cache).
    ///
    /// Do **not** call while holding a [`Engine::with_parts`] borrow —
    /// lock acquisition is not reentrant.
    pub fn plan_cache_lookup(
        &self,
        fingerprint: u64,
        epoch: u64,
    ) -> Option<Arc<dyn Any + Send + Sync>> {
        let inner = self.inner.read();
        let cache = &inner.plan_cache;
        if cache.epoch == epoch {
            if let Some(plan) = cache.plans.get(&fingerprint) {
                self.metrics.plan_cache_hits.inc();
                return Some(Arc::clone(plan));
            }
        }
        self.metrics.plan_cache_misses.inc();
        None
    }

    /// Stores a plan under `fingerprint` as of `epoch`. A plan from a
    /// *newer* epoch rolls the cache forward (clearing superseded
    /// entries); a plan computed against superseded statistics is
    /// silently dropped rather than poisoning the cache. A full cache
    /// evicts an arbitrary entry.
    pub fn plan_cache_store(&self, fingerprint: u64, epoch: u64, plan: Arc<dyn Any + Send + Sync>) {
        let mut inner = self.inner.write();
        let cache = &mut inner.plan_cache;
        if epoch > cache.epoch {
            cache.plans.clear();
            cache.epoch = epoch;
        }
        if cache.epoch != epoch {
            return;
        }
        if cache.plans.len() >= PLAN_CACHE_CAP && !cache.plans.contains_key(&fingerprint) {
            if let Some(&victim) = cache.plans.keys().next() {
                cache.plans.remove(&victim);
            }
        }
        cache.plans.insert(fingerprint, plan);
        self.metrics.plan_cache_stores.inc();
    }

    /// Lifetime `(hits, misses)` of the plan cache.
    pub fn plan_cache_counters(&self) -> (u64, u64) {
        let s = self.plan_cache_stats();
        (s.hits, s.misses)
    }

    /// Typed lifetime counters of the plan cache. `stores` counts plans
    /// actually inserted (stores dropped for arriving with superseded
    /// statistics are not counted).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.metrics.plan_cache_hits.get(),
            misses: self.metrics.plan_cache_misses.get(),
            stores: self.metrics.plan_cache_stores.get(),
        }
    }

    /// The engine-wide metrics registry. Layers above record their own
    /// events here (the planner counts queries, for instance); readers
    /// should prefer [`Engine::metrics_snapshot`].
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// Typed point-in-time copy of every engine metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The metrics snapshot rendered in the Prometheus text exposition
    /// format.
    pub fn metrics_prometheus(&self) -> String {
        self.metrics.snapshot().to_prometheus()
    }

    /// The ring of recent query and commit traces. Planned queries push
    /// entries here; slow ones (past `TOPOSEM_SLOW_QUERY_MS`, or
    /// [`TraceRing::set_slow_query_ms`]) retain their full operator
    /// profile.
    pub fn query_trace(&self) -> &Arc<TraceRing> {
        &self.trace
    }

    /// An immutable MVCC snapshot of the last *committed* state, for
    /// lock-free reads: the returned [`EngineSnapshot`] owns its own
    /// database, index array, and statistics, so any number of readers
    /// plan and execute whole queries against it while the single
    /// writer mutates the next epoch. The snapshot is cached and only
    /// rebuilt after a commit (or autocommitted write), so repeated
    /// calls between commits are a read-lock and an `Arc` clone.
    ///
    /// Returns `None` only when a transaction is active and no snapshot
    /// of the pre-transaction state was ever materialised — the caller
    /// falls back to the locked read path. While a transaction *is*
    /// active and a snapshot exists, it is the committed
    /// pre-transaction state: uncommitted writes are never visible
    /// through snapshots, which is exactly what gives concurrent
    /// readers snapshot isolation against the writer.
    pub fn snapshot(&self) -> Option<Arc<EngineSnapshot>> {
        {
            let inner = self.inner.read();
            inner.snapshot_requested.store(true, Ordering::Relaxed);
            if !inner.snapshot_stale {
                if let Some(s) = &inner.snapshot {
                    self.metrics.snapshot_hits.inc();
                    return Some(Arc::clone(s));
                }
            }
        }
        let mut inner = self.inner.write();
        inner.snapshot_requested.store(true, Ordering::Relaxed);
        if inner.txn_log.is_some() {
            // Mid-transaction the database holds uncommitted writes; the
            // cached snapshot (when present) is the committed
            // pre-transaction state, which is the correct answer.
            return inner.snapshot.as_ref().map(Arc::clone);
        }
        if inner.snapshot_stale || inner.snapshot.is_none() {
            inner.refresh_snapshot(&self.metrics);
        } else {
            self.metrics.snapshot_hits.inc();
        }
        Some(Arc::clone(inner.snapshot.as_ref().expect("just refreshed")))
    }

    /// Consumes the engine, returning the database. Pending group-commit
    /// windows are flushed by the log's destructor (best effort).
    pub fn into_db(self) -> Database {
        let Engine { inner, flusher, .. } = self;
        // Join the flusher first so no other owner of `inner` remains.
        drop(flusher);
        match Arc::try_unwrap(inner) {
            Ok(lock) => lock.into_inner().db,
            Err(arc) => arc.read().db.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, GeneralisationTopology, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog};

    fn engine() -> Engine {
        Engine::new(Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        ))
    }

    fn worksfor_row(n: &str, a: i64, d: &str, l: &str) -> Vec<(&'static str, Value)> {
        vec![
            ("name", Value::str(n)),
            ("age", Value::Int(a)),
            ("depname", Value::str(d)),
            ("location", Value::str(l)),
        ]
    }

    #[test]
    fn primed_snapshot_serves_reads_through_the_first_txn() {
        let eng = engine();
        let worksfor = eng.with_db(|db| db.schema().type_id("worksfor").unwrap());
        eng.begin().unwrap();
        eng.insert(worksfor, &worksfor_row("ann", 40, "sales", "amsterdam"))
            .unwrap();
        // A reader arriving mid-transaction — having never asked for a
        // snapshot before — still gets the committed (empty)
        // pre-transaction state, via the snapshot primed at
        // construction, instead of `None` and the locked fallback.
        let snap = eng
            .snapshot()
            .expect("construction-primed snapshot must survive the first begin");
        assert_eq!(snap.db().extension_cow(worksfor).len(), 0);
        eng.commit().unwrap();
        // After the commit, snapshots materialise the write.
        let snap = eng.snapshot().expect("committed state");
        assert_eq!(snap.db().extension_cow(worksfor).len(), 1);
    }

    #[test]
    fn write_only_workloads_drop_rather_than_refresh_the_snapshot() {
        let eng = engine();
        let worksfor = eng.with_db(|db| db.schema().type_id("worksfor").unwrap());
        let primed = eng.metrics().snapshot_rebuilds.get();
        // A begin/commit loop with no snapshot readers must not clone
        // the database per transaction to keep a snapshot nobody reads.
        for i in 0..10i64 {
            eng.begin().unwrap();
            eng.insert(
                worksfor,
                &worksfor_row(&format!("w{i}"), 20 + i, "sales", "amsterdam"),
            )
            .unwrap();
            eng.commit().unwrap();
        }
        assert_eq!(
            eng.metrics().snapshot_rebuilds.get(),
            primed,
            "begin must not rebuild snapshots for a write-only workload"
        );
        // The first actual reader rebuilds once and sees everything.
        let snap = eng.snapshot().expect("reader rebuilds on demand");
        assert_eq!(snap.db().extension_cow(worksfor).len(), 10);
        assert_eq!(eng.metrics().snapshot_rebuilds.get(), primed + 1);
    }

    #[test]
    fn insert_and_extension() {
        let eng = engine();
        let worksfor = eng.with_db(|db| db.schema().type_id("worksfor").unwrap());
        assert!(eng
            .insert(worksfor, &worksfor_row("ann", 40, "sales", "amsterdam"))
            .unwrap());
        assert_eq!(eng.extension(worksfor).len(), 1);
        // Duplicate insert reports not-fresh.
        assert!(!eng
            .insert(worksfor, &worksfor_row("ann", 40, "sales", "amsterdam"))
            .unwrap());
    }

    #[test]
    fn declared_fd_is_enforced() {
        let eng = engine();
        let (worksfor, fd) = eng.with_db(|db| {
            let s = db.schema();
            let gen = GeneralisationTopology::of_schema(s);
            let fd = Fd::new(
                &gen,
                s.type_id("employee").unwrap(),
                s.type_id("department").unwrap(),
                s.type_id("worksfor").unwrap(),
            )
            .unwrap();
            (s.type_id("worksfor").unwrap(), fd)
        });
        eng.declare_fd(fd).unwrap();
        eng.insert(worksfor, &worksfor_row("ann", 40, "sales", "amsterdam"))
            .unwrap();
        // Same employee projection (sales) in a second location: rejected.
        let err = eng
            .insert(worksfor, &worksfor_row("ann", 40, "sales", "utrecht"))
            .unwrap_err();
        assert!(matches!(err, EngineError::FdViolation(_)));
        // The violating tuple left no trace.
        assert_eq!(eng.extension(worksfor).len(), 1);
    }

    #[test]
    fn declaring_fd_on_dirty_data_fails() {
        let eng = engine();
        let (worksfor, fd) = eng.with_db(|db| {
            let s = db.schema();
            let gen = GeneralisationTopology::of_schema(s);
            (
                s.type_id("worksfor").unwrap(),
                Fd::new(
                    &gen,
                    s.type_id("employee").unwrap(),
                    s.type_id("department").unwrap(),
                    s.type_id("worksfor").unwrap(),
                )
                .unwrap(),
            )
        });
        eng.insert(worksfor, &worksfor_row("ann", 40, "sales", "amsterdam"))
            .unwrap();
        eng.insert(worksfor, &worksfor_row("ann", 40, "sales", "utrecht"))
            .unwrap();
        assert!(matches!(
            eng.declare_fd(fd),
            Err(EngineError::FdViolation(_))
        ));
    }

    #[test]
    fn index_lookup() {
        let eng = engine();
        let (employee, depname) = eng.with_db(|db| {
            let s = db.schema();
            (
                s.type_id("employee").unwrap(),
                s.attr_id("depname").unwrap(),
            )
        });
        eng.insert(
            employee,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
            ],
        )
        .unwrap();
        eng.create_index(employee, depname).unwrap();
        eng.insert(
            employee,
            &[
                ("name", Value::str("bob")),
                ("age", Value::Int(30)),
                ("depname", Value::str("sales")),
            ],
        )
        .unwrap();
        assert_eq!(eng.lookup(employee, depname, &Value::str("sales")).len(), 2);
        assert_eq!(
            eng.lookup(employee, depname, &Value::str("research")).len(),
            0
        );
        assert_eq!(eng.indexed_attr(employee), Some(depname));
        assert_eq!(
            eng.indexed_attr(eng.with_db(|db| db.schema().type_id("person").unwrap())),
            None
        );
    }

    #[test]
    fn multiple_index_kinds_coexist_and_stay_maintained() {
        let eng = engine();
        let (employee, name, age, depname) = eng.with_db(|db| {
            let s = db.schema();
            (
                s.type_id("employee").unwrap(),
                s.attr_id("name").unwrap(),
                s.attr_id("age").unwrap(),
                s.attr_id("depname").unwrap(),
            )
        });
        eng.create_index(employee, depname).unwrap();
        eng.create_ord_index(employee, age).unwrap();
        eng.create_composite_index(employee, &[depname, name])
            .unwrap();
        assert_eq!(
            eng.index_defs(employee),
            vec![
                (IndexKind::Hash, vec![depname]),
                (IndexKind::Ordered, vec![age]),
                (IndexKind::Composite, vec![depname, name]),
            ]
        );
        for (n, a, d) in [("ann", 40, "sales"), ("bob", 30, "research")] {
            eng.insert(
                employee,
                &[
                    ("name", Value::str(n)),
                    ("age", Value::Int(a)),
                    ("depname", Value::str(d)),
                ],
            )
            .unwrap();
        }
        // Point lookups resolve through whichever index matches the
        // attribute (hash for depname, ordered for age).
        assert_eq!(eng.lookup(employee, depname, &Value::str("sales")).len(), 1);
        assert_eq!(eng.lookup(employee, age, &Value::Int(30)).len(), 1);
        // Every index sees deletes too.
        let bob = eng.with_db(|db| {
            Instance::new(
                db.schema(),
                db.catalog(),
                employee,
                &[
                    ("name", Value::str("bob")),
                    ("age", Value::Int(30)),
                    ("depname", Value::str("research")),
                ],
            )
            .unwrap()
        });
        eng.delete(employee, &bob).unwrap();
        assert_eq!(eng.lookup(employee, age, &Value::Int(30)).len(), 0);
        eng.with_parts(|_, indexes| {
            for idx in &indexes[employee.index()] {
                assert_eq!(idx.len(), 1, "{:?} out of sync after delete", idx.kind());
            }
        });
        // Re-creating an existing definition rebuilds in place rather
        // than duplicating it.
        eng.create_ord_index(employee, age).unwrap();
        assert_eq!(eng.index_defs(employee).len(), 3);
    }

    #[test]
    fn bad_index_definitions_are_rejected() {
        let eng = engine();
        let (employee, budget, name) = eng.with_db(|db| {
            let s = db.schema();
            (
                s.type_id("employee").unwrap(),
                s.attr_id("budget").unwrap(),
                s.attr_id("name").unwrap(),
            )
        });
        // Foreign attribute: budget is not an employee attribute.
        assert!(matches!(
            eng.create_ord_index(employee, budget),
            Err(EngineError::BadIndexDefinition(_))
        ));
        // Empty and duplicated composite keys.
        assert!(matches!(
            eng.create_composite_index(employee, &[]),
            Err(EngineError::BadIndexDefinition(_))
        ));
        assert!(matches!(
            eng.create_composite_index(employee, &[name, name]),
            Err(EngineError::BadIndexDefinition(_))
        ));
        // Failed DDL installs nothing.
        assert!(eng.index_defs(employee).is_empty());
    }

    #[test]
    fn containment_propagations_maintain_generalisation_indexes() {
        // Regression: inserting a manager eagerly stores a projected
        // employee tuple; an index on employee must see it.
        let eng = engine();
        let (employee, manager, depname) = eng.with_db(|db| {
            let s = db.schema();
            (
                s.type_id("employee").unwrap(),
                s.type_id("manager").unwrap(),
                s.attr_id("depname").unwrap(),
            )
        });
        eng.create_index(employee, depname).unwrap();
        eng.insert(
            manager,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(100)),
            ],
        )
        .unwrap();
        // The projected employee tuple is reachable through the index…
        assert_eq!(eng.lookup(employee, depname, &Value::str("sales")).len(), 1);
        // …and deleting the manager (cascading) clears it again.
        let ann = eng.with_db(|db| {
            Instance::new(
                db.schema(),
                db.catalog(),
                manager,
                &[
                    ("name", Value::str("ann")),
                    ("age", Value::Int(40)),
                    ("depname", Value::str("sales")),
                    ("budget", Value::Int(100)),
                ],
            )
            .unwrap()
        });
        assert_eq!(eng.delete(manager, &ann).unwrap(), 1);
        assert_eq!(eng.lookup(employee, depname, &Value::str("sales")).len(), 1);
        let ann_emp = eng.with_db(|db| {
            Instance::new(
                db.schema(),
                db.catalog(),
                employee,
                &[
                    ("name", Value::str("ann")),
                    ("age", Value::Int(40)),
                    ("depname", Value::str("sales")),
                ],
            )
            .unwrap()
        });
        assert_eq!(eng.delete(employee, &ann_emp).unwrap(), 1);
        assert_eq!(eng.lookup(employee, depname, &Value::str("sales")).len(), 0);
    }

    #[test]
    fn rollback_restores_state() {
        let eng = engine();
        let manager = eng.with_db(|db| db.schema().type_id("manager").unwrap());
        let employee = eng.with_db(|db| db.schema().type_id("employee").unwrap());
        eng.begin().unwrap();
        eng.insert(
            manager,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(100)),
            ],
        )
        .unwrap();
        assert_eq!(eng.extension(employee).len(), 1);
        eng.rollback().unwrap();
        assert_eq!(eng.extension(manager).len(), 0);
        assert_eq!(eng.extension(employee).len(), 0, "propagations undone too");
        eng.with_db(|db| assert_eq!(db.total_stored(), 0));
    }

    #[test]
    fn rollback_restores_deletes() {
        let eng = engine();
        let s = eng.with_db(|db| db.schema().clone());
        let manager = s.type_id("manager").unwrap();
        let person = s.type_id("person").unwrap();
        eng.insert(
            manager,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(100)),
            ],
        )
        .unwrap();
        let ann = eng.with_db(|db| {
            Instance::new(
                db.schema(),
                db.catalog(),
                person,
                &[("name", Value::str("ann")), ("age", Value::Int(40))],
            )
            .unwrap()
        });
        eng.begin().unwrap();
        assert_eq!(eng.delete(person, &ann).unwrap(), 3);
        eng.with_db(|db| assert_eq!(db.total_stored(), 0));
        eng.rollback().unwrap();
        eng.with_db(|db| assert_eq!(db.total_stored(), 3));
        assert_eq!(eng.extension(manager).len(), 1);
    }

    #[test]
    fn commit_finalises() {
        let eng = engine();
        let person = eng.with_db(|db| db.schema().type_id("person").unwrap());
        eng.begin().unwrap();
        eng.insert(person, &[("name", Value::str("x")), ("age", Value::Int(1))])
            .unwrap();
        eng.commit().unwrap();
        assert!(eng.rollback().is_err(), "nothing to roll back after commit");
        assert_eq!(eng.extension(person).len(), 1);
    }

    #[test]
    fn no_transaction_errors() {
        let eng = engine();
        assert_eq!(eng.commit(), Err(EngineError::NoTransaction));
        assert_eq!(eng.rollback(), Err(EngineError::NoTransaction));
    }

    #[test]
    fn nested_begin_is_rejected_not_flattened() {
        let eng = engine();
        let person = eng.with_db(|db| db.schema().type_id("person").unwrap());
        eng.begin().unwrap();
        eng.insert(person, &[("name", Value::str("x")), ("age", Value::Int(1))])
            .unwrap();
        // A second begin must not silently join the first transaction.
        assert_eq!(eng.begin(), Err(EngineError::TransactionActive));
        // The original transaction is unaffected by the failed begin.
        eng.rollback().unwrap();
        assert_eq!(eng.extension(person).len(), 0);
        // After it ends, begin works again.
        eng.begin().unwrap();
        eng.commit().unwrap();
    }

    #[test]
    fn statistics_epoch_tracks_mutations() {
        let eng = engine();
        let person = eng.with_db(|db| db.schema().type_id("person").unwrap());
        let e0 = eng.statistics_epoch();
        // Reading statistics does not advance the epoch.
        let _ = eng.statistics();
        assert_eq!(eng.statistics_epoch(), e0);
        eng.insert(person, &[("name", Value::str("x")), ("age", Value::Int(1))])
            .unwrap();
        let e1 = eng.statistics_epoch();
        assert!(e1 > e0);
        // A failed (duplicate) insert that changes nothing still reports
        // cleanly; only real mutations need to advance the epoch, but
        // duplicates go through the same path harmlessly.
        let ann = eng.with_db(|db| {
            Instance::new(
                db.schema(),
                db.catalog(),
                person,
                &[("name", Value::str("x")), ("age", Value::Int(1))],
            )
            .unwrap()
        });
        eng.delete(person, &ann).unwrap();
        assert!(eng.statistics_epoch() > e1);
    }

    #[test]
    fn plan_cache_hits_misses_and_epoch_invalidation() {
        let eng = engine();
        let fp = 0xFEED_u64;
        let epoch = eng.statistics_epoch();
        assert!(eng.plan_cache_lookup(fp, epoch).is_none());
        eng.plan_cache_store(fp, epoch, Arc::new(42_u32));
        let cached = eng.plan_cache_lookup(fp, epoch).expect("cached");
        assert_eq!(cached.downcast_ref::<u32>(), Some(&42));
        assert_eq!(eng.plan_cache_counters(), (1, 1));
        // A mutation bumps the epoch; the old entry is unreachable.
        let person = eng.with_db(|db| db.schema().type_id("person").unwrap());
        eng.insert(person, &[("name", Value::str("x")), ("age", Value::Int(1))])
            .unwrap();
        let epoch2 = eng.statistics_epoch();
        assert!(eng.plan_cache_lookup(fp, epoch2).is_none());
        assert_eq!(eng.plan_cache_counters(), (1, 2));
        // A plan stored under a superseded epoch never reaches current
        // readers.
        eng.plan_cache_store(fp, epoch, Arc::new(7_u32));
        assert!(eng.plan_cache_lookup(fp, epoch2).is_none());
        // Rolling forward: a store at the current epoch clears the old
        // generation and is immediately visible…
        eng.plan_cache_store(fp, epoch2, Arc::new(9_u32));
        let fresh = eng.plan_cache_lookup(fp, epoch2).expect("current plan");
        assert_eq!(fresh.downcast_ref::<u32>(), Some(&9));
        // …and a *lagging* reader using the old epoch misses without
        // disturbing the current generation (no backwards roll).
        assert!(eng.plan_cache_lookup(fp, epoch).is_none());
        assert!(
            eng.plan_cache_lookup(fp, epoch2).is_some(),
            "a stale-epoch lookup must not clear current plans"
        );
    }
}
