//! The storage engine: a concurrent, transaction-capable wrapper around
//! [`toposem_extension::Database`] that *enforces* the model — containment
//! by maintained inserts/deletes, declared FDs rejected on violation, and
//! domain checks at the boundary.
//!
//! The engine is the piece the paper never built; it exists to prove the
//! model is operational, not just descriptive.

use std::sync::Arc;

use parking_lot::RwLock;
use toposem_core::TypeId;
use toposem_extension::{Database, Instance, InstanceError, Value};
use toposem_fd::{check_fd, Fd};

use crate::index::HashIndex;
use crate::stats::Statistics;

/// Errors surfaced by engine operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The instance failed schema/domain validation.
    Invalid(InstanceError),
    /// The insert would violate a declared FD; the offending dependency is
    /// returned.
    FdViolation(Fd),
    /// No active transaction to commit/rollback.
    NoTransaction,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Invalid(e) => write!(f, "invalid instance: {e}"),
            EngineError::FdViolation(fd) => write!(f, "functional dependency violated: {fd:?}"),
            EngineError::NoTransaction => write!(f, "no active transaction"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<InstanceError> for EngineError {
    fn from(e: InstanceError) -> Self {
        EngineError::Invalid(e)
    }
}

/// One undo-log entry.
#[derive(Clone, Debug)]
enum Undo {
    /// Reverse of an insert: remove exactly these freshly-stored pairs
    /// (the instance plus its eager containment propagations).
    UnInsert(Vec<(TypeId, Instance)>),
    /// Reverse of a delete: restore these (type, tuple) pairs.
    Restore(Vec<(TypeId, Instance)>),
}

struct Inner {
    db: Database,
    declared_fds: Vec<Fd>,
    indexes: Vec<Option<HashIndex>>,
    txn_log: Option<Vec<Undo>>,
    /// Cached planner statistics; dropped on any mutation.
    stats: Option<Arc<Statistics>>,
}

/// The engine. Interior-mutable and `Sync`; all operations take `&self`.
pub struct Engine {
    inner: RwLock<Inner>,
}

impl Engine {
    /// Wraps a database.
    pub fn new(db: Database) -> Self {
        let n = db.schema().type_count();
        Engine {
            inner: RwLock::new(Inner {
                db,
                declared_fds: Vec::new(),
                indexes: vec![None; n],
                txn_log: None,
                stats: None,
            }),
        }
    }

    /// Declares an FD the engine must keep satisfied. Returns `Err` with
    /// the FD when the *current* data already violates it.
    pub fn declare_fd(&self, fd: Fd) -> Result<(), EngineError> {
        let mut inner = self.inner.write();
        if !check_fd(&inner.db, &fd).holds() {
            return Err(EngineError::FdViolation(fd));
        }
        inner.declared_fds.push(fd);
        Ok(())
    }

    /// Builds a hash index on one attribute of `e`'s stored relation.
    pub fn create_index(&self, e: TypeId, attr: toposem_core::AttrId) {
        let mut inner = self.inner.write();
        let mut idx = HashIndex::new(attr);
        for t in inner.db.stored(e).iter() {
            idx.insert(t);
        }
        inner.indexes[e.index()] = Some(idx);
    }

    /// Point lookup through the index of `e` (falls back to a scan when no
    /// index exists).
    pub fn lookup(&self, e: TypeId, attr: toposem_core::AttrId, v: &Value) -> Vec<Instance> {
        let inner = self.inner.read();
        match &inner.indexes[e.index()] {
            Some(idx) if idx.attr() == attr => idx.lookup(v).to_vec(),
            _ => inner
                .db
                .stored(e)
                .iter()
                .filter(|t| t.get(attr) == Some(v))
                .cloned()
                .collect(),
        }
    }

    /// Inserts named fields as an instance of `e`, enforcing domains,
    /// containment (via the database policy), and declared FDs. The FD
    /// check is transactional: a violating insert leaves no trace.
    pub fn insert(&self, e: TypeId, fields: &[(&str, Value)]) -> Result<bool, EngineError> {
        let mut inner = self.inner.write();
        let t = Instance::new(inner.db.schema(), inner.db.catalog(), e, fields)?;
        let added = inner.db.insert_tracked(e, t.clone());
        if added.is_empty() {
            return Ok(false);
        }
        // Validate FDs; remove exactly what was added if any breaks.
        let fds = inner.declared_fds.clone();
        for fd in &fds {
            if !check_fd(&inner.db, fd).holds() {
                for (s, u) in &added {
                    inner.db.stored_remove(*s, u);
                }
                return Err(EngineError::FdViolation(*fd));
            }
        }
        // Maintain every affected index: eager containment stores projected
        // tuples in generalisation relations too, and their indexes must
        // see them (delete/rollback already walk the full pair list).
        for (s, u) in &added {
            if let Some(idx) = &mut inner.indexes[s.index()] {
                idx.insert(u);
            }
        }
        if let Some(log) = &mut inner.txn_log {
            log.push(Undo::UnInsert(added));
        }
        inner.stats = None;
        Ok(true)
    }

    /// Deletes an instance (cascading down the ISA hierarchy); returns the
    /// number of tuples removed.
    pub fn delete(&self, e: TypeId, t: &Instance) -> usize {
        let mut inner = self.inner.write();
        // Capture what a cascade will remove, for undo and index upkeep.
        let schema = inner.db.schema().clone();
        let victims: Vec<(TypeId, Instance)> = schema
            .type_ids()
            .flat_map(|s| {
                let spec = inner.db.intension().specialisation();
                if s != e && !spec.is_specialisation(s, e) {
                    return Vec::new();
                }
                let ae = schema.attrs_of(e);
                inner
                    .db
                    .stored(s)
                    .iter()
                    .filter(|u| &u.project(ae) == t)
                    .map(|u| (s, u.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let removed = inner.db.delete(e, t);
        for (s, u) in &victims {
            if let Some(idx) = &mut inner.indexes[s.index()] {
                idx.remove(u);
            }
        }
        if removed > 0 {
            if let Some(log) = &mut inner.txn_log {
                log.push(Undo::Restore(victims));
            }
            inner.stats = None;
        }
        removed
    }

    /// Begins a transaction (single-writer; nested begins are flattened).
    pub fn begin(&self) {
        let mut inner = self.inner.write();
        if inner.txn_log.is_none() {
            inner.txn_log = Some(Vec::new());
        }
    }

    /// Commits the active transaction.
    pub fn commit(&self) -> Result<(), EngineError> {
        let mut inner = self.inner.write();
        inner
            .txn_log
            .take()
            .map(|_| ())
            .ok_or(EngineError::NoTransaction)
    }

    /// Rolls the active transaction back, undoing its operations in
    /// reverse order.
    pub fn rollback(&self) -> Result<(), EngineError> {
        let mut inner = self.inner.write();
        let log = inner.txn_log.take().ok_or(EngineError::NoTransaction)?;
        inner.stats = None;
        for entry in log.into_iter().rev() {
            match entry {
                Undo::UnInsert(added) => {
                    for (s, u) in added {
                        inner.db.stored_remove(s, &u);
                        if let Some(idx) = &mut inner.indexes[s.index()] {
                            idx.remove(&u);
                        }
                    }
                }
                Undo::Restore(victims) => {
                    for (s, u) in victims {
                        inner.db.insert(s, u.clone());
                        if let Some(idx) = &mut inner.indexes[s.index()] {
                            idx.insert(&u);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Reads the semantic extension of `e`.
    pub fn extension(&self, e: TypeId) -> toposem_extension::Relation {
        self.inner.read().db.extension(e)
    }

    /// Runs `f` with read access to the underlying database.
    pub fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.inner.read().db)
    }

    /// Runs `f` with read access to the database *and* the index array
    /// under one lock acquisition — the planner's executor uses this so a
    /// whole query sees a consistent snapshot.
    pub fn with_parts<R>(&self, f: impl FnOnce(&Database, &[Option<HashIndex>]) -> R) -> R {
        let inner = self.inner.read();
        f(&inner.db, &inner.indexes)
    }

    /// The attribute indexed for `e`, when an index exists.
    pub fn indexed_attr(&self, e: TypeId) -> Option<toposem_core::AttrId> {
        self.inner.read().indexes[e.index()]
            .as_ref()
            .map(HashIndex::attr)
    }

    /// Current statistics, collected lazily and cached until the next
    /// mutation (insert, delete, or rollback).
    pub fn statistics(&self) -> Arc<Statistics> {
        if let Some(s) = &self.inner.read().stats {
            return Arc::clone(s);
        }
        let mut inner = self.inner.write();
        if inner.stats.is_none() {
            let s = Arc::new(Statistics::collect(&inner.db, &inner.indexes));
            inner.stats = Some(s);
        }
        Arc::clone(inner.stats.as_ref().expect("just filled"))
    }

    /// Consumes the engine, returning the database.
    pub fn into_db(self) -> Database {
        self.inner.into_inner().db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, GeneralisationTopology, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog};

    fn engine() -> Engine {
        Engine::new(Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        ))
    }

    fn worksfor_row(n: &str, a: i64, d: &str, l: &str) -> Vec<(&'static str, Value)> {
        vec![
            ("name", Value::str(n)),
            ("age", Value::Int(a)),
            ("depname", Value::str(d)),
            ("location", Value::str(l)),
        ]
    }

    #[test]
    fn insert_and_extension() {
        let eng = engine();
        let worksfor = eng.with_db(|db| db.schema().type_id("worksfor").unwrap());
        assert!(eng
            .insert(worksfor, &worksfor_row("ann", 40, "sales", "amsterdam"))
            .unwrap());
        assert_eq!(eng.extension(worksfor).len(), 1);
        // Duplicate insert reports not-fresh.
        assert!(!eng
            .insert(worksfor, &worksfor_row("ann", 40, "sales", "amsterdam"))
            .unwrap());
    }

    #[test]
    fn declared_fd_is_enforced() {
        let eng = engine();
        let (worksfor, fd) = eng.with_db(|db| {
            let s = db.schema();
            let gen = GeneralisationTopology::of_schema(s);
            let fd = Fd::new(
                &gen,
                s.type_id("employee").unwrap(),
                s.type_id("department").unwrap(),
                s.type_id("worksfor").unwrap(),
            )
            .unwrap();
            (s.type_id("worksfor").unwrap(), fd)
        });
        eng.declare_fd(fd).unwrap();
        eng.insert(worksfor, &worksfor_row("ann", 40, "sales", "amsterdam"))
            .unwrap();
        // Same employee projection (sales) in a second location: rejected.
        let err = eng
            .insert(worksfor, &worksfor_row("ann", 40, "sales", "utrecht"))
            .unwrap_err();
        assert!(matches!(err, EngineError::FdViolation(_)));
        // The violating tuple left no trace.
        assert_eq!(eng.extension(worksfor).len(), 1);
    }

    #[test]
    fn declaring_fd_on_dirty_data_fails() {
        let eng = engine();
        let (worksfor, fd) = eng.with_db(|db| {
            let s = db.schema();
            let gen = GeneralisationTopology::of_schema(s);
            (
                s.type_id("worksfor").unwrap(),
                Fd::new(
                    &gen,
                    s.type_id("employee").unwrap(),
                    s.type_id("department").unwrap(),
                    s.type_id("worksfor").unwrap(),
                )
                .unwrap(),
            )
        });
        eng.insert(worksfor, &worksfor_row("ann", 40, "sales", "amsterdam"))
            .unwrap();
        eng.insert(worksfor, &worksfor_row("ann", 40, "sales", "utrecht"))
            .unwrap();
        assert!(matches!(
            eng.declare_fd(fd),
            Err(EngineError::FdViolation(_))
        ));
    }

    #[test]
    fn index_lookup() {
        let eng = engine();
        let (employee, depname) = eng.with_db(|db| {
            let s = db.schema();
            (
                s.type_id("employee").unwrap(),
                s.attr_id("depname").unwrap(),
            )
        });
        eng.insert(
            employee,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
            ],
        )
        .unwrap();
        eng.create_index(employee, depname);
        eng.insert(
            employee,
            &[
                ("name", Value::str("bob")),
                ("age", Value::Int(30)),
                ("depname", Value::str("sales")),
            ],
        )
        .unwrap();
        assert_eq!(eng.lookup(employee, depname, &Value::str("sales")).len(), 2);
        assert_eq!(
            eng.lookup(employee, depname, &Value::str("research")).len(),
            0
        );
        assert_eq!(eng.indexed_attr(employee), Some(depname));
        assert_eq!(
            eng.indexed_attr(eng.with_db(|db| db.schema().type_id("person").unwrap())),
            None
        );
    }

    #[test]
    fn containment_propagations_maintain_generalisation_indexes() {
        // Regression: inserting a manager eagerly stores a projected
        // employee tuple; an index on employee must see it.
        let eng = engine();
        let (employee, manager, depname) = eng.with_db(|db| {
            let s = db.schema();
            (
                s.type_id("employee").unwrap(),
                s.type_id("manager").unwrap(),
                s.attr_id("depname").unwrap(),
            )
        });
        eng.create_index(employee, depname);
        eng.insert(
            manager,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(100)),
            ],
        )
        .unwrap();
        // The projected employee tuple is reachable through the index…
        assert_eq!(eng.lookup(employee, depname, &Value::str("sales")).len(), 1);
        // …and deleting the manager (cascading) clears it again.
        let ann = eng.with_db(|db| {
            Instance::new(
                db.schema(),
                db.catalog(),
                manager,
                &[
                    ("name", Value::str("ann")),
                    ("age", Value::Int(40)),
                    ("depname", Value::str("sales")),
                    ("budget", Value::Int(100)),
                ],
            )
            .unwrap()
        });
        assert_eq!(eng.delete(manager, &ann), 1);
        assert_eq!(eng.lookup(employee, depname, &Value::str("sales")).len(), 1);
        let ann_emp = eng.with_db(|db| {
            Instance::new(
                db.schema(),
                db.catalog(),
                employee,
                &[
                    ("name", Value::str("ann")),
                    ("age", Value::Int(40)),
                    ("depname", Value::str("sales")),
                ],
            )
            .unwrap()
        });
        assert_eq!(eng.delete(employee, &ann_emp), 1);
        assert_eq!(eng.lookup(employee, depname, &Value::str("sales")).len(), 0);
    }

    #[test]
    fn rollback_restores_state() {
        let eng = engine();
        let manager = eng.with_db(|db| db.schema().type_id("manager").unwrap());
        let employee = eng.with_db(|db| db.schema().type_id("employee").unwrap());
        eng.begin();
        eng.insert(
            manager,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(100)),
            ],
        )
        .unwrap();
        assert_eq!(eng.extension(employee).len(), 1);
        eng.rollback().unwrap();
        assert_eq!(eng.extension(manager).len(), 0);
        assert_eq!(eng.extension(employee).len(), 0, "propagations undone too");
        eng.with_db(|db| assert_eq!(db.total_stored(), 0));
    }

    #[test]
    fn rollback_restores_deletes() {
        let eng = engine();
        let s = eng.with_db(|db| db.schema().clone());
        let manager = s.type_id("manager").unwrap();
        let person = s.type_id("person").unwrap();
        eng.insert(
            manager,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(100)),
            ],
        )
        .unwrap();
        let ann = eng.with_db(|db| {
            Instance::new(
                db.schema(),
                db.catalog(),
                person,
                &[("name", Value::str("ann")), ("age", Value::Int(40))],
            )
            .unwrap()
        });
        eng.begin();
        assert_eq!(eng.delete(person, &ann), 3);
        eng.with_db(|db| assert_eq!(db.total_stored(), 0));
        eng.rollback().unwrap();
        eng.with_db(|db| assert_eq!(db.total_stored(), 3));
        assert_eq!(eng.extension(manager).len(), 1);
    }

    #[test]
    fn commit_finalises() {
        let eng = engine();
        let person = eng.with_db(|db| db.schema().type_id("person").unwrap());
        eng.begin();
        eng.insert(person, &[("name", Value::str("x")), ("age", Value::Int(1))])
            .unwrap();
        eng.commit().unwrap();
        assert!(eng.rollback().is_err(), "nothing to roll back after commit");
        assert_eq!(eng.extension(person).len(), 1);
    }

    #[test]
    fn no_transaction_errors() {
        let eng = engine();
        assert_eq!(eng.commit(), Err(EngineError::NoTransaction));
        assert_eq!(eng.rollback(), Err(EngineError::NoTransaction));
    }
}
