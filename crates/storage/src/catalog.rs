//! Physical catalog: subbase-only storage and derivation of constructed
//! types.
//!
//! §3.1: the chosen subbase `R_T` tells the designer "which entities are
//! really essential and which entities should be considered derivable".
//! The catalog takes that literally: with
//! [`StoragePlan::SubbaseOnly`], only the primitive entity types get
//! physical relations; constructed types are *derived on demand* from the
//! join of their contributor extensions (legitimate exactly because the
//! Extension Axiom says the contributors fully determine them). This is
//! the ablation benchmarked in `bench_r1_subbase`.

use toposem_core::TypeId;
use toposem_extension::{multi_join, Database, Relation};

/// Which entity types get physical storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoragePlan {
    /// Every entity type is materialised (the extension crate's default).
    MaterialiseAll,
    /// Only the subbase types are materialised; constructed types are
    /// derived from contributors when read.
    SubbaseOnly,
}

/// The physical catalog: the plan plus the derivation logic.
#[derive(Clone, Debug)]
pub struct Catalog {
    plan: StoragePlan,
}

impl Catalog {
    /// Catalog with the given plan.
    pub fn new(plan: StoragePlan) -> Self {
        Catalog { plan }
    }

    /// The active plan.
    pub fn plan(&self) -> StoragePlan {
        self.plan
    }

    /// Is `e` physically stored under this plan?
    pub fn is_stored(&self, db: &Database, e: TypeId) -> bool {
        match self.plan {
            StoragePlan::MaterialiseAll => true,
            StoragePlan::SubbaseOnly => db.intension().is_primitive(e),
        }
    }

    /// Reads the extension of `e`: directly when stored, otherwise derived
    /// as the join of its contributors' extensions restricted to tuples
    /// admissible for `e` (constructed types add no attributes beyond
    /// their contributors, so the join *is* the derivation).
    pub fn read(&self, db: &Database, e: TypeId) -> Relation {
        if self.is_stored(db, e) {
            return db.extension(e);
        }
        let contributors = db.intension().contributors_of(e);
        if contributors.is_empty() {
            return db.extension(e);
        }
        let universe = db.schema().attr_count();
        let parts: Vec<Relation> = contributors.iter().map(|&c| self.read(db, c)).collect();
        let refs: Vec<&Relation> = parts.iter().collect();
        let joined = multi_join(universe, &refs);
        joined.project(db.schema().attrs_of(e))
    }

    /// Bytes-free storage metric: how many tuples are physically held
    /// under the plan.
    pub fn stored_tuples(&self, db: &Database) -> usize {
        db.schema()
            .type_ids()
            .filter(|&e| self.is_stored(db, e))
            .map(|e| db.stored(e).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog, Value};

    fn loaded_db() -> Database {
        let mut d = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = d.schema().clone();
        for (n, a, dep) in [("ann", 40, "sales"), ("bob", 30, "research")] {
            d.insert_fields(
                s.type_id("employee").unwrap(),
                &[
                    ("name", Value::str(n)),
                    ("age", Value::Int(a)),
                    ("depname", Value::str(dep)),
                ],
            )
            .unwrap();
        }
        for (dep, loc) in [("sales", "amsterdam"), ("research", "utrecht")] {
            d.insert_fields(
                s.type_id("department").unwrap(),
                &[("depname", Value::str(dep)), ("location", Value::str(loc))],
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn subbase_only_derives_worksfor() {
        let db = loaded_db();
        let s = db.schema();
        let worksfor = s.type_id("worksfor").unwrap();
        let catalog = Catalog::new(StoragePlan::SubbaseOnly);
        assert!(!catalog.is_stored(&db, worksfor));
        let derived = catalog.read(&db, worksfor);
        // ann→sales, bob→research.
        assert_eq!(derived.len(), 2);
        // Derivation matches what eager materialisation would hold if the
        // facts had been asserted directly.
        for t in derived.iter() {
            assert_eq!(t.width(), 4);
        }
    }

    #[test]
    fn materialise_all_reads_stored_relations() {
        let db = loaded_db();
        let s = db.schema();
        let catalog = Catalog::new(StoragePlan::MaterialiseAll);
        for e in s.type_ids() {
            assert!(catalog.is_stored(&db, e));
            assert_eq!(catalog.read(&db, e), db.extension(e));
        }
    }

    #[test]
    fn subbase_plan_stores_fewer_tuples() {
        let db = loaded_db();
        let all = Catalog::new(StoragePlan::MaterialiseAll);
        let sub = Catalog::new(StoragePlan::SubbaseOnly);
        assert!(sub.stored_tuples(&db) <= all.stored_tuples(&db));
    }

    #[test]
    fn primitive_types_always_read_directly() {
        let db = loaded_db();
        let s = db.schema();
        let catalog = Catalog::new(StoragePlan::SubbaseOnly);
        let employee = s.type_id("employee").unwrap();
        assert!(catalog.is_stored(&db, employee));
        assert_eq!(catalog.read(&db, employee), db.extension(employee));
    }
}
