//! Cross-crate integration tests: full pipelines from schema design
//! through the engine, exercising the public facade API exactly as a
//! downstream user would.

use toposem::constraints::{check_constraint, check_jd, contributor_jd, DomainConstraint, Mvd};
use toposem::core::{employee_schema, Intension, ViewType};
use toposem::design::{employee_er, import, random_workload, ExtensionParams, SchemaParams};
use toposem::extension::{
    check_all, evolve, verify_corollary, ContainmentPolicy, Database, DomainCatalog, DomainSpec,
    EvolutionOp, Instance, Value,
};
use toposem::fd::{check_fd, derivable_globally, satisfied_fd_set, verify_fd_corollary, Fd};
use toposem::sheaf::ExtensionPresheaf;
use toposem::storage::{
    apply_update, load, materialise, save, Catalog, Engine, Query, StoragePlan, ViewUpdate,
};
use toposem::ur::{UniversalRelation, Window};

fn loaded_employee_db(policy: ContainmentPolicy) -> Database {
    let mut db = Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        policy,
    );
    let s = db.schema().clone();
    for (n, a, d, b) in [("ann", 40, "sales", 100), ("bob", 30, "research", 200)] {
        db.insert_fields(
            s.type_id("manager").unwrap(),
            &[
                ("name", Value::str(n)),
                ("age", Value::Int(a)),
                ("depname", Value::str(d)),
                ("budget", Value::Int(b)),
            ],
        )
        .unwrap();
    }
    for (d, l) in [("sales", "amsterdam"), ("research", "utrecht")] {
        db.insert_fields(
            s.type_id("department").unwrap(),
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
    db.insert_fields(
        s.type_id("worksfor").unwrap(),
        &[
            ("name", Value::str("ann")),
            ("age", Value::Int(40)),
            ("depname", Value::str("sales")),
            ("location", Value::str("amsterdam")),
        ],
    )
    .unwrap();
    db
}

/// The complete paper pipeline in one test: intension analysis, extension
/// maintenance, all three corollaries/axiom checks, and the FD layer.
#[test]
fn full_paper_pipeline() {
    let db = loaded_employee_db(ContainmentPolicy::Eager);
    let s = db.schema();

    // Intension results (R1, R3).
    let constructed: Vec<&str> = db
        .intension()
        .constructed_types()
        .iter()
        .map(|&e| s.type_name(e))
        .collect();
    assert_eq!(constructed, vec!["worksfor"]);
    let worksfor = s.type_id("worksfor").unwrap();
    let co: Vec<&str> = db
        .intension()
        .contributors_of(worksfor)
        .iter()
        .map(|&c| s.type_name(c))
        .collect();
    assert_eq!(co, vec!["employee", "department"]);

    // Containment + extension corollary (R4).
    assert!(db.verify_containment().is_empty());
    assert!(verify_corollary(&db).all_hold());

    // Extension Axiom everywhere (R5).
    assert!(check_all(&db).iter().all(|r| r.holds()));

    // Join dependency over contributors for the loaded worksfor (one
    // employee per department → lossless).
    let jd = contributor_jd(&db, worksfor);
    assert!(check_jd(&db, &jd).holds);

    // FD layer (F4, R6, R7).
    let gen = db.intension().generalisation();
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let fd = Fd::new(gen, employee, department, worksfor).unwrap();
    assert!(check_fd(&db, &fd).holds());
    assert!(verify_fd_corollary(&db).all_hold());
    let person = s.type_id("person").unwrap();
    let base = Fd::new(gen, person, employee, employee).unwrap();
    let goal = Fd::new(gen, person, employee, s.type_id("manager").unwrap()).unwrap();
    if check_fd(&db, &base).holds() {
        assert!(derivable_globally(db.intension(), &[base], &goal));
    }

    // Satisfied-FD sets include the nucleus everywhere.
    for f in s.type_ids() {
        let sat = satisfied_fd_set(&db, f);
        let nuc = toposem::fd::nucleus(gen, f);
        assert!(nuc.is_subset(&sat));
    }
}

/// Engine + views + snapshot: operational roundtrip.
#[test]
fn engine_view_snapshot_roundtrip() {
    let db = loaded_employee_db(ContainmentPolicy::Eager);
    let schema = db.schema().clone();
    let engine = Engine::new(db);
    let employee = schema.type_id("employee").unwrap();
    let department = schema.type_id("department").unwrap();

    let view = ViewType::new(&schema, "staffing", &[employee, department]).unwrap();
    let m = materialise(&engine, &view);
    assert_eq!(m.part(employee).unwrap().len(), 2);

    // Update through the view, uniquely.
    apply_update(
        &engine,
        &view,
        ViewUpdate::Insert {
            target: employee,
            fields: &[
                ("name", Value::str("carol")),
                ("age", Value::Int(25)),
                ("depname", Value::str("sales")),
            ],
        },
    )
    .unwrap();
    assert_eq!(materialise(&engine, &view).part(employee).unwrap().len(), 3);

    // Snapshot the engine state and reload.
    let mut buf = Vec::new();
    engine.with_db(|db| save(db, &mut buf)).unwrap();
    let restored = load(&buf[..]).unwrap();
    assert_eq!(restored.extension(employee).len(), 3);
    assert!(restored.verify_containment().is_empty());
}

/// Subbase-only physical storage derives constructed types correctly on a
/// database loaded through the engine.
#[test]
fn subbase_only_storage_derives_worksfor() {
    let db = loaded_employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    let worksfor = s.type_id("worksfor").unwrap();
    let catalog = Catalog::new(StoragePlan::SubbaseOnly);
    let derived = catalog.read(&db, worksfor);
    // ann→sales, bob→research from the joins of employees and departments.
    assert_eq!(derived.len(), 2);
    // Everything the (materialised) worksfor relation holds is derivable.
    assert!(db.extension(worksfor).is_subset(&derived));
}

/// The topology-sanctioned query algebra agrees with the stored data and
/// types its results.
#[test]
fn sanctioned_queries() {
    let db = loaded_employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    let q = Query::scan(s.type_id("employee").unwrap())
        .join(Query::scan(s.type_id("department").unwrap()));
    let (t, rel) = q.execute(&db).unwrap();
    assert_eq!(s.type_name(t), "worksfor");
    assert_eq!(rel.len(), 2);
}

/// EAR import → engine: the imported schema is operational end to end.
#[test]
fn er_import_to_engine() {
    let imported = import(&employee_er()).unwrap();
    let schema = imported.schema.clone();
    let engine = Engine::new(Database::new(
        Intension::analyse(schema.clone()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ));
    for fd in &imported.fds {
        engine.declare_fd(*fd).unwrap();
    }
    let worksfor = schema.type_id("worksfor").unwrap();
    engine
        .insert(
            worksfor,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("location", Value::str("amsterdam")),
            ],
        )
        .unwrap();
    // The same employee projection (name, age, depname) with a second
    // location: violates fd(employee, department, worksfor) — with the
    // shared `depname` attribute, the 1:n constraint effectively pins the
    // department tuple per depname.
    assert!(engine
        .insert(
            worksfor,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("location", Value::str("utrecht")),
            ],
        )
        .is_err());
}

/// Schema evolution preserves the engine-visible data it claims to.
#[test]
fn evolution_preserves_claimed_data() {
    let db = loaded_employee_db(ContainmentPolicy::OnDemand);
    let migration = evolve(
        &db,
        &EvolutionOp::AddAttribute {
            type_name: "person".into(),
            attr: "email".into(),
            domain: "emails".into(),
            default: Value::str("unknown@example.org"),
        },
    )
    .unwrap();
    assert!(migration.continuous_embedding);
    assert_eq!(migration.dropped_tuples, 0);
    let s2 = migration.database.schema();
    let mgr = s2.type_id("manager").unwrap();
    let ext = migration.database.extension(mgr);
    assert_eq!(ext.len(), 2);
    let email = s2.attr_id("email").unwrap();
    for t in ext.iter() {
        assert_eq!(t.get(email), Some(&Value::str("unknown@example.org")));
    }
    assert!(migration.database.verify_containment().is_empty());
}

/// The extension presheaf glues consistently on engine-loaded data.
#[test]
fn presheaf_sections_on_loaded_data() {
    let db = loaded_employee_db(ContainmentPolicy::Eager);
    let p = ExtensionPresheaf::new(&db);
    let s = db.schema();
    let spec = db.intension().specialisation();
    let employee = s.type_id("employee").unwrap();
    let open = spec.s_set(employee).clone();
    // Sections over S_employee: only ann reaches every level.
    let sections = p.sections_over(&open);
    assert_eq!(sections.len(), 1);
    assert!(p.locality_holds(&open, std::slice::from_ref(&open)));
    assert_eq!(p.gluing_failures(&open, std::slice::from_ref(&open)), 0);
}

/// MVD and domain-constraint checks work through the facade.
#[test]
fn constraints_through_facade() {
    let db = loaded_employee_db(ContainmentPolicy::Eager);
    let s = db.schema();
    let mvd = Mvd {
        lhs: s.type_id("person").unwrap(),
        rhs: s.type_id("employee").unwrap(),
        context: s.type_id("worksfor").unwrap(),
    };
    let c = DomainConstraint::ProductShape(mvd);
    assert!(check_constraint(&db, &c).is_ok());
    let range = DomainConstraint::AttributeRange {
        entity: s.type_id("manager").unwrap(),
        attr: s.attr_id("budget").unwrap(),
        allowed: DomainSpec::IntRange(0, 1_000_000),
    };
    assert!(check_constraint(&db, &range).is_ok());
}

/// The UR baseline and toposem answer the same workload with different
/// ambiguity: 1 translation vs 2^k − 1.
#[test]
fn ur_vs_toposem_ambiguity() {
    let schema = employee_schema();
    let mut ur = UniversalRelation::new(&schema);
    let w = Window::new(&schema, &["name", "age", "depname"]).unwrap();
    let row = vec![
        (schema.attr_id("name").unwrap(), Value::str("ann")),
        (schema.attr_id("age").unwrap(), Value::Int(40)),
        (schema.attr_id("depname").unwrap(), Value::str("sales")),
    ];
    for _ in 0..4 {
        ur.insert_through_window(&w, &row);
    }
    assert_eq!(ur.delete_translation_count(&w, &row), 15); // 2⁴ − 1

    let engine = Engine::new(Database::new(
        Intension::analyse(schema.clone()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ));
    let employee = schema.type_id("employee").unwrap();
    let view = ViewType::new(&schema, "emp", &[employee]).unwrap();
    for _ in 0..4 {
        apply_update(
            &engine,
            &view,
            ViewUpdate::Insert {
                target: employee,
                fields: &[
                    ("name", Value::str("ann")),
                    ("age", Value::Int(40)),
                    ("depname", Value::str("sales")),
                ],
            },
        )
        .unwrap();
    }
    // Sets, not bags: one tuple; the delete translation is unique.
    assert_eq!(materialise(&engine, &view).len(), 1);
    assert_eq!(toposem::storage::translation_count(&view, employee), 1);
    let ann = engine.with_db(|db| {
        Instance::new(
            db.schema(),
            db.catalog(),
            employee,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
            ],
        )
        .unwrap()
    });
    assert_eq!(
        apply_update(
            &engine,
            &view,
            ViewUpdate::Delete {
                target: employee,
                instance: &ann
            }
        )
        .unwrap(),
        1
    );
}

/// Synthesised workloads keep every invariant at moderate scale.
#[test]
fn synthetic_workload_invariants() {
    let (schema, db) = random_workload(
        &SchemaParams {
            n_attrs: 10,
            n_types: 12,
            isa_bias: 0.6,
            max_width: 5,
            seed: 3,
        },
        &ExtensionParams {
            tuples_per_type: 20,
            value_range: 5,
            policy: ContainmentPolicy::Eager,
            seed: 4,
        },
    );
    assert!(db.verify_containment().is_empty());
    assert!(verify_corollary(&db).all_hold());
    // Maintained inserts keep the determination half of the Extension
    // Axiom on every compound type.
    for report in check_all(&db) {
        assert!(report.undetermined.is_empty());
    }
    let _ = schema;
}
