//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the bench suite uses — `Criterion` with
//! `sample_size`/`warm_up_time`/`measurement_time`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — over a simple wall-clock
//! sampler that prints a median per benchmark. No statistics machinery, no
//! reports; enough to compare operators and catch order-of-magnitude
//! regressions offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness configuration and top-level entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Upper bound on time spent sampling one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_benchmark(self, &id.to_string(), &mut f);
    }
}

/// A named set of benchmarks sharing the group prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` as `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &full, &mut f);
    }

    /// Runs `f` with an input value, as `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &full, &mut |b| f(b, input));
    }

    /// Ends the group (retained for API compatibility).
    pub fn finish(self) {}
}

/// A function-plus-parameter benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Median nanoseconds per iteration, filled by `iter`.
    median_ns: f64,
    samples: usize,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates per-call cost to batch cheap functions.
        let warm_deadline = Instant::now() + self.warm_up;
        let mut calls: u64 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(f());
            calls += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls as f64;
        // Aim for ~1ms per sample so Instant overhead stays negligible.
        let batch = ((1e-3 / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() / batch as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.samples = samples.len();
        self.median_ns = samples[samples.len() / 2] * 1e9;
    }
}

fn run_benchmark(c: &Criterion, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size: c.sample_size,
        warm_up: c.warm_up,
        measurement: c.measurement,
        median_ns: f64::NAN,
        samples: 0,
    };
    f(&mut b);
    if b.samples == 0 {
        println!("{name:<60} (no samples — closure never called iter)");
    } else {
        println!(
            "{name:<60} time: {:>12} ({} samples)",
            format_ns(b.median_ns),
            b.samples
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group runner, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
