//! Deterministic per-case RNG and failure plumbing.

use std::fmt;

/// Number of cases per property, from `PROPTEST_CASES` (default 32).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
}

fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7052_0057_3357_0001)
}

/// A failed property case (distinct from a panic so `proptest!` can report
/// the case index).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }

    /// Alias used by real proptest; kept for drop-in compatibility.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// xoshiro256**, seeded from the test name, case index, and global seed so
/// every property test gets an independent deterministic stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// The RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: usize) -> Self {
        let mut state = base_seed() ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15);
        for b in name.bytes() {
            state = state.rotate_left(8) ^ u64::from(b);
            splitmix64(&mut state);
        }
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        TestRng { s }
    }

    /// The next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below 0");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
