//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple
//! strategies, `prop::collection::{vec, btree_set}`, `prop::bits`,
//! `prop_oneof!`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros. Cases are generated from a deterministic per-test seed
//! (overridable via `PROPTEST_CASES` / `PROPTEST_SEED`); there is **no
//! shrinking** — failures report the case index so the run can be
//! reproduced by seed.

pub mod strategy;
pub mod test_runner;

/// Strategy constructors, mirroring proptest's `prop` module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{btree_set, vec, SizeRange};
    }

    /// Bit-pattern strategies.
    pub mod bits {
        /// Strategies over `u64` bit masks.
        pub mod u64 {
            use crate::strategy::BitsBetween;

            /// A mask whose set bits all lie in `[lo, hi)`.
            pub fn between(lo: usize, hi: usize) -> BitsBetween {
                assert!(lo <= hi && hi <= 64, "invalid bit range");
                BitsBetween { lo, hi }
            }
        }
    }
}

/// The glob-import surface used by the tests.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Chooses uniformly among the listed strategies (which must share a value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut arms = ::std::vec::Vec::new();
        $($crate::strategy::push_boxed(&mut arms, $strategy);)+
        $crate::strategy::Union::new(arms)
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `PROPTEST_CASES` random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case}/{cases} failed: {e}\n(rerun with PROPTEST_SEED to vary cases)",
                        );
                    }
                }
            }
        )*
    };
}
