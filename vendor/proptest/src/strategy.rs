//! Value-generation strategies (no shrinking).

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// A collection size: exact or a range, mirroring proptest's `SizeRange`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }
}

/// `Vec`s of values from `element`, sized within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet`s of values from `element`, sized within `size` (best-effort
/// when the element domain is smaller than the requested size).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Bounded attempts: small element domains may not admit n distinct
        // values.
        for _ in 0..(n * 10 + 10) {
            if out.len() >= n {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

/// See [`crate::prop::bits::u64::between`].
#[derive(Clone, Copy, Debug)]
pub struct BitsBetween {
    pub(crate) lo: usize,
    pub(crate) hi: usize,
}

impl Strategy for BitsBetween {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        if self.lo >= self.hi {
            return 0;
        }
        let width = self.hi - self.lo;
        let mask = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        (rng.next_u64() & mask) << self.lo
    }
}

/// Uniform choice among boxed strategies — the engine behind
/// [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds from a non-empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].as_ref().generate(rng)
    }
}

/// Boxes a strategy into a `prop_oneof!` arm list (a free function so the
/// element type is inferred from the vector, not written at the call site).
pub fn push_boxed<S: Strategy + 'static>(
    arms: &mut Vec<Box<dyn Strategy<Value = S::Value>>>,
    strategy: S,
) {
    arms.push(Box::new(strategy));
}
