//! Offline stand-in for `serde_json`: text encoding of the vendored
//! `serde` crate's [`serde::json::Json`] data model.

use std::fmt;

use serde::json::{parse_json, write_json, JsonError};
use serde::{Deserialize, Serialize};

/// A serialization or deserialization failure.
#[derive(Debug)]
pub struct Error(JsonError);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Self {
        Error(e)
    }
}

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), &mut out);
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let v = parse_json(text)?;
    Ok(T::from_json(&v)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| Error(JsonError::syntax(0, "input is not utf-8")))?;
    from_str(text)
}
