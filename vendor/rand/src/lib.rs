//! Offline stand-in for `rand`.
//!
//! Implements the subset the workspace uses: `StdRng` (xoshiro256**
//! seeded through splitmix64), `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen}`, and `seq::SliceRandom::choose`.
//! Deterministic per seed, which is all the workload synthesiser needs.

/// Low-level 64-bit generation.
pub trait RngCore {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample; panics on an empty range (matching rand).
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a natural "any value" distribution (bool only, for
/// `gen::<bool>()`-style calls).
pub trait Standard: Sized {
    /// Draws a value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Uniform draw from `[0, bound)` by widening multiply (Lemire's method;
/// the slight bias for astronomically large bounds is irrelevant here).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Whole-domain range: any 64-bit draw is in range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generation API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64 — deterministic, fast, and
    /// statistically solid for workload synthesis.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{below, RngCore};

    /// Random element selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(below(rng, self.len() as u64) as usize)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, below(rng, (i + 1) as u64) as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10i64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&y));
            let z = rng.gen_range(-5i64..=-1);
            assert!((-5..=-1).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*xs.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
