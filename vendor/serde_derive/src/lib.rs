//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real serde
//! derive stack (syn/quote/proc-macro2) is unavailable. This crate
//! hand-parses the derive input token stream — which is tractable because
//! the workspace only derives on plain named-field structs, tuple structs,
//! and enums without generics — and emits impls of the vendored `serde`
//! crate's JSON-backed `Serialize`/`Deserialize` traits.
//!
//! Supported attribute: `#[serde(skip)]` on named struct fields (omitted on
//! serialize, filled from `Default` on deserialize).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Parser {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(ts: TokenStream) -> Self {
        Parser {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` attribute groups, returning whether any of them was
    /// `#[serde(skip)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut skip = false;
        loop {
            match (self.peek(), self.tokens.get(self.pos + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    if attr_is_serde_skip(g.stream()) {
                        skip = true;
                    }
                    self.pos += 2;
                }
                _ => return skip,
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive stub: expected identifier, got {other:?}"),
        }
    }
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Counts top-level comma-separated items in a field list, tracking `<>`
/// nesting (generic arguments are not wrapped in token groups).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_any = false;
                continue;
            }
            _ => {}
        }
        saw_any = true;
    }
    if saw_any {
        count += 1;
    }
    count
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut p = Parser::new(stream);
    let mut fields = Vec::new();
    while !p.at_end() {
        let skip = p.skip_attrs();
        p.skip_visibility();
        let name = p.expect_ident();
        match p.next() {
            Some(TokenTree::Punct(c)) if c.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected `:` after field `{name}`, got {other:?}"),
        }
        // Consume the type up to a top-level comma.
        let mut depth = 0i32;
        while let Some(t) = p.peek() {
            match t {
                TokenTree::Punct(pc) if pc.as_char() == '<' => depth += 1,
                TokenTree::Punct(pc) if pc.as_char() == '>' => depth -= 1,
                TokenTree::Punct(pc) if pc.as_char() == ',' && depth == 0 => {
                    p.pos += 1;
                    break;
                }
                _ => {}
            }
            p.pos += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut p = Parser::new(stream);
    let mut variants = Vec::new();
    while !p.at_end() {
        p.skip_attrs();
        let name = p.expect_ident();
        let kind = match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                p.pos += 1;
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                p.pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while let Some(t) = p.peek() {
            if matches!(t, TokenTree::Punct(pc) if pc.as_char() == ',') {
                p.pos += 1;
                break;
            }
            p.pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> (String, Shape) {
    let mut p = Parser::new(input);
    p.skip_attrs();
    p.skip_visibility();
    let keyword = p.expect_ident();
    let name = p.expect_ident();
    if matches!(p.peek(), Some(TokenTree::Punct(pc)) if pc.as_char() == '<') {
        panic!("serde_derive stub: generic types are not supported (deriving on `{name}`)");
    }
    match keyword.as_str() {
        "struct" => match p.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::NamedStruct(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (name, Shape::TupleStruct(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(pc)) if pc.as_char() == ';' => (name, Shape::UnitStruct),
            other => panic!("serde_derive stub: unexpected struct body {other:?}"),
        },
        "enum" => match p.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Enum(parse_variants(g.stream())))
            }
            other => panic!("serde_derive stub: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive stub: expected struct or enum, got `{other}`"),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_json(&self.{f})));\n",
                    f = f.name
                ));
            }
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::json::Json)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::json::Json::Object(fields)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::json::Json::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::json::Json::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::json::Json::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::json::Json::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_json(x0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::json::Json::Object(vec![(\"{vn}\".to_string(), ::serde::json::Json::Array(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_json({f}))",
                                    f = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::json::Json::Object(vec![(\"{vn}\".to_string(), ::serde::json::Json::Object(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json(&self) -> ::serde::json::Json {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .expect("serde_derive stub: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{f}: ::std::default::Default::default(),\n",
                        f = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{f}: match ::serde::json::get_field(obj, \"{f}\") {{\n\
                         Some(x) => ::serde::Deserialize::from_json(x)?,\n\
                         None => return ::std::result::Result::Err(::serde::json::JsonError::missing_field(\"{name}\", \"{f}\")),\n\
                         }},\n",
                        f = f.name
                    ));
                }
            }
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::json::JsonError::expected(\"{name}\", \"object\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_json(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::json::JsonError::expected(\"{name}\", \"array\"))?;\n\
                 if arr.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::json::JsonError::expected(\"{name}\", \"array of {n}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_json(val)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_json(&arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let arr = val.as_array().ok_or_else(|| ::serde::json::JsonError::expected(\"{name}::{vn}\", \"array\"))?;\n\
                             if arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::json::JsonError::expected(\"{name}::{vn}\", \"array of {n}\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vn}({items}))\n\
                             }},\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{f}: ::std::default::Default::default(),\n",
                                    f = f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{f}: match ::serde::json::get_field(obj, \"{f}\") {{\n\
                                     Some(x) => ::serde::Deserialize::from_json(x)?,\n\
                                     None => return ::std::result::Result::Err(::serde::json::JsonError::missing_field(\"{name}::{vn}\", \"{f}\")),\n\
                                     }},\n",
                                    f = f.name
                                ));
                            }
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let obj = val.as_object().ok_or_else(|| ::serde::json::JsonError::expected(\"{name}::{vn}\", \"object\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::json::Json::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::json::JsonError::unknown_variant(\"{name}\", other)),\n\
                 }},\n\
                 ::serde::json::Json::Object(o) if o.len() == 1 => {{\n\
                 let (k, val) = &o[0];\n\
                 let _ = val;\n\
                 match k.as_str() {{\n\
                 {data_arms}\
                 other => ::std::result::Result::Err(::serde::json::JsonError::unknown_variant(\"{name}\", other)),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::json::JsonError::expected(\"{name}\", \"enum representation\")),\n\
                 }}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json(v: &::serde::json::Json) -> ::std::result::Result<Self, ::serde::json::JsonError> {{\n\
         {body}\n}}\n}}\n"
    );
    out.parse()
        .expect("serde_derive stub: generated invalid Deserialize impl")
}
