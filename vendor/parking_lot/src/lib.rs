//! Offline stand-in for `parking_lot`, backed by `std::sync`. The API
//! subset matches what the workspace uses: guard-returning `read`/`write`
//! without poisoning (a poisoned std lock is recovered transparently, which
//! matches parking_lot's no-poisoning semantics).

use std::sync::PoisonError;

/// Re-exported std guard types; parking_lot's guards deref identically.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// See [`RwLockReadGuard`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// See [`RwLockReadGuard`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutex with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
