//! The self-describing JSON data model backing the vendored serde stack,
//! with a text writer and a recursive-descent parser.

use std::fmt;

/// A JSON value. Signed and unsigned integers are kept apart so the full
/// `i64`/`u64` ranges round-trip without floating-point loss.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer outside (or not known to be inside) `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// The value as an object's entry list, when it is one.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The value as an array, when it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Looks a field up in an object's entry list.
pub fn get_field<'a>(obj: &'a [(String, Json)], name: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// A (de)serialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError(pub String);

impl JsonError {
    /// Type mismatch while deserializing `what`.
    pub fn expected(what: &str, wanted: &str) -> Self {
        JsonError(format!("invalid {what}: expected {wanted}"))
    }

    /// A struct field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        JsonError(format!("missing field `{field}` of {ty}"))
    }

    /// An enum tag named no known variant.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        JsonError(format!("unknown variant `{variant}` of {ty}"))
    }

    /// A syntax error at `pos` (byte offset) in the input text.
    pub fn syntax(pos: usize, message: &str) -> Self {
        JsonError(format!("syntax error at byte {pos}: {message}"))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Renders a value as compact JSON text.
pub fn write_json(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::UInt(n) => out.push_str(&n.to_string()),
        Json::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` so floats reparse as floats.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Json::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_json(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a value, rejecting trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = JsonParser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(JsonError::syntax(p.pos, "trailing characters"));
    }
    Ok(v)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::syntax(self.pos, "unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::syntax(self.pos, "invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::syntax(self.pos, "expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(JsonError::syntax(self.pos, "expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(JsonError::syntax(self.pos, "expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::syntax(start, "invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::syntax(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                JsonError::syntax(self.pos, "invalid unicode escape")
                            })?);
                        }
                        _ => return Err(JsonError::syntax(self.pos, "invalid escape")),
                    }
                }
                _ => return Err(JsonError::syntax(self.pos, "unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::syntax(self.pos, "truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::syntax(self.pos, "invalid unicode escape"))?;
        let n = u32::from_str_radix(s, 16)
            .map_err(|_| JsonError::syntax(self.pos, "invalid unicode escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::syntax(start, "invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| JsonError::syntax(start, "invalid number"))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Json::Int(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Json::UInt(n))
        } else {
            Err(JsonError::syntax(start, "number out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Json) {
        let mut s = String::new();
        write_json(&v, &mut s);
        assert_eq!(parse_json(&s).unwrap(), v);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(Json::Null);
        roundtrip(Json::Bool(true));
        roundtrip(Json::Int(-42));
        roundtrip(Json::Int(i64::MIN));
        roundtrip(Json::UInt(u64::MAX));
        roundtrip(Json::Float(1.5));
        roundtrip(Json::Str("hey \"quoted\" \\ slashed\nnewline".into()));
        roundtrip(Json::Str("unicode: ☃ 🦀".into()));
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(Json::Array(vec![
            Json::Int(1),
            Json::Str("two".into()),
            Json::Null,
        ]));
        roundtrip(Json::Object(vec![
            ("a".into(), Json::Array(vec![])),
            (
                "b".into(),
                Json::Object(vec![("c".into(), Json::Bool(false))]),
            ),
        ]));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_json("not json").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2,]").is_err());
        assert!(parse_json("123 trailing").is_err());
        assert!(parse_json("").is_err());
    }
}
