//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! minimal serialization facility the workspace needs: a self-describing
//! JSON value ([`json::Json`]), `Serialize`/`Deserialize` traits that
//! convert to and from it, impls for the primitives and std collections the
//! workspace serializes, and re-exported derive macros from the sibling
//! `serde_derive` stub.
//!
//! The representation follows real serde_json's externally-tagged defaults
//! closely enough for human inspection (structs are objects, unit enum
//! variants are strings, data variants are single-key objects); maps are
//! encoded as arrays of `[key, value]` pairs so non-string keys round-trip.

pub mod json;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

use json::{Json, JsonError};

pub use serde_derive::{Deserialize, Serialize};

/// Conversion into the [`Json`] data model.
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from the [`Json`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Box::new(T::from_json(v)?))
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::expected("bool", "boolean")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n: i64 = match v {
                    Json::Int(n) => *n,
                    Json::UInt(n) => i64::try_from(*n)
                        .map_err(|_| JsonError::expected(stringify!($t), "integer in range"))?,
                    _ => return Err(JsonError::expected(stringify!($t), "integer")),
                };
                <$t>::try_from(n).map_err(|_| JsonError::expected(stringify!($t), "integer in range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n: u64 = match v {
                    Json::UInt(n) => *n,
                    Json::Int(n) => u64::try_from(*n)
                        .map_err(|_| JsonError::expected(stringify!($t), "unsigned integer"))?,
                    _ => return Err(JsonError::expected(stringify!($t), "integer")),
                };
                <$t>::try_from(n).map_err(|_| JsonError::expected(stringify!($t), "integer in range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Float(f) => Ok(*f),
            Json::Int(n) => Ok(*n as f64),
            Json::UInt(n) => Ok(*n as f64),
            _ => Err(JsonError::expected("f64", "number")),
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(JsonError::expected("String", "string")),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(JsonError::expected("char", "single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(x) => x.to_json(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json).collect(),
            _ => Err(JsonError::expected("Vec", "array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json).collect(),
            _ => Err(JsonError::expected("BTreeSet", "array")),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json).collect(),
            _ => Err(JsonError::expected("HashSet", "array")),
        }
    }
}

fn map_to_json<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Json {
    // Sort by the rendered key so hash maps serialize canonically —
    // snapshots of equal databases are byte-identical.
    let mut rendered: Vec<(String, Json)> = entries
        .map(|(k, v)| {
            let mut key_text = String::new();
            json::write_json(&k.to_json(), &mut key_text);
            (key_text, Json::Array(vec![k.to_json(), v.to_json()]))
        })
        .collect();
    rendered.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Array(rendered.into_iter().map(|(_, pair)| pair).collect())
}

fn map_entry_from_json<K: Deserialize, V: Deserialize>(v: &Json) -> Result<(K, V), JsonError> {
    match v {
        Json::Array(pair) if pair.len() == 2 => {
            Ok((K::from_json(&pair[0])?, V::from_json(&pair[1])?))
        }
        _ => Err(JsonError::expected("map entry", "[key, value] pair")),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        map_to_json(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Array(items) => items.iter().map(map_entry_from_json).collect(),
            _ => Err(JsonError::expected("BTreeMap", "array of pairs")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json(&self) -> Json {
        map_to_json(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Array(items) => items.iter().map(map_entry_from_json).collect(),
            _ => Err(JsonError::expected("HashMap", "array of pairs")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$i.to_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                const LEN: usize = [$($i),+].len();
                match v {
                    Json::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_json(&items[$i])?,)+))
                    }
                    _ => Err(JsonError::expected("tuple", "array of matching arity")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
