//! Schema evolution with information-preservation analysis (§1, §6).
//!
//! Evolves the employee database three ways — adding a type, widening a
//! hierarchy with a new attribute, and removing a type — and reports for
//! each step whether the surviving intension embeds continuously into the
//! new one and what data survived.
//!
//! Run with: `cargo run --example schema_evolution`

use toposem::core::{employee_schema, Intension};
use toposem::extension::{evolve, ContainmentPolicy, Database, DomainCatalog, EvolutionOp, Value};

fn main() {
    let mut db = Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::OnDemand,
    );
    let s = db.schema().clone();
    db.insert_fields(
        s.type_id("manager").unwrap(),
        &[
            ("name", Value::str("ann")),
            ("age", Value::Int(40)),
            ("depname", Value::str("sales")),
            ("budget", Value::Int(100_000)),
        ],
    )
    .unwrap();
    db.insert_fields(
        s.type_id("employee").unwrap(),
        &[
            ("name", Value::str("bob")),
            ("age", Value::Int(30)),
            ("depname", Value::str("research")),
        ],
    )
    .unwrap();

    let steps = vec![
        EvolutionOp::AddEntityType {
            name: "pensioner".into(),
            attrs: vec!["name".into(), "age".into(), "location".into()],
        },
        EvolutionOp::AddAttribute {
            type_name: "employee".into(),
            attr: "salary".into(),
            domain: "amounts".into(),
            default: Value::Int(0),
        },
        EvolutionOp::RemoveEntityType {
            name: "worksfor".into(),
        },
    ];

    for op in steps {
        println!("== applying {op:?} ==");
        let migration = evolve(&db, &op).expect("evolution step valid");
        for (_, name, fate) in &migration.fates {
            println!("  {name:<12} {fate:?}");
        }
        println!(
            "  continuous embedding of surviving intension: {}",
            migration.continuous_embedding
        );
        println!("  tuples dropped: {}", migration.dropped_tuples);
        db = migration.database;
        println!(
            "  stored tuples now: {} across {} types\n",
            db.total_stored(),
            db.schema().type_count()
        );
    }

    // The final database still enforces containment.
    assert!(db.verify_containment().is_empty());
    let mgr = db.schema().type_id("manager").unwrap();
    let ext = db.extension(mgr);
    println!("final manager extension ({} tuple):", ext.len());
    for t in ext.iter() {
        println!("  {}", t.display(db.schema()));
    }
}
