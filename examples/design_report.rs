//! Generate the paper's §2–3 analysis for any schema as Markdown and
//! Graphviz DOT — the documentation face of the model — plus a minimal
//! cover of a designer's FD draft.
//!
//! Run with: `cargo run --example design_report`

use toposem::core::{dot_isa_diagram, employee_schema, markdown_report, Intension};
use toposem::design::run_design_process;
use toposem::fd::{minimal_cover, ArmstrongEngine};

fn main() {
    let intension = Intension::analyse(employee_schema());
    let schema = intension.schema();

    println!("{}", markdown_report(&intension));

    println!("\n## Design-process findings\n");
    for finding in run_design_process(schema) {
        println!("- {finding:?}");
    }

    println!("\n## Minimal cover of a designer's FD draft\n");
    let worksfor = schema.type_id("worksfor").unwrap();
    let person = schema.type_id("person").unwrap();
    let employee = schema.type_id("employee").unwrap();
    let department = schema.type_id("department").unwrap();
    let engine = ArmstrongEngine::new(schema, intension.generalisation(), worksfor);
    // A redundant draft: reflexive and transitive consequences included.
    let draft = vec![
        (employee, person),
        (person, employee),
        (employee, department),
        (person, department),
    ];
    let min = minimal_cover(&engine, &draft);
    println!("draft ({} FDs):", draft.len());
    for (x, y) in &draft {
        println!(
            "  fd({}, {}, worksfor)",
            schema.type_name(*x),
            schema.type_name(*y)
        );
    }
    println!("minimal cover ({} FDs):", min.len());
    for (x, y) in &min {
        println!(
            "  fd({}, {}, worksfor)",
            schema.type_name(*x),
            schema.type_name(*y)
        );
    }

    println!("\n## ISA diagram (Graphviz DOT)\n");
    println!("```dot");
    print!("{}", dot_isa_diagram(&intension));
    println!("```");
}
