//! Null values and incomplete information via boolean algebras (§6).
//!
//! The paper's future-work section: give each attribute domain a boolean
//! algebra structure; a value becomes an information state (set of
//! possible atoms), nulls are the top element, and FD semantics carries
//! over context-independently. This example contrasts the three FD
//! readings — state, certain, and possible — on a small incomplete
//! relation.
//!
//! Run with: `cargo run --example incomplete_information`

use toposem::constraints::{BooleanAlgebra, IncompleteRelation, PartialTuple};

fn main() {
    // Attribute 0: department ∈ {sales, research}; attribute 1: location
    // ∈ {amsterdam, utrecht}.
    let dep = BooleanAlgebra::new(vec!["sales".into(), "research".into()]);
    let loc = BooleanAlgebra::new(vec!["amsterdam".into(), "utrecht".into()]);
    let mut rel = IncompleteRelation::new(vec![dep.clone(), loc.clone()]);

    // A fully known fact: sales is in amsterdam.
    rel.insert(PartialTuple::new(vec![dep.atom(0), loc.atom(0)]));
    // Research is… somewhere (unknown null = top).
    rel.insert(PartialTuple::new(vec![dep.atom(1), loc.top()]));
    // Someone reported sales again with *partial* knowledge: not utrecht…
    // which in a two-atom algebra pins it to amsterdam — partial values
    // carry exactly the information they contain.
    rel.insert(PartialTuple::new(vec![dep.atom(0), loc.atom(0)]));

    println!("tuples:");
    for t in rel.tuples() {
        println!(
            "  dep={:?} loc={:?}  total={}",
            t.value(0),
            t.value(1),
            t.is_total()
        );
    }

    let fd = "department -> location";
    println!("\nFD {fd}:");
    println!("  state semantics    : {}", rel.fd_holds_state(&[0], &[1]));
    println!(
        "  certain semantics  : {}",
        rel.fd_holds_certain(&[0], &[1])
    );
    println!(
        "  possible semantics : {}",
        rel.fd_holds_possible(&[0], &[1])
    );

    // Now add a conflicting *unknown* for sales: under state semantics the
    // top-null differs from the known value, so the FD breaks; under
    // possible semantics a completion can still rescue it.
    rel.insert(PartialTuple::new(vec![dep.atom(0), loc.top()]));
    println!("\nafter inserting sales with an unknown location:");
    println!("  state semantics    : {}", rel.fd_holds_state(&[0], &[1]));
    println!(
        "  certain semantics  : {}",
        rel.fd_holds_certain(&[0], &[1])
    );
    println!(
        "  possible semantics : {}",
        rel.fd_holds_possible(&[0], &[1])
    );

    // Information order and combination.
    let known = PartialTuple::new(vec![dep.atom(0), loc.atom(0)]);
    let vague = PartialTuple::new(vec![dep.atom(0), loc.top()]);
    println!(
        "\ninformation order: known refines vague: {}",
        known.refines(&vague)
    );
    let combined = vague.combine(&known);
    println!("combine(vague, known) == known: {}", combined == known);
    let clash = PartialTuple::new(vec![dep.atom(0), loc.atom(1)]);
    println!(
        "combining contradictory reports is inconsistent: {}",
        known.combine(&clash).is_inconsistent()
    );
}
