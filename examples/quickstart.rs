//! Quickstart: build the paper's employee database, inspect its topology,
//! load data, and watch the axioms do their work.
//!
//! Run with: `cargo run --example quickstart`

use toposem::core::{employee_schema, Intension};
use toposem::extension::{
    check_extension_axiom, verify_corollary, ContainmentPolicy, Database, DomainCatalog, Value,
};

fn main() {
    // 1. The intension: schema + topologies + subbase analysis.
    let intension = Intension::analyse(employee_schema());
    let schema = intension.schema().clone();

    println!("== T1: entity types and attribute sets ==");
    for e in schema.type_ids() {
        println!(
            "  {:<12} {:?}",
            schema.type_name(e),
            schema.attr_set_names(schema.attrs_of(e))
        );
    }

    println!("\n== F2: specialisation sets S_e ==");
    for e in schema.type_ids() {
        let se = intension.specialisation().s_set(e);
        println!(
            "  S_{:<10} = {:?}",
            schema.type_name(e),
            schema.type_set_names(se)
        );
    }

    println!("\n== R1: chosen subbase and constructed types ==");
    let primitive: Vec<&str> = intension
        .subbase_types()
        .iter()
        .map(|&e| schema.type_name(e))
        .collect();
    let constructed: Vec<&str> = intension
        .constructed_types()
        .iter()
        .map(|&e| schema.type_name(e))
        .collect();
    println!("  R_T        = {primitive:?}");
    println!("  constructed = {constructed:?}");

    println!("\n== R3: contributors CO_e ==");
    for e in schema.type_ids() {
        let co: Vec<&str> = intension
            .contributors_of(e)
            .iter()
            .map(|&c| schema.type_name(c))
            .collect();
        println!("  CO_{:<9} = {co:?}", schema.type_name(e));
    }

    // 2. An extension under eager containment maintenance.
    let mut db = Database::new(
        intension,
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    );
    let manager = schema.type_id("manager").unwrap();
    let department = schema.type_id("department").unwrap();
    db.insert_fields(
        manager,
        &[
            ("name", Value::str("ann")),
            ("age", Value::Int(40)),
            ("depname", Value::str("sales")),
            ("budget", Value::Int(100_000)),
        ],
    )
    .unwrap();
    db.insert_fields(
        department,
        &[
            ("depname", Value::str("sales")),
            ("location", Value::str("amsterdam")),
        ],
    )
    .unwrap();

    println!("\n== Containment: inserting a manager creates the whole cut ==");
    for e in schema.type_ids() {
        println!(
            "  |R_{:<9}| = {}",
            schema.type_name(e),
            db.extension(e).len()
        );
    }
    assert!(db.verify_containment().is_empty());

    // 3. The §4.2 corollary and the Extension Axiom, verified on the data.
    let report = verify_corollary(&db);
    println!(
        "\n== R4: extension-mapping corollary: {} chains checked, all hold: {} ==",
        report.triples_checked,
        report.all_hold()
    );
    let ea = check_extension_axiom(&db, manager);
    println!(
        "== R5: Extension Axiom for manager holds: {} (contributors: {:?}) ==",
        ea.holds(),
        ea.contributors
            .iter()
            .map(|&c| schema.type_name(c))
            .collect::<Vec<_>>()
    );
}
