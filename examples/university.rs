//! A full design-to-engine pipeline on a fresh domain: a university.
//!
//! Demonstrates: EAR import (Relationship Axiom), the §2 design process,
//! subbase selection with designer bias, cardinality-induced FDs enforced
//! by the engine, topology-sanctioned queries, and key inference.
//!
//! Run with: `cargo run --example university`

use toposem::core::Intension;
use toposem::design::{
    import, run_design_process, select_subbase, Bias, Cardinality, ErEntity, ErRelationship,
    ErSchema,
};
use toposem::extension::{ContainmentPolicy, Database, DomainCatalog, DomainSpec, Value};
use toposem::fd::minimal_keys;
use toposem::storage::{Engine, Query};

fn university_er() -> ErSchema {
    ErSchema {
        entities: vec![
            ErEntity {
                name: "student".into(),
                attrs: vec![
                    ("sname".into(), "student-names".into()),
                    ("year".into(), "years".into()),
                ],
            },
            ErEntity {
                name: "course".into(),
                attrs: vec![
                    ("cname".into(), "course-names".into()),
                    ("credits".into(), "credit-counts".into()),
                ],
            },
            ErEntity {
                name: "lecturer".into(),
                attrs: vec![
                    ("lname".into(), "lecturer-names".into()),
                    ("office".into(), "offices".into()),
                ],
            },
        ],
        relationships: vec![
            // A student enrolls in many courses, a course has many
            // students: n:m, with a grade attribute.
            ErRelationship {
                name: "enrolled".into(),
                left: "student".into(),
                right: "course".into(),
                attrs: vec![("grade".into(), "grades".into())],
                cardinality: Cardinality::ManyToMany,
            },
            // Each course is taught by exactly one lecturer.
            ErRelationship {
                name: "teaches".into(),
                left: "lecturer".into(),
                right: "course".into(),
                attrs: vec![],
                cardinality: Cardinality::OneToMany,
            },
        ],
    }
}

fn main() {
    // 1. Import the EAR draft; relationships become entity types.
    let imported = import(&university_er()).expect("axiom-conform translation");
    let schema = imported.schema.clone();
    println!("== Imported schema ({} types) ==", schema.type_count());
    for e in schema.type_ids() {
        println!(
            "  {:<10} {:?}",
            schema.type_name(e),
            schema.attr_set_names(schema.attrs_of(e))
        );
    }
    println!(
        "cardinality-induced FDs: {:?}",
        imported
            .fds
            .iter()
            .map(|fd| fd.display(&schema))
            .collect::<Vec<_>>()
    );

    // 2. Run the §2 design process over the draft.
    println!("\n== Design-process findings ==");
    for f in run_design_process(&schema) {
        println!("  {f:?}");
    }

    // 3. Choose a subbase with a designer bias towards the relationships.
    let mut bias = Bias::uniform(&schema);
    bias.set(schema.type_id("enrolled").unwrap(), 0.1);
    bias.set(schema.type_id("teaches").unwrap(), 0.1);
    let subbase = select_subbase(&schema, &bias);
    println!(
        "\nchosen subbase: {:?}",
        subbase
            .iter()
            .map(|&e| schema.type_name(e))
            .collect::<Vec<_>>()
    );

    // 4. Key inference for the enrolled context under the induced FDs.
    let intension = Intension::analyse(schema.clone());
    let sigma: Vec<_> = imported
        .fds
        .iter()
        .filter(|fd| fd.context == schema.type_id("teaches").unwrap())
        .map(|fd| (fd.lhs, fd.rhs))
        .collect();
    let keys = minimal_keys(
        &schema,
        intension.generalisation(),
        schema.type_id("teaches").unwrap(),
        &sigma,
    );
    println!("\nminimal keys of `teaches` under its FD:");
    for k in &keys {
        println!(
            "  {:?}",
            k.iter().map(|&e| schema.type_name(e)).collect::<Vec<_>>()
        );
    }

    // 5. Load the engine, declare the FD, and watch it enforce.
    let mut catalog = DomainCatalog::new();
    catalog
        .bind("student-names", DomainSpec::AnyStr)
        .bind("years", DomainSpec::IntRange(1, 6))
        .bind("course-names", DomainSpec::AnyStr)
        .bind("credit-counts", DomainSpec::IntRange(1, 30))
        .bind("lecturer-names", DomainSpec::AnyStr)
        .bind("offices", DomainSpec::AnyStr)
        .bind("grades", DomainSpec::IntRange(1, 10));
    let engine = Engine::new(Database::new(intension, catalog, ContainmentPolicy::Eager));
    for fd in &imported.fds {
        engine.declare_fd(*fd).unwrap();
    }
    let teaches = schema.type_id("teaches").unwrap();
    engine
        .insert(
            teaches,
            &[
                ("lname", Value::str("dijkstra")),
                ("office", Value::str("A1")),
                ("cname", Value::str("algorithms")),
                ("credits", Value::Int(6)),
            ],
        )
        .unwrap();
    // A second lecturer for the same course violates the 1:n FD.
    let rejected = engine.insert(
        teaches,
        &[
            ("lname", Value::str("hoare")),
            ("office", Value::str("B2")),
            ("cname", Value::str("algorithms")),
            ("credits", Value::Int(6)),
        ],
    );
    println!(
        "\nsecond lecturer for `algorithms` rejected: {}",
        rejected.is_err()
    );

    // 6. A topology-sanctioned query: who teaches, projected to lecturer.
    let lecturer = schema.type_id("lecturer").unwrap();
    let q = Query::scan(teaches).project(lecturer);
    let (out_type, rel) = engine.with_db(|db| q.execute(db)).unwrap();
    println!(
        "query `π_lecturer(teaches)` has entity type `{}` and {} tuple(s)",
        schema.type_name(out_type),
        rel.len()
    );
}
