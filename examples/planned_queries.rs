//! Planned query execution: load the employee engine, index it, and watch
//! the optimizer choose access paths.
//!
//! Run with `cargo run --example planned_queries`.

use toposem::core::{employee_schema, Intension};
use toposem::extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem::planner::PlannedExecution;
use toposem::storage::{Engine, Query};

fn main() {
    let eng = Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ));
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let person = s.type_id("person").unwrap();
    let depname = s.attr_id("depname").unwrap();
    let name = s.attr_id("name").unwrap();

    let deps = ["sales", "research", "admin"];
    for i in 0..2000i64 {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("w{i}"))),
                ("age", Value::Int(i % 120)),
                ("depname", Value::str(deps[(i % 3) as usize])),
            ],
        )
        .unwrap();
    }
    for (d, l) in [("sales", "amsterdam"), ("research", "utrecht")] {
        eng.insert(
            department,
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
    let age = s.attr_id("age").unwrap();
    eng.create_index(employee, name).unwrap();
    eng.create_ord_index(employee, age).unwrap();
    eng.create_composite_index(employee, &[depname, name])
        .unwrap();
    eng.create_composite_index(employee, &[name, age]).unwrap();

    let queries = [
        (
            "point lookup (hash index)",
            Query::scan(employee).select(name, Value::str("w1234")),
        ),
        (
            "range seek (ordered index)",
            Query::scan(employee).select_between(age, Value::Int(30), Value::Int(33)),
        ),
        (
            "half-open range seek",
            Query::scan(employee).select_ge(age, Value::Int(110)),
        ),
        (
            // The optimizer weighs the composite prefix against the
            // unique hash index on name and picks the cheaper seek.
            "conjunctive multi-attribute equality",
            Query::scan(employee)
                .select(depname, Value::str("sales"))
                .select(name, Value::str("w42")),
        ),
        (
            "index-only scan (covering composite)",
            Query::scan(employee)
                .select_lt(age, Value::Int(20))
                .project(person),
        ),
        (
            "join + pushdown",
            Query::scan(employee)
                .join(Query::scan(department))
                .select(depname, Value::str("sales")),
        ),
        (
            "projection",
            Query::scan(employee)
                .select(depname, Value::str("research"))
                .project(person),
        ),
        (
            "dead branch (off-domain constant)",
            Query::scan(employee).select(depname, Value::str("piracy")),
        ),
        (
            "dead branch (disjoint ranges)",
            Query::scan(employee)
                .select_lt(age, Value::Int(20))
                .select_gt(age, Value::Int(90)),
        ),
    ];
    for (label, q) in queries {
        let (ty, rel) = eng.query_planned(&q).unwrap();
        println!("── {label} → {} rows of {}", rel.len(), s.type_name(ty));
        print!("{}", eng.explain(&q).unwrap());
        println!();
    }
}
