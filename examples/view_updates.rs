//! View updates: the paper's headline claim, demonstrated head-to-head.
//!
//! toposem views are sets of entity types (View Axiom), so every view
//! update routes to exactly one base update. The Universal Relation
//! baseline answers the same requests with placeholder-padded tuples and
//! ambiguous delete translations.
//!
//! Run with: `cargo run --example view_updates`

use toposem::core::{employee_schema, Intension, ViewType};
use toposem::extension::{ContainmentPolicy, Database, DomainCatalog, Instance, Value};
use toposem::storage::{apply_update, materialise, translation_count, Engine, ViewUpdate};
use toposem::ur::{UniversalRelation, Window};

fn main() {
    let schema = employee_schema();
    let employee = schema.type_id("employee").unwrap();
    let department = schema.type_id("department").unwrap();

    // ---------- toposem ----------
    let engine = Engine::new(Database::new(
        Intension::analyse(schema.clone()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ));
    let view = ViewType::new(&schema, "staffing", &[employee, department]).unwrap();

    apply_update(
        &engine,
        &view,
        ViewUpdate::Insert {
            target: employee,
            fields: &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
            ],
        },
    )
    .unwrap();
    // Insert the same employee twice: idempotent (sets, not bags).
    apply_update(
        &engine,
        &view,
        ViewUpdate::Insert {
            target: employee,
            fields: &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
            ],
        },
    )
    .unwrap();
    let m = materialise(&engine, &view);
    println!("toposem: staffing view holds {} tuple(s)", m.len());
    println!(
        "toposem: update translations for employee target: {}",
        translation_count(&view, employee)
    );

    let ann = engine.with_db(|db| {
        Instance::new(
            db.schema(),
            db.catalog(),
            employee,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
            ],
        )
        .unwrap()
    });
    let removed = apply_update(
        &engine,
        &view,
        ViewUpdate::Delete {
            target: employee,
            instance: &ann,
        },
    )
    .unwrap();
    println!(
        "toposem: delete removed {removed} base tuple(s), view now empty: {}",
        materialise(&engine, &view).is_empty()
    );

    // ---------- Universal Relation baseline ----------
    let mut ur = UniversalRelation::new(&schema);
    let window = Window::new(&schema, &["name", "age", "depname"]).unwrap();
    let row = vec![
        (schema.attr_id("name").unwrap(), Value::str("ann")),
        (schema.attr_id("age").unwrap(), Value::Int(40)),
        (schema.attr_id("depname").unwrap(), Value::str("sales")),
    ];
    ur.insert_through_window(&window, &row);
    ur.insert_through_window(&window, &row);
    println!(
        "\nUR: same two inserts created {} universal tuples carrying {} placeholders",
        ur.len(),
        ur.total_placeholders()
    );
    println!(
        "UR: the window shows {} row(s) — the duplicates are invisible",
        ur.window(&window).len()
    );
    println!(
        "UR: deleting ann through the window has {} candidate translations",
        ur.delete_translation_count(&window, &row)
    );
    ur.delete_through_window(&window, &row);
    println!(
        "UR: after executing one translation, {} tuples remain",
        ur.len()
    );
}
